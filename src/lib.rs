//! # gam
//!
//! Umbrella crate of the GAM reproduction: a Rust implementation of the
//! memory-model construction, formal definitions and evaluation of
//! *Constructing a Weak Memory Model* (Zhang, Vijayaraghavan, Wright,
//! Alipour, Arvind — ISCA 2018).
//!
//! The individual crates are re-exported under short module names:
//!
//! * [`isa`] — the instruction set, programs and the litmus-test library;
//! * [`core`] — dependencies, preserved program order and the model
//!   catalogue (SC, TSO, GAM, GAM0, GAM-ARM);
//! * [`axiomatic`] — the axiomatic execution enumerator;
//! * [`operational`] — the abstract machines (SC, TSO, GAM/GAM0) and the
//!   exhaustive explorer;
//! * [`verify`] — paper expectations, model comparison and
//!   axiomatic-vs-operational equivalence checking;
//! * [`uarch`] — the out-of-order core timing simulator and the synthetic
//!   workload suite used to reproduce Figure 18 and Tables I–III.
//!
//! # Quick start
//!
//! ```
//! use gam::axiomatic::{AxiomaticChecker, Verdict};
//! use gam::core::model;
//! use gam::isa::litmus::library;
//!
//! // Does GAM allow the Dekker non-SC outcome? (Yes: store->load reordering.)
//! let checker = AxiomaticChecker::new(model::gam());
//! assert_eq!(checker.check(&library::dekker()).unwrap(), Verdict::Allowed);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use gam_axiomatic as axiomatic;
pub use gam_core as core;
pub use gam_isa as isa;
pub use gam_operational as operational;
pub use gam_uarch as uarch;
pub use gam_verify as verify;
