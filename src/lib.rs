//! # gam
//!
//! Umbrella crate of the GAM reproduction: a Rust implementation of the
//! memory-model construction, formal definitions and evaluation of
//! *Constructing a Weak Memory Model* (Zhang, Vijayaraghavan, Wright,
//! Alipour, Arvind — ISCA 2018).
//!
//! The individual crates are re-exported under short module names:
//!
//! * [`isa`] — the instruction set, programs and the litmus-test library;
//! * [`core`] — dependencies, preserved program order and the model
//!   catalogue (SC, TSO, GAM, GAM0, GAM-ARM);
//! * [`engine`] — **the recommended entry point**: the unified
//!   [`Checker`](engine::Checker) trait over both formal backends and the
//!   parallel [`Engine`](engine::Engine) facade with structured,
//!   JSON-serializable suite reports;
//! * [`axiomatic`] — the axiomatic execution enumerator;
//! * [`operational`] — the abstract machines (SC, TSO, GAM/GAM0) and the
//!   exhaustive explorer;
//! * [`frontend`] — the litmus **text frontend**: a `.litmus` parser and
//!   pretty-printer with a round-trip guarantee, the corpus loader behind
//!   `tests/corpus/`, and the `gam` CLI binary that batch-runs corpora
//!   through the engine;
//! * [`verify`] — paper expectations, model comparison and
//!   axiomatic-vs-operational equivalence checking (thin layers over the
//!   engine);
//! * [`uarch`] — the out-of-order core timing simulator and the synthetic
//!   workload suite used to reproduce Figure 18 and Tables I–III.
//!
//! The direct checker constructors ([`axiomatic::AxiomaticChecker`],
//! [`operational::OperationalChecker`]) remain available for backend-specific
//! needs (e.g. detailed axiomatic witnesses), but new code should go through
//! the engine facade, which exposes both semantics behind one API.
//!
//! # Quick start
//!
//! ```
//! use gam::core::ModelKind;
//! use gam::engine::{Backend, Engine};
//! use gam::isa::litmus::library;
//!
//! // Does GAM allow the Dekker non-SC outcome? Ask either backend through
//! // the same facade. (Yes: store->load reordering.)
//! let engine = Engine::builder()
//!     .model(ModelKind::Gam)
//!     .backend(Backend::Axiomatic)
//!     .build()
//!     .unwrap();
//! assert!(engine.check(&library::dekker()).unwrap().is_allowed());
//!
//! // Run the whole paper suite in parallel and get a structured report.
//! let engine = Engine::builder().model(ModelKind::Gam).parallelism(4).build().unwrap();
//! let report = engine.run_suite(&library::paper_tests());
//! assert!(report.all_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use gam_axiomatic as axiomatic;
pub use gam_core as core;
pub use gam_engine as engine;
pub use gam_frontend as frontend;
pub use gam_isa as isa;
pub use gam_operational as operational;
pub use gam_uarch as uarch;
pub use gam_verify as verify;
