//! `gam` — the litmus-test CLI.
//!
//! ```text
//! usage:
//!   gam check FILE [--models LIST] [--backends LIST] [--jobs N]
//!                 [--explorer-threads N] [--time-budget MS]
//!                 [--mem-budget BYTES] [--spill-dir DIR]
//!                 [--checkpoint FILE] [--checkpoint-every N]
//!                 [--json] [--no-expectations]
//!   gam run DIR   [--models LIST] [--backends LIST] [--jobs N]
//!                 [--explorer-threads N] [--json] [--no-expectations]
//!   gam bench DIR [--models LIST] [--explorer-threads N]
//!                 [--mem-budget BYTES] [--spill-dir DIR]
//!                 [--checkpoint FILE] [--json]
//!   gam bench DIR --serve ADDR [--models LIST] [--jobs N]
//!                 [--min-hit-rate R] [--timeout-ms MS] [--retries N]
//!                 [--json] [--out PATH]
//!   gam serve [--addr ADDR] [--cache PATH] [--cache-capacity N]
//!             [--workers N] [--queue-depth N] [--read-timeout-ms MS]
//!             [--write-timeout-ms MS] [--compact-every N]
//!             [--overload-wall-ms MS]
//!   gam gen-corpus DIR [--count N] [--seed S] [--big]
//!   gam print FILE
//!   gam export-library DIR
//!   gam --version
//!
//!   --models LIST        comma-separated: sc,tso,gam,gam0,gam-arm
//!                        (default: sc,tso,gam,gam0 for `run`/`bench`; all
//!                        five for `check`)
//!   --backends LIST      comma-separated: axiomatic,operational (default:
//!                        both; model/backend pairs without semantics are
//!                        skipped)
//!   --jobs N             suite worker threads (default: all cores;
//!                        `--parallelism N` is accepted as an alias)
//!   --explorer-threads N worker threads *inside* each operational
//!                        exploration (default 1; sharding is adaptive and
//!                        only kicks in on state spaces past the threshold)
//!   --count N, --seed S  `gen-corpus`: corpus size (default 200) and
//!                        generator seed (default 2026)
//!   --json               machine-readable report on stdout
//!   --no-expectations    skip expectation diffing (`run`: the corpus
//!                        expectations.txt; `check`: the built-in paper table)
//! ```
//!
//! `check` parses one `.litmus` file, echoes the canonical form and prints
//! every requested verdict; when the file is byte-for-byte a library test
//! (same name *and* same structure) the verdicts are also diffed against
//! the paper's expectation table. `run` loads a whole corpus directory,
//! fans it out across the parallel engine for every `(model, backend)`
//! pair, prints a verdict matrix and diffs the verdicts against the corpus
//! `expectations.txt` (and against each backend pair) — failing also on
//! coverage gaps: corpus tests with no expectations row, or rows naming no
//! corpus test. `bench` is the throughput runner: it explores every corpus
//! test operationally under every requested machine model, reports wall
//! time, states visited, states/second and component-arena occupancy, and
//! cross-checks the complete outcome set against the axiomatic backend —
//! any disagreement fails the run. `gen-corpus` writes a deterministic
//! random corpus (`gam_operational::stress_tests`) plus an
//! `expectations.txt` computed — and backend-cross-checked — by the
//! engine. `print` normalizes a file to canonical text. `export-library`
//! writes the in-code library as a corpus.
//!
//! `serve` starts the long-running check service (`gam-serve`): an HTTP
//! API over a persistent, canonicalizing outcome cache whose every
//! mutation is write-ahead journaled (a `kill -9` loses at most the one
//! in-flight record; the journal folds into the snapshot every
//! `--compact-every` records and at graceful shutdown). It runs until a
//! client POSTs `/shutdown`, then drains and compacts. `bench --serve` is
//! its load-generating client: it replays a corpus concurrently against a
//! live server (with per-request `--timeout-ms` client timeouts and
//! bounded `--retries` with exponential backoff honoring `Retry-After`),
//! asserts every verdict against an in-process engine run, cross-checks
//! the server's `/metrics` deltas against what the client observed, and
//! reports throughput, cache hit rate, retry totals and shed counts — a
//! request the server sheds even after the retry budget is *counted*, not
//! an error.
//!
//! `check --time-budget MS` runs each (model, backend) pair through the
//! engine's budgeted session API: a check that exhausts its wall budget
//! reports INCONCLUSIVE with its partial outcomes instead of running
//! open-ended.
//!
//! `check --mem-budget BYTES` and `bench --mem-budget BYTES` cap the
//! operational explorer's accounted in-RAM footprint. Over the soft
//! watermark the explorer degrades — sleep caches flush, then (with
//! `--spill-dir DIR`) cold visited-state rows spill to CRC-framed segment
//! files — and only when degradation cannot free enough does the check stop
//! with INCONCLUSIVE (memory budget) and its partial outcomes. Spilling
//! changes nothing about the verdicts: a capped run that completes via
//! spill reports exactly the outcome sets of an uncapped run.
//!
//! `check --checkpoint FILE` and `bench --checkpoint FILE` (alias
//! `--resume FILE`) append every completed work unit — one
//! (model, backend) verdict for `check`, one (model, test) exploration
//! for `bench` — to a crash-durable log, and skip units already recorded
//! there. A killed run relaunched with the same flag recomputes only the
//! unit the crash interrupted; because exploration is deterministic, the
//! resumed report carries outcome sets and visited-state counts identical
//! to an uninterrupted run's. Checkpoint keys embed the canonical test
//! hash, so a checkpoint pointed at a different corpus matches nothing.
//! For `check`, the log additionally records *intra-exploration* snapshots
//! of the in-flight operational pair every `--checkpoint-every N`
//! expansions (default 65536; 0 disables), so a killed run resumes the
//! interrupted exploration mid-test — with counters identical to an
//! uninterrupted run's — instead of restarting it from scratch.
//!
//! Exit status (all subcommands): 0 = clean, 1 = the command ran but found
//! mismatches, disagreements, coverage gaps or check errors, 2 = usage or
//! startup error (bad flags, unreadable input, `serve` bind failure),
//! 3 = `check --time-budget` ran error-free but left at least one verdict
//! inconclusive.

use std::collections::BTreeMap;
use std::process::ExitCode;
use std::time::Instant;

use gam_core::ModelKind;
use gam_engine::{Backend, Engine, Json, SuiteReport, ToJson, Verdict};
use gam_frontend::{export_library, parse_litmus, print_litmus, Corpus};
use gam_isa::litmus::LitmusTest;
use gam_operational::{ExplorerConfig, OperationalChecker};
use gam_verify::expectations::{render_expectations, OwnedExpectation};

/// Terminal status of a subcommand.
enum Status {
    /// Everything checked out — exit 0.
    Clean,
    /// The command ran but found mismatches, disagreements or errors — exit 1.
    Findings,
    /// Every check ran error-free but at least one verdict is inconclusive
    /// (a `--time-budget` ran out) — exit 3, distinct from both a mismatch
    /// (1) and a usage error (2) so scripts can retry with a bigger budget.
    Inconclusive,
}

impl Status {
    fn from_clean(clean: bool) -> Status {
        if clean {
            Status::Clean
        } else {
            Status::Findings
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(Status::Clean) => ExitCode::SUCCESS,
        Ok(Status::Findings) => ExitCode::FAILURE,
        Ok(Status::Inconclusive) => ExitCode::from(3),
        Err(message) => {
            eprintln!("gam: {message}");
            ExitCode::from(2)
        }
    }
}

/// Dispatches a subcommand. `Ok(Status::Findings)` means the command ran
/// but found mismatches/errors (exit 1); `Err` is a usage or I/O problem
/// (exit 2).
fn run(args: &[String]) -> Result<Status, String> {
    let Some(command) = args.first() else {
        return Err(format!("missing subcommand\n\n{USAGE}"));
    };
    let trace_out = obs_setup(&args[1..]);
    let result = match command.as_str() {
        "check" => cmd_check(&args[1..]),
        "run" => cmd_run(&args[1..]).map(Status::from_clean),
        "bench" => cmd_bench(&args[1..]).map(Status::from_clean),
        "serve" => cmd_serve(&args[1..]).map(Status::from_clean),
        "gen-corpus" => cmd_gen_corpus(&args[1..]).map(Status::from_clean),
        "print" => cmd_print(&args[1..]).map(Status::from_clean),
        "export-library" => cmd_export(&args[1..]).map(Status::from_clean),
        "--version" | "-V" | "version" => {
            println!("gam {}", env!("CARGO_PKG_VERSION"));
            Ok(Status::Clean)
        }
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(Status::Clean)
        }
        other => Err(format!("unknown subcommand `{other}`\n\n{USAGE}")),
    };
    match (result, trace_out) {
        (Ok(status), Some(path)) => {
            write_trace(&path)?;
            Ok(status)
        }
        (result, _) => result,
    }
}

const USAGE: &str = "usage:
  gam check FILE [--models LIST] [--backends LIST] [--jobs N] [--explorer-threads N]
                [--time-budget MS] [--mem-budget BYTES] [--spill-dir DIR]
                [--checkpoint FILE] [--checkpoint-every N]
                [--json] [--no-expectations] [--trace-out FILE] [--progress]
  gam run DIR   [--models LIST] [--backends LIST] [--jobs N] [--explorer-threads N]
                [--json] [--no-expectations] [--trace-out FILE] [--progress]
  gam bench DIR [--models LIST] [--explorer-threads N] [--mem-budget BYTES]
                [--spill-dir DIR] [--checkpoint FILE] [--json]
                [--trace-out FILE] [--progress]
  gam bench DIR --serve ADDR [--models LIST] [--jobs N] [--min-hit-rate R]
                [--timeout-ms MS] [--retries N] [--json] [--out PATH]
  gam serve [--addr ADDR] [--cache PATH] [--cache-capacity N] [--workers N]
            [--queue-depth N] [--read-timeout-ms MS] [--write-timeout-ms MS]
            [--compact-every N] [--overload-wall-ms MS]
            [--mem-watermark BYTES] [--overload-mem-bytes BYTES]
  gam gen-corpus DIR [--count N] [--seed S] [--big]
  gam print FILE
  gam export-library DIR
  gam --version

  --models LIST        comma-separated: sc,tso,gam,gam0,gam-arm
  --backends LIST      comma-separated: axiomatic,operational
  --jobs N             suite worker threads (default: all cores;
                       --parallelism N is accepted as an alias)
  --explorer-threads N worker threads inside each operational exploration
                       (default 1; sharding kicks in adaptively)
  --count N, --seed S  gen-corpus: corpus size (default 200), seed (default 2026)
  --json               machine-readable report on stdout
  --no-expectations    skip expectation diffing (run: corpus expectations.txt;
                       check: built-in paper table)
  --time-budget MS     check: wall-clock budget per (model, backend) pair;
                       a check that exhausts it reports INCONCLUSIVE with
                       its partial outcomes and the command exits 3
  --mem-budget BYTES   check/bench: accounted-byte budget per operational
                       exploration; over the soft watermark the explorer
                       degrades (sleep-cache flush, then spill with
                       --spill-dir), at the hard limit the check reports
                       INCONCLUSIVE (memory budget) and check exits 3
  --spill-dir DIR      check/bench: directory for cold visited-state
                       segments spilled under memory pressure (needs
                       --mem-budget; without it the ladder skips spilling)
  --checkpoint FILE    check/bench: log each completed work unit to FILE and
                       skip units already recorded there — a killed run
                       relaunched with the same FILE recomputes only the
                       unit the crash interrupted (--resume is an alias)
  --checkpoint-every N check: also snapshot the in-flight operational
                       exploration every N expansions into the checkpoint,
                       enabling mid-test resume (default 65536; 0 disables)
  --serve ADDR         bench: replay the corpus against a live `gam serve`
                       at ADDR instead of checking in-process
  --min-hit-rate R     bench --serve: fail unless the observed cache hit
                       rate is at least R (0.0-1.0, default 0)
  --timeout-ms MS      bench --serve: client connect/read timeout per
                       request (default: 10s connect, 600s read)
  --retries N          bench --serve: retries per request on 503 or
                       connection errors, exponential backoff + jitter
                       honoring Retry-After (default 4; 0 disables)
  --out PATH           bench --serve: also write the JSON report to PATH
  --addr ADDR          serve: bind address (default 127.0.0.1:7117)
  --cache PATH         serve: cache file (default gam-serve-cache.json)
  --cache-capacity N   serve: max cache entries (default 4096)
  --workers N          serve: worker threads (default: all cores)
  --queue-depth N      serve: request queue bound; beyond it requests are
                       shed with 503 + Retry-After (default 64)
  --read-timeout-ms MS serve: per-socket read timeout; a stalled client
                       gets 408 instead of wedging a worker (default 10s)
  --write-timeout-ms MS serve: per-socket write timeout (default 10s)
  --compact-every N    serve: fold the cache journal into the snapshot
                       after N appended records (default 4096)
  --overload-wall-ms MS serve: while the queue is half full, clamp each
                       request's wall budget to MS so the server degrades
                       before it sheds (default 2000)
  --mem-watermark BYTES serve: while the process RSS is at or over this,
                       clamp each request's explorer memory budget to
                       --overload-mem-bytes so checks degrade (spill, then
                       memory-budget inconclusive) before the OS intervenes
                       (default 0 = disabled)
  --overload-mem-bytes BYTES serve: the accounted-byte budget clamped onto
                       requests over the watermark (default 64 MiB)
  --big                gen-corpus: generate the large-state-space tier
                       (gam_operational::big_tests; defaults become
                       --count 4 --seed 2024) — tests big enough to need
                       memory budgets, for the spill/budget CI gates
  --trace-out FILE     check/run/bench: record phase and engine spans and
                       write them as Chrome trace_event JSON to FILE on
                       exit (load in Perfetto or chrome://tracing)
  --progress           check/run/bench: periodic exploration/search
                       progress lines on stderr (states/sec, frontier
                       depth, escalation)

exit status: 0 = clean; 1 = ran but found mismatches, disagreements,
coverage gaps or check errors; 2 = usage/startup error (bad flags,
unreadable input, serve bind failure); 3 = check ran error-free but a
--time-budget ran out, leaving at least one verdict inconclusive";

// ---------------------------------------------------------------------------
// argument helpers
// ---------------------------------------------------------------------------

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).cloned()
}

fn arg_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

/// The first argument that is not a flag or a flag's value.
fn positional(args: &[String]) -> Option<&String> {
    let mut skip = false;
    for arg in args {
        if skip {
            skip = false;
            continue;
        }
        if arg.starts_with("--") {
            skip = matches!(
                arg.as_str(),
                "--models"
                    | "--backends"
                    | "--parallelism"
                    | "--jobs"
                    | "--explorer-threads"
                    | "--count"
                    | "--seed"
                    | "--serve"
                    | "--min-hit-rate"
                    | "--out"
                    | "--addr"
                    | "--cache"
                    | "--cache-capacity"
                    | "--workers"
                    | "--queue-depth"
                    | "--read-timeout-ms"
                    | "--write-timeout-ms"
                    | "--time-budget"
                    | "--mem-budget"
                    | "--spill-dir"
                    | "--mem-watermark"
                    | "--overload-mem-bytes"
                    | "--timeout-ms"
                    | "--checkpoint"
                    | "--checkpoint-every"
                    | "--resume"
                    | "--retries"
                    | "--compact-every"
                    | "--overload-wall-ms"
                    | "--trace-out"
            );
            continue;
        }
        return Some(arg);
    }
    None
}

fn parse_models(list: &str) -> Result<Vec<ModelKind>, String> {
    let mut models = Vec::new();
    for word in list.split(',').filter(|w| !w.is_empty()) {
        let model = match word.to_ascii_lowercase().as_str() {
            "sc" => ModelKind::Sc,
            "tso" => ModelKind::Tso,
            "gam" => ModelKind::Gam,
            "gam0" => ModelKind::Gam0,
            "gam-arm" | "gamarm" | "gam_arm" => ModelKind::GamArm,
            other => return Err(format!("unknown model `{other}` (try sc,tso,gam,gam0,gam-arm)")),
        };
        if !models.contains(&model) {
            models.push(model);
        }
    }
    if models.is_empty() {
        return Err("empty --models list".to_string());
    }
    Ok(models)
}

fn parse_backends(list: &str) -> Result<Vec<Backend>, String> {
    let mut backends = Vec::new();
    for word in list.split(',').filter(|w| !w.is_empty()) {
        let backend = match word.to_ascii_lowercase().as_str() {
            "axiomatic" | "ax" => Backend::Axiomatic,
            "operational" | "op" => Backend::Operational,
            other => return Err(format!("unknown backend `{other}` (try axiomatic,operational)")),
        };
        if !backends.contains(&backend) {
            backends.push(backend);
        }
    }
    if backends.is_empty() {
        return Err("empty --backends list".to_string());
    }
    Ok(backends)
}

fn parallelism(args: &[String]) -> Result<usize, String> {
    // `--jobs` is the documented spelling; `--parallelism` stays as an
    // alias for scripts written against the PR 4 CLI.
    match arg_value(args, "--jobs").or_else(|| arg_value(args, "--parallelism")) {
        None => Ok(std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)),
        Some(n) => n.parse::<usize>().map_err(|_| format!("invalid --jobs `{n}`")),
    }
}

fn explorer_threads(args: &[String]) -> Result<usize, String> {
    match arg_value(args, "--explorer-threads") {
        None => Ok(1),
        Some(n) => n.parse::<usize>().map_err(|_| format!("invalid --explorer-threads `{n}`")),
    }
}

/// Parses `--mem-budget BYTES` and `--spill-dir DIR`. The spill directory
/// only matters under a budget (nothing is ever spilled without one), so a
/// bare `--spill-dir` is a usage error rather than a silent no-op.
fn memory_flags(args: &[String]) -> Result<(Option<usize>, Option<std::path::PathBuf>), String> {
    let mem_budget = match arg_value(args, "--mem-budget") {
        None => None,
        Some(n) => {
            let bytes: usize = n.parse().map_err(|_| format!("invalid --mem-budget `{n}`"))?;
            if bytes == 0 {
                return Err("--mem-budget must be positive".to_string());
            }
            Some(bytes)
        }
    };
    let spill_dir = arg_value(args, "--spill-dir").map(std::path::PathBuf::from);
    if spill_dir.is_some() && mem_budget.is_none() {
        return Err(
            "--spill-dir needs --mem-budget (spilling only happens under a budget)".to_string()
        );
    }
    Ok((mem_budget, spill_dir))
}

/// Arms tracing (`--trace-out FILE`) and progress reporting (`--progress`)
/// before the subcommand runs. Returns the trace output path, if any; the
/// dispatcher writes it with [`write_trace`] once the command finishes.
fn obs_setup(args: &[String]) -> Option<String> {
    let trace_out = arg_value(args, "--trace-out");
    if trace_out.is_some() {
        gam_obs::trace::arm();
    }
    if arg_flag(args, "--progress") {
        gam_obs::progress::set_progress(true);
    }
    trace_out
}

/// Exports the recorded spans as Chrome `trace_event` JSON: tmp write, then
/// atomic rename, so the trace file is either absent or complete — never
/// torn. Fault-injection point `obs.export` kills the export between the
/// two, mirroring `cache.persist`.
fn write_trace(path: &str) -> Result<(), String> {
    let dropped = gam_obs::trace::dropped_records();
    if dropped > 0 {
        gam_obs::warn!("gam: trace ring overflowed; {dropped} oldest records were dropped");
    }
    let json = gam_obs::trace::export_chrome();
    let target = std::path::Path::new(path);
    let tmp = target.with_extension("trace-tmp");
    std::fs::write(&tmp, json.as_bytes())
        .map_err(|err| format!("cannot write trace {}: {err}", tmp.display()))?;
    if gam_core::fault::hit("obs.export") {
        let _ = std::fs::remove_file(&tmp);
        return Err(format!(
            "trace export {path}: injected fault: obs.export killed before rename"
        ));
    }
    std::fs::rename(&tmp, target)
        .map_err(|err| format!("cannot rename trace into {path}: {err}"))?;
    Ok(())
}

/// Opens the `--checkpoint FILE` (alias `--resume FILE`) work-unit log when
/// either flag is given. Recovered damage and a non-empty resume are
/// announced on stderr; only a genuine I/O failure to open the file is a
/// startup error.
fn open_checkpoint(
    args: &[String],
    command: &str,
) -> Result<Option<gam_engine::RunCheckpoint>, String> {
    let Some(path) = arg_value(args, "--checkpoint").or_else(|| arg_value(args, "--resume")) else {
        return Ok(None);
    };
    let (checkpoint, warning) = gam_engine::RunCheckpoint::open(std::path::Path::new(&path))
        .map_err(|err| format!("cannot open checkpoint {path}: {err}"))?;
    if let Some(warning) = warning {
        gam_obs::warn!("{command}: {warning}");
    }
    if checkpoint.resumed() > 0 {
        eprintln!("{command}: resuming {} completed units from {path}", checkpoint.resumed());
    }
    Ok(Some(checkpoint))
}

/// Records one completed work unit, warning instead of failing: the
/// checkpoint exists to protect the run, so losing it must never sink the
/// run it protects.
/// Locks a shared checkpoint, shrugging off poisoning: the only writers are
/// `record_unit` and the exploration-snapshot sink, and both tolerate a
/// half-finished peer (the log itself is torn-record safe).
fn lock_checkpoint(
    checkpoint: &std::sync::Mutex<Option<gam_engine::RunCheckpoint>>,
) -> std::sync::MutexGuard<'_, Option<gam_engine::RunCheckpoint>> {
    checkpoint.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn record_unit(checkpoint: &mut Option<gam_engine::RunCheckpoint>, key: &str, result: &Json) {
    if let Some(checkpoint) = checkpoint.as_mut() {
        if let Err(err) = checkpoint.record(key, result.clone()) {
            gam_obs::warn!(
                "gam: checkpoint {}: {err}; continuing without durability for this unit",
                checkpoint.path().display()
            );
        }
    }
}

// ---------------------------------------------------------------------------
// suite running shared by `check` and `run`
// ---------------------------------------------------------------------------

/// One verdict discrepancy found while diffing suite results.
struct Mismatch {
    test: String,
    model: ModelKind,
    detail: String,
}

/// Runs `tests` under every supported `(model, backend)` pair and returns
/// the reports keyed by pair. Unsupported pairs (operational GAM-ARM) are
/// skipped.
fn run_matrix(
    tests: &[LitmusTest],
    suite_name: &str,
    models: &[ModelKind],
    backends: &[Backend],
    workers: usize,
    explorer_workers: usize,
) -> Result<BTreeMap<(ModelKind, Backend), SuiteReport>, String> {
    let mut reports = BTreeMap::new();
    for &model in models {
        for &backend in backends {
            if !backend.supports(model) {
                continue;
            }
            let engine = Engine::builder()
                .model(model)
                .backend(backend)
                .parallelism(workers)
                .explorer_parallelism(explorer_workers)
                .build()
                .map_err(|err| err.to_string())?;
            reports.insert((model, backend), engine.run_suite_verdicts(tests).named(suite_name));
        }
    }
    if reports.is_empty() {
        return Err("no supported (model, backend) combination selected".to_string());
    }
    Ok(reports)
}

/// Diffs the reports: backends must agree pairwise per `(test, model)`, no
/// backend may error, and (where an expectation exists) the agreed verdict
/// must match it.
fn diff_reports(
    tests: &[LitmusTest],
    models: &[ModelKind],
    reports: &BTreeMap<(ModelKind, Backend), SuiteReport>,
    expectation: impl Fn(&str, ModelKind) -> Option<bool>,
) -> Vec<Mismatch> {
    let mut mismatches = Vec::new();
    for test in tests {
        for &model in models {
            let mut verdicts: Vec<(Backend, Verdict)> = Vec::new();
            for ((m, backend), report) in reports {
                if *m != model {
                    continue;
                }
                let Some(row) = report.report_for(test.name()) else { continue };
                match (row.verdict, &row.error) {
                    (Some(verdict), _) => verdicts.push((*backend, verdict)),
                    (None, error) => mismatches.push(Mismatch {
                        test: test.name().to_string(),
                        model,
                        detail: format!(
                            "{} backend error: {}",
                            backend,
                            error.as_deref().unwrap_or("no verdict")
                        ),
                    }),
                }
            }
            if let Some((first, rest)) = verdicts.split_first() {
                for (backend, verdict) in rest {
                    if verdict != &first.1 {
                        mismatches.push(Mismatch {
                            test: test.name().to_string(),
                            model,
                            detail: format!(
                                "backends disagree: {}={} {}={}",
                                first.0, first.1, backend, verdict
                            ),
                        });
                    }
                }
                if let Some(expected) = expectation(test.name(), model) {
                    let got = first.1.is_allowed();
                    if got != expected {
                        mismatches.push(Mismatch {
                            test: test.name().to_string(),
                            model,
                            detail: format!(
                                "expected {}, every backend says {}",
                                verdict_word(expected),
                                verdict_word(got)
                            ),
                        });
                    }
                }
            }
        }
    }
    mismatches
}

fn verdict_word(allowed: bool) -> &'static str {
    if allowed {
        "allowed"
    } else {
        "forbidden"
    }
}

/// Renders the test × model verdict matrix (letters A/F, `!` on any
/// mismatch involving the cell).
fn render_matrix(
    tests: &[LitmusTest],
    models: &[ModelKind],
    reports: &BTreeMap<(ModelKind, Backend), SuiteReport>,
    mismatches: &[Mismatch],
) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let name_width = tests.iter().map(|t| t.name().len()).max().unwrap_or(4).max("test".len());
    let _ = write!(out, "{:<name_width$}", "test");
    for model in models {
        let _ = write!(out, "  {:>7}", model.to_string());
    }
    let _ = writeln!(out);
    for test in tests {
        let _ = write!(out, "{:<name_width$}", test.name());
        for &model in models {
            let verdict = reports
                .iter()
                .find(|((m, _), _)| *m == model)
                .and_then(|(_, report)| report.report_for(test.name()))
                .and_then(|row| row.verdict);
            let mut cell = match verdict {
                Some(Verdict::Allowed) => "A".to_string(),
                Some(Verdict::Forbidden) => "F".to_string(),
                None => "-".to_string(),
            };
            if mismatches.iter().any(|m| m.test == test.name() && m.model == model) {
                cell.push('!');
            }
            let _ = write!(out, "  {cell:>7}");
        }
        let _ = writeln!(out);
    }
    out
}

fn json_report(
    suite: &str,
    models: &[ModelKind],
    reports: &BTreeMap<(ModelKind, Backend), SuiteReport>,
    mismatches: &[Mismatch],
    coverage_gaps: &[String],
) -> Json {
    Json::object([
        ("suite", Json::from(suite)),
        ("models", Json::array(models.iter().map(|m| Json::from(m.to_string())))),
        ("reports", Json::array(reports.values().map(ToJson::to_json))),
        (
            "mismatches",
            Json::array(mismatches.iter().map(|m| {
                Json::object([
                    ("test", Json::from(m.test.as_str())),
                    ("model", Json::from(m.model.to_string())),
                    ("detail", Json::from(m.detail.as_str())),
                ])
            })),
        ),
        ("coverage_gaps", Json::array(coverage_gaps.iter().map(|gap| Json::from(gap.as_str())))),
        ("ok", Json::from(mismatches.is_empty() && coverage_gaps.is_empty())),
    ])
}

// ---------------------------------------------------------------------------
// subcommands
// ---------------------------------------------------------------------------

fn cmd_check(args: &[String]) -> Result<Status, String> {
    let Some(path) = positional(args) else {
        return Err("`gam check` needs a FILE argument".to_string());
    };
    let text = std::fs::read_to_string(path).map_err(|err| format!("cannot read {path}: {err}"))?;
    let test = match parse_litmus(&text) {
        Ok(test) => test,
        Err(err) => {
            eprintln!("{path}: {err}");
            return Ok(Status::Findings);
        }
    };
    let models = match arg_value(args, "--models") {
        Some(list) => parse_models(&list)?,
        None => ModelKind::ALL.to_vec(),
    };
    let backends = match arg_value(args, "--backends") {
        Some(list) => parse_backends(&list)?,
        None => Backend::ALL.to_vec(),
    };
    let workers = parallelism(args)?;
    let explorer_workers = explorer_threads(args)?;
    let budget_ms = match arg_value(args, "--time-budget") {
        Some(ms) => Some(ms.parse().map_err(|_| format!("invalid --time-budget `{ms}`"))?),
        None => None,
    };
    let (mem_budget, _) = memory_flags(args)?;
    let wants_checkpoint =
        arg_value(args, "--checkpoint").is_some() || arg_value(args, "--resume").is_some();
    if budget_ms.is_some() || mem_budget.is_some() || wants_checkpoint {
        // The budgeted (wall or memory) and checkpointed paths run the pairs
        // sequentially through the session API — checkpointing needs the
        // unit-at-a-time loop so each completed pair lands on disk before
        // the next one starts, and an armed memory budget forces the
        // explorer sequential anyway.
        return cmd_check_sequential(
            args,
            path,
            &test,
            &models,
            &backends,
            explorer_workers,
            budget_ms,
        );
    }
    let use_expectations = !arg_flag(args, "--no-expectations");
    let tests = [test];
    let reports = run_matrix(&tests, path, &models, &backends, workers, explorer_workers)?;
    let mismatches = diff_reports(&tests, &models, &reports, |name, model| {
        // The built-in paper table applies only when the parsed test *is*
        // the library test of that name — a user-written variant that merely
        // reuses a library name (e.g. a custom `dekker`) must not be diffed
        // against the paper's verdicts.
        if !use_expectations {
            return None;
        }
        let library_test = gam_isa::litmus::library::by_name(name)?;
        if library_test != tests[0] {
            return None;
        }
        gam_verify::expectations::expectation_for(name).map(|e| e.allowed(model))
    });
    if arg_flag(args, "--json") {
        println!("{}", json_report(path, &models, &reports, &mismatches, &[]));
    } else {
        print!("{}", print_litmus(&tests[0]));
        println!();
        for ((model, backend), report) in &reports {
            let row = report.report_for(tests[0].name()).expect("single-test suite");
            match (&row.verdict, &row.error) {
                (Some(verdict), _) => {
                    println!("{:<8} {:<12} {verdict}", model.to_string(), backend.name());
                }
                (None, error) => println!(
                    "{:<8} {:<12} ERROR: {}",
                    model.to_string(),
                    backend.name(),
                    error.as_deref().unwrap_or("no verdict")
                ),
            }
        }
        for m in &mismatches {
            println!("MISMATCH {} under {}: {}", m.test, m.model, m.detail);
        }
    }
    Ok(Status::from_clean(mismatches.is_empty()))
}

/// The sequential path of `gam check`, taken for `--time-budget` and/or
/// `--checkpoint`: each supported (model, backend) pair runs one at a time
/// through the engine's session API. With a budget, a blow-up in the state
/// space surfaces as an INCONCLUSIVE row carrying partial outcomes (exit 3)
/// instead of an open-ended run. With a checkpoint, every finished pair is
/// logged before the next one starts, and pairs already on the log are
/// replayed from it — verdicts are deterministic, so a resumed run's rows
/// are identical to an uninterrupted run's. Expectation diffing is skipped —
/// a budgeted verdict may be partial by design.
fn cmd_check_sequential(
    args: &[String],
    path: &str,
    test: &LitmusTest,
    models: &[ModelKind],
    backends: &[Backend],
    explorer_workers: usize,
    budget_ms: Option<u64>,
) -> Result<Status, String> {
    let mut budget = gam_engine::CheckBudget::none();
    if let Some(ms) = budget_ms {
        budget = budget.with_max_wall(std::time::Duration::from_millis(ms));
    }
    let (mem_budget, spill_dir) = memory_flags(args)?;
    if let Some(bytes) = mem_budget {
        budget = budget.with_max_bytes(bytes);
    }
    let checkpoint_every = match arg_value(args, "--checkpoint-every") {
        None => 65_536usize,
        Some(n) => n.parse().map_err(|_| format!("invalid --checkpoint-every `{n}`"))?,
    };
    // The checkpoint is shared with the explorer's snapshot sink, which runs
    // inside the exploration loop; a mutex keeps the two writers ordered.
    let checkpoint =
        std::sync::Arc::new(std::sync::Mutex::new(open_checkpoint(args, "gam check")?));
    let hash = gam_frontend::canonical_hash(test).to_string();
    let mut rows: Vec<Json> = Vec::new();
    for &model in models {
        for &backend in backends {
            if !backend.supports(model) {
                continue;
            }
            // The key pins the unit *and* the test's content: a checkpoint
            // accidentally pointed at a different test matches nothing.
            let key = format!("check/{model}/{}/{hash}", backend.name());
            if let Some(recorded) =
                lock_checkpoint(&checkpoint).as_ref().and_then(|c| c.completed(&key)).cloned()
            {
                rows.push(recorded);
                continue;
            }
            // Intra-exploration snapshots: only meaningful with a checkpoint
            // file to land in, and only on operational backends (the plan is
            // ignored elsewhere). `--checkpoint-every 0` disables them.
            let plan = if checkpoint_every != 0 && lock_checkpoint(&checkpoint).is_some() {
                let resume = lock_checkpoint(&checkpoint)
                    .as_ref()
                    .and_then(|c| c.explore_snapshot(&key))
                    .map(std::sync::Arc::new);
                if resume.is_some() {
                    eprintln!("gam check: resuming {key} mid-exploration from its snapshot");
                }
                let sink_checkpoint = std::sync::Arc::clone(&checkpoint);
                let sink_key = key.clone();
                Some(gam_operational::CheckpointPlan {
                    every_expansions: checkpoint_every,
                    sink: std::sync::Arc::new(move |bytes: &[u8]| {
                        if let Some(ckpt) = lock_checkpoint(&sink_checkpoint).as_mut() {
                            if let Err(err) = ckpt.record_explore_snapshot(&sink_key, bytes) {
                                gam_obs::warn!(
                                    "gam check: exploration snapshot for {sink_key}: {err}; \
                                     continuing without it"
                                );
                            }
                        }
                    }),
                    resume,
                })
            } else {
                None
            };
            let mut builder = Engine::builder()
                .model(model)
                .backend(backend)
                .explorer_parallelism(explorer_workers);
            if spill_dir.is_some() || plan.is_some() {
                builder = builder.explorer_memory(gam_operational::MemoryConfig {
                    // The byte ceiling arrives through the check budget; the
                    // explorer config only carries where to degrade to.
                    max_bytes: None,
                    spill_dir: spill_dir.clone(),
                    checkpoint: plan,
                });
            }
            let engine = builder.build().map_err(|err| err.to_string())?;
            let base =
                [("model", Json::from(model.to_string())), ("backend", Json::from(backend.name()))];
            let row = match engine.check_budgeted(test, &budget) {
                Ok(outcome) => match &outcome.verdict {
                    gam_engine::SessionVerdict::Inconclusive {
                        partial_outcomes,
                        states_visited,
                        reason,
                    } => Json::object(base.into_iter().chain([
                        ("verdict", Json::from("inconclusive")),
                        ("reason", Json::from(reason.to_string())),
                        ("states_visited", Json::UInt(*states_visited as u64)),
                        ("partial_outcomes", Json::UInt(partial_outcomes.len() as u64)),
                        ("wall_us", Json::UInt(micros(outcome.wall))),
                    ])),
                    verdict => Json::object(base.into_iter().chain([
                        ("verdict", Json::from(verdict.to_string())),
                        ("wall_us", Json::UInt(micros(outcome.wall))),
                    ])),
                },
                Err(error) => {
                    Json::object(base.into_iter().chain([("error", Json::from(error.to_string()))]))
                }
            };
            // Errored pairs stay off the log so a resume retries them;
            // inconclusive ones are recorded — rerunning with the same
            // budget would only reproduce the same partial answer.
            if row.get("error").is_none() {
                record_unit(&mut lock_checkpoint(&checkpoint), &key, &row);
            }
            rows.push(row);
        }
    }
    if rows.is_empty() {
        return Err("no supported (model, backend) combination selected".to_string());
    }
    let any_error = rows.iter().any(|row| row.get("error").is_some());
    let any_inconclusive =
        rows.iter().any(|row| row.get("verdict").and_then(Json::as_str) == Some("inconclusive"));
    if arg_flag(args, "--json") {
        let mut fields = vec![("suite", Json::from(path))];
        if let Some(ms) = budget_ms {
            fields.push(("time_budget_ms", Json::UInt(ms)));
        }
        if let Some(bytes) = mem_budget {
            fields.push(("mem_budget_bytes", Json::UInt(bytes as u64)));
        }
        if let Some(ckpt) = lock_checkpoint(&checkpoint).as_ref() {
            fields.push(("resumed_units", Json::UInt(ckpt.resumed() as u64)));
        }
        fields.extend([
            ("results", Json::array(rows.iter().cloned())),
            ("ok", Json::from(!any_error)),
            ("inconclusive", Json::from(any_inconclusive)),
        ]);
        println!("{}", Json::object(fields));
    } else {
        print!("{}", print_litmus(test));
        println!();
        for row in &rows {
            let model = row.get("model").and_then(Json::as_str).unwrap_or("?");
            let backend = row.get("backend").and_then(Json::as_str).unwrap_or("?");
            if let Some(error) = row.get("error").and_then(Json::as_str) {
                println!("{model:<8} {backend:<12} ERROR: {error}");
            } else if row.get("verdict").and_then(Json::as_str) == Some("inconclusive") {
                println!(
                    "{model:<8} {backend:<12} INCONCLUSIVE: {} ({} states, {} partial outcomes)",
                    row.get("reason").and_then(Json::as_str).unwrap_or("?"),
                    row.get("states_visited").and_then(Json::as_u64).unwrap_or(0),
                    row.get("partial_outcomes").and_then(Json::as_u64).unwrap_or(0),
                );
            } else {
                println!(
                    "{model:<8} {backend:<12} {}",
                    row.get("verdict").and_then(Json::as_str).unwrap_or("?")
                );
            }
        }
    }
    Ok(if any_error {
        Status::Findings
    } else if any_inconclusive {
        Status::Inconclusive
    } else {
        Status::Clean
    })
}

fn cmd_run(args: &[String]) -> Result<bool, String> {
    let Some(dir) = positional(args) else {
        return Err("`gam run` needs a corpus DIR argument".to_string());
    };
    let corpus = match Corpus::load(dir) {
        Ok(corpus) => corpus,
        Err(err) => {
            eprintln!("{err}");
            return Ok(false);
        }
    };
    let models = match arg_value(args, "--models") {
        Some(list) => parse_models(&list)?,
        None => vec![ModelKind::Sc, ModelKind::Tso, ModelKind::Gam, ModelKind::Gam0],
    };
    let backends = match arg_value(args, "--backends") {
        Some(list) => parse_backends(&list)?,
        None => Backend::ALL.to_vec(),
    };
    let workers = parallelism(args)?;
    let explorer_workers = explorer_threads(args)?;
    let use_expectations = !arg_flag(args, "--no-expectations");
    let tests = corpus.tests();
    let name = corpus.name();
    let reports = run_matrix(&tests, &name, &models, &backends, workers, explorer_workers)?;
    let mismatches = diff_reports(&tests, &models, &reports, |test, model| {
        if use_expectations {
            corpus.expectation_for(test).map(|row| row.allowed(model))
        } else {
            None
        }
    });
    // A test without an expectations row (or a row naming no test) would
    // silently drop out of verdict enforcement; treat both as failures so
    // the CI gate's contract holds.
    let coverage_gaps =
        if use_expectations { corpus.expectation_coverage_gaps() } else { Vec::new() };
    let clean = mismatches.is_empty() && coverage_gaps.is_empty();
    if arg_flag(args, "--json") {
        println!("{}", json_report(&name, &models, &reports, &mismatches, &coverage_gaps));
    } else {
        let model_names: Vec<String> = models.iter().map(ToString::to_string).collect();
        let backend_names: Vec<String> = backends.iter().map(ToString::to_string).collect();
        let expectations = if use_expectations && !corpus.expectations.is_empty() {
            format!("{} expectation rows", corpus.expectations.len())
        } else {
            "no expectations".to_string()
        };
        println!(
            "corpus {name}: {} tests; models {}; backends {}; {expectations}\n",
            tests.len(),
            model_names.join(", "),
            backend_names.join(", "),
        );
        print!("{}", render_matrix(&tests, &models, &reports, &mismatches));
        println!();
        for m in &mismatches {
            println!("MISMATCH {} under {}: {}", m.test, m.model, m.detail);
        }
        for gap in &coverage_gaps {
            println!("COVERAGE {gap}");
        }
        let pairs = reports.len();
        if clean {
            println!(
                "{} tests x {} (model, backend) pairs: all verdicts agree{}",
                tests.len(),
                pairs,
                if use_expectations && !corpus.expectations.is_empty() {
                    " and match expectations"
                } else {
                    ""
                }
            );
        } else {
            println!(
                "{} tests x {} (model, backend) pairs: {} mismatches, {} coverage gaps",
                tests.len(),
                pairs,
                mismatches.len(),
                coverage_gaps.len()
            );
        }
    }
    Ok(clean)
}

/// One `(model, test)` throughput measurement of `gam bench`, as the JSON
/// row the report carries — which is also exactly what the `--checkpoint`
/// log records, so a resumed run replays completed rows verbatim.
#[allow(clippy::too_many_arguments)]
fn bench_row_json(
    test: &str,
    operational_wall_us: u64,
    states_visited: u64,
    states_per_sec: u64,
    occupancy: Option<&gam_engine::ArenaOccupancy>,
    memory: Option<&gam_operational::MemoryStats>,
    axiomatic_wall_us: u64,
    outcomes: &std::collections::BTreeSet<gam_isa::litmus::Outcome>,
    agree: bool,
) -> Json {
    let mut pairs = vec![
        ("test", Json::from(test)),
        ("wall_us_operational", Json::UInt(operational_wall_us)),
        ("states_visited", Json::UInt(states_visited)),
        ("states_per_sec", Json::UInt(states_per_sec)),
    ];
    // Omitted (rather than zeroed) when the exploration escalated to the
    // parallel driver, which does no component interning.
    if let Some(occupancy) = occupancy {
        pairs.push(("distinct_components", Json::UInt(occupancy.distinct_components() as u64)));
        pairs.push(("interned_bytes", Json::UInt(occupancy.interned_bytes as u64)));
    }
    // Present only when a `--mem-budget` armed the accountant.
    if let Some(memory) = memory {
        pairs.push(("peak_accounted_bytes", Json::UInt(memory.peak_bytes as u64)));
        pairs.push(("spilled_bytes", Json::UInt(memory.spilled_bytes as u64)));
        pairs.push(("spill_segments", Json::UInt(memory.spill_segments as u64)));
        pairs.push(("sleep_flushes", Json::UInt(memory.sleep_flushes as u64)));
    }
    // A content fingerprint of the complete outcome set, so the
    // checkpoint round-trip test can assert a resumed run reproduced the
    // *same set*, not merely the same cardinality.
    let mut rendered = String::new();
    for outcome in outcomes {
        rendered.push_str(&outcome.to_string());
        rendered.push('\n');
    }
    pairs.extend([
        ("wall_us_axiomatic", Json::UInt(axiomatic_wall_us)),
        ("outcomes", Json::UInt(outcomes.len() as u64)),
        ("outcome_hash", Json::from(format!("{:08x}", gam_core::wal::crc32(rendered.as_bytes())))),
        ("agree", Json::from(agree)),
    ]);
    Json::object(pairs)
}

fn micros(duration: std::time::Duration) -> u64 {
    u64::try_from(duration.as_micros()).unwrap_or(u64::MAX)
}

fn cmd_bench(args: &[String]) -> Result<bool, String> {
    let Some(dir) = positional(args) else {
        return Err("`gam bench` needs a corpus DIR argument".to_string());
    };
    if let Some(server) = arg_value(args, "--serve") {
        return cmd_bench_serve(args, dir, &server);
    }
    let corpus = match Corpus::load(dir) {
        Ok(corpus) => corpus,
        Err(err) => {
            eprintln!("{err}");
            return Ok(false);
        }
    };
    let models = match arg_value(args, "--models") {
        Some(list) => parse_models(&list)?,
        None => vec![ModelKind::Sc, ModelKind::Tso, ModelKind::Gam, ModelKind::Gam0],
    };
    let explorer_workers = explorer_threads(args)?;
    let (mem_budget, spill_dir) = memory_flags(args)?;
    let as_json = arg_flag(args, "--json");
    let mut checkpoint = open_checkpoint(args, "gam bench")?;
    let tests = corpus.tests();
    let name = corpus.name();
    let started = Instant::now();

    // Checkpoint keys embed each test's canonical hash: a log pointed at a
    // different corpus matches nothing instead of poisoning the run.
    let hashes: Vec<String> =
        tests.iter().map(|test| gam_frontend::canonical_hash(test).to_string()).collect();

    let mut sections = Vec::new();
    let mut disagreements = 0usize;
    let mut errors = 0usize;
    let mut total_states = 0u64;
    let mut total_op_wall = 0u64;
    let mut total_ax_wall = 0u64;
    for &model in &models {
        if !Backend::Operational.supports(model) {
            eprintln!("gam bench: skipping {model} (no operational machine)");
            continue;
        }
        let checker = OperationalChecker::with_config(
            model,
            ExplorerConfig { parallelism: explorer_workers, ..ExplorerConfig::default() },
        )
        // The bench loop is serial, so every model reuses one spill
        // directory safely: segment files are overwritten store-by-store.
        .with_memory(gam_operational::MemoryConfig {
            max_bytes: mem_budget,
            spill_dir: spill_dir.clone(),
            checkpoint: None,
        });
        let axiomatic = Engine::axiomatic(model);
        let mut rows: Vec<Json> = Vec::new();
        for (test, hash) in tests.iter().zip(&hashes) {
            let key = format!("bench/{model}/{}/{hash}", test.name());
            let row = if let Some(recorded) = checkpoint.as_ref().and_then(|c| c.completed(&key)) {
                // A completed unit replays verbatim: exploration is
                // deterministic, so the recorded outcome set and state
                // count are exactly what recomputing would produce.
                recorded.clone()
            } else {
                let start = Instant::now();
                let exploration = match checker.explore(test) {
                    Ok(exploration) => exploration,
                    Err(err) => {
                        eprintln!("gam bench: {model}/{}: operational: {err}", test.name());
                        errors += 1;
                        continue;
                    }
                };
                let operational_wall = start.elapsed();
                let start = Instant::now();
                let ax_outcomes = match axiomatic.allowed_outcomes(test) {
                    Ok(outcomes) => outcomes,
                    Err(err) => {
                        eprintln!("gam bench: {model}/{}: axiomatic: {err}", test.name());
                        errors += 1;
                        continue;
                    }
                };
                let axiomatic_wall = start.elapsed();
                let agree = ax_outcomes == exploration.outcomes;
                if !agree {
                    eprintln!(
                        "gam bench: DISAGREEMENT {model}/{}: axiomatic {} outcomes vs \
                         operational {}",
                        test.name(),
                        ax_outcomes.len(),
                        exploration.outcomes.len()
                    );
                }
                #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation)]
                #[allow(clippy::cast_sign_loss)]
                let states_per_sec = if operational_wall.as_secs_f64() > 0.0 {
                    (exploration.states_visited as f64 / operational_wall.as_secs_f64()) as u64
                } else {
                    0
                };
                let row = bench_row_json(
                    test.name(),
                    micros(operational_wall),
                    exploration.states_visited as u64,
                    states_per_sec,
                    exploration.arena.as_ref(),
                    exploration.memory.as_ref(),
                    micros(axiomatic_wall),
                    &exploration.outcomes,
                    agree,
                );
                record_unit(&mut checkpoint, &key, &row);
                row
            };
            if !matches!(row.get("agree"), Some(Json::Bool(true))) {
                disagreements += 1;
            }
            total_states += row.get("states_visited").and_then(Json::as_u64).unwrap_or(0);
            total_op_wall += row.get("wall_us_operational").and_then(Json::as_u64).unwrap_or(0);
            total_ax_wall += row.get("wall_us_axiomatic").and_then(Json::as_u64).unwrap_or(0);
            rows.push(row);
        }
        sections.push((model, rows));
    }
    let clean = disagreements == 0 && errors == 0;

    if as_json {
        let mut fields = vec![
            ("schema", Json::from("gam-bench/v1")),
            ("suite", Json::from(name.as_str())),
            ("tests", Json::UInt(tests.len() as u64)),
            ("explorer_threads", Json::UInt(explorer_workers as u64)),
        ];
        if let Some(ckpt) = &checkpoint {
            fields.push(("resumed_units", Json::UInt(ckpt.resumed() as u64)));
        }
        fields.extend([
            (
                "totals",
                Json::object([
                    ("wall_us_operational", Json::UInt(total_op_wall)),
                    ("wall_us_axiomatic", Json::UInt(total_ax_wall)),
                    ("states_visited", Json::UInt(total_states)),
                    ("disagreements", Json::UInt(disagreements as u64)),
                    ("errors", Json::UInt(errors as u64)),
                ]),
            ),
            (
                "per_model",
                Json::array(sections.iter().map(|(model, rows)| {
                    Json::object([
                        ("model", Json::from(model.to_string())),
                        ("tests", Json::array(rows.iter().cloned())),
                    ])
                })),
            ),
            ("ok", Json::from(clean)),
        ]);
        println!("{}", Json::object(fields));
    } else {
        println!(
            "bench {name}: {} tests x {} models, explorer threads {explorer_workers}",
            tests.len(),
            sections.len()
        );
        if let Some(ckpt) = &checkpoint {
            if ckpt.resumed() > 0 {
                println!("  resumed {} completed units from checkpoint", ckpt.resumed());
            }
        }
        let field = |row: &Json, key: &str| row.get(key).and_then(Json::as_u64).unwrap_or(0);
        for (model, rows) in &sections {
            let model_states: u64 = rows.iter().map(|r| field(r, "states_visited")).sum();
            let model_wall: u64 = rows.iter().map(|r| field(r, "wall_us_operational")).sum();
            let rate = (model_states * 1_000_000).checked_div(model_wall).unwrap_or(0);
            println!(
                "  {:<8} operational {model_wall:>8}us  {model_states:>8} states \
                 ({rate:>9} states/s)  axiomatic {:>8}us",
                model.to_string(),
                rows.iter().map(|r| field(r, "wall_us_axiomatic")).sum::<u64>()
            );
        }
        println!(
            "totals: operational {total_op_wall}us, axiomatic {total_ax_wall}us, {total_states} \
             states, {disagreements} disagreements, {errors} errors in {:?}",
            started.elapsed()
        );
    }
    Ok(clean)
}

fn cmd_gen_corpus(args: &[String]) -> Result<bool, String> {
    let Some(dir) = positional(args) else {
        return Err("`gam gen-corpus` needs a DIR argument".to_string());
    };
    let big = arg_flag(args, "--big");
    let count = match arg_value(args, "--count") {
        None => {
            if big {
                4usize
            } else {
                200usize
            }
        }
        Some(n) => n.parse().map_err(|_| format!("invalid --count `{n}`"))?,
    };
    let seed = match arg_value(args, "--seed") {
        None => {
            if big {
                2024u64
            } else {
                2026u64
            }
        }
        Some(n) => n.parse().map_err(|_| format!("invalid --seed `{n}`"))?,
    };
    // `--big` trades breadth for depth: a handful of 3-thread, 15-memory-event
    // tests whose state spaces run into the hundreds of thousands — large
    // enough to trip realistic `--mem-budget` settings, small enough for CI.
    let tests = if big {
        gam_operational::big_tests(seed, count)
    } else {
        gam_operational::stress_tests(seed, count)
    };
    std::fs::create_dir_all(dir).map_err(|err| format!("cannot create {dir}: {err}"))?;
    // Remove stale corpus files first: regenerating with a smaller --count
    // must not leave orphaned tests behind that the fresh expectations.txt
    // no longer covers. Only corpus-owned file types are touched.
    let entries = std::fs::read_dir(dir).map_err(|err| format!("cannot read {dir}: {err}"))?;
    for entry in entries {
        let path = entry.map_err(|err| format!("cannot read {dir}: {err}"))?.path();
        let is_corpus_file = path.extension().is_some_and(|ext| ext == "litmus")
            || path.file_name().is_some_and(|name| name == "expectations.txt");
        if is_corpus_file {
            std::fs::remove_file(&path)
                .map_err(|err| format!("cannot remove stale {}: {err}", path.display()))?;
        }
    }

    // Write every test first, then compute the expectations: a generation
    // interrupted mid-verdict still leaves the finished `.litmus` files
    // behind (without an expectations.txt nothing consumes them as a
    // corpus, so there is no torn-state hazard).
    for test in &tests {
        let path = std::path::Path::new(dir).join(format!("{}.litmus", test.name()));
        std::fs::write(&path, print_litmus(test))
            .map_err(|err| format!("cannot write {}: {err}", path.display()))?;
    }

    // Compute (and cross-check) every test's verdicts: the axiomatic
    // backend covers all five models; the operational backend must agree
    // wherever a machine exists.
    let mut rows = Vec::new();
    for test in &tests {
        let mut allowed = BTreeMap::new();
        for model in ModelKind::ALL {
            let axiomatic = Engine::axiomatic(model)
                .check(test)
                .map_err(|err| format!("{model}/{}: axiomatic: {err}", test.name()))?;
            if Backend::Operational.supports(model) {
                let operational = Engine::operational(model)
                    .map_err(|err| err.to_string())?
                    .check(test)
                    .map_err(|err| format!("{model}/{}: operational: {err}", test.name()))?;
                if operational != axiomatic {
                    return Err(format!(
                        "{model}/{}: backends disagree ({axiomatic} vs {operational})",
                        test.name()
                    ));
                }
            }
            allowed.insert(model, axiomatic.is_allowed());
        }
        rows.push(OwnedExpectation {
            test: test.name().to_string(),
            sc: allowed[&ModelKind::Sc],
            tso: allowed[&ModelKind::Tso],
            gam: allowed[&ModelKind::Gam],
            gam0: allowed[&ModelKind::Gam0],
            gam_arm: allowed[&ModelKind::GamArm],
            source: format!("computed by both backends (seed {seed})"),
        });
    }
    let expectations_path = std::path::Path::new(dir).join("expectations.txt");
    std::fs::write(&expectations_path, render_expectations(&rows))
        .map_err(|err| format!("cannot write {}: {err}", expectations_path.display()))?;
    println!(
        "wrote {count} tests (seed {seed}) + expectations.txt under {dir}; all verdicts \
         backend-agreed"
    );
    Ok(true)
}

fn cmd_print(args: &[String]) -> Result<bool, String> {
    let Some(path) = positional(args) else {
        return Err("`gam print` needs a FILE argument".to_string());
    };
    let text = std::fs::read_to_string(path).map_err(|err| format!("cannot read {path}: {err}"))?;
    match parse_litmus(&text) {
        Ok(test) => {
            print!("{}", print_litmus(&test));
            Ok(true)
        }
        Err(err) => {
            eprintln!("{path}: {err}");
            Ok(false)
        }
    }
}

fn cmd_export(args: &[String]) -> Result<bool, String> {
    let Some(dir) = positional(args) else {
        return Err("`gam export-library` needs a DIR argument".to_string());
    };
    let written = export_library(dir).map_err(|err| format!("cannot export to {dir}: {err}"))?;
    println!("wrote {} files under {dir}", written.len());
    Ok(true)
}

// ---------------------------------------------------------------------------
// the check service and its bench client
// ---------------------------------------------------------------------------

fn cmd_serve(args: &[String]) -> Result<bool, String> {
    let mut config = gam_serve::ServeConfig {
        cache_path: arg_value(args, "--cache")
            .map_or_else(|| "gam-serve-cache.json".into(), std::path::PathBuf::from),
        ..gam_serve::ServeConfig::default()
    };
    if let Some(addr) = arg_value(args, "--addr") {
        config.addr = addr;
    }
    if let Some(n) = arg_value(args, "--cache-capacity") {
        config.cache_capacity = n.parse().map_err(|_| format!("invalid --cache-capacity `{n}`"))?;
    }
    if let Some(n) = arg_value(args, "--workers") {
        config.workers = n.parse().map_err(|_| format!("invalid --workers `{n}`"))?;
    }
    if let Some(n) = arg_value(args, "--queue-depth") {
        config.queue_depth = n.parse().map_err(|_| format!("invalid --queue-depth `{n}`"))?;
    }
    if let Some(ms) = arg_value(args, "--read-timeout-ms") {
        let ms: u64 = ms.parse().map_err(|_| format!("invalid --read-timeout-ms `{ms}`"))?;
        if ms == 0 {
            return Err("--read-timeout-ms must be positive".to_string());
        }
        config.read_timeout = std::time::Duration::from_millis(ms);
    }
    if let Some(ms) = arg_value(args, "--write-timeout-ms") {
        let ms: u64 = ms.parse().map_err(|_| format!("invalid --write-timeout-ms `{ms}`"))?;
        if ms == 0 {
            return Err("--write-timeout-ms must be positive".to_string());
        }
        config.write_timeout = std::time::Duration::from_millis(ms);
    }
    if let Some(n) = arg_value(args, "--compact-every") {
        config.compact_every = n.parse().map_err(|_| format!("invalid --compact-every `{n}`"))?;
        if config.compact_every == 0 {
            return Err("--compact-every must be positive".to_string());
        }
    }
    if let Some(ms) = arg_value(args, "--overload-wall-ms") {
        config.overload_wall_ms =
            ms.parse().map_err(|_| format!("invalid --overload-wall-ms `{ms}`"))?;
        if config.overload_wall_ms == 0 {
            return Err("--overload-wall-ms must be positive".to_string());
        }
    }
    if let Some(bytes) = arg_value(args, "--mem-watermark") {
        config.mem_watermark_bytes =
            bytes.parse().map_err(|_| format!("invalid --mem-watermark `{bytes}`"))?;
    }
    if let Some(bytes) = arg_value(args, "--overload-mem-bytes") {
        config.overload_mem_bytes =
            bytes.parse().map_err(|_| format!("invalid --overload-mem-bytes `{bytes}`"))?;
        if config.overload_mem_bytes == 0 {
            return Err("--overload-mem-bytes must be positive".to_string());
        }
    }
    // A bind failure is a startup error: `Err` exits 2 with the message.
    let (server, warning) = gam_serve::Server::start(&config).map_err(|err| err.to_string())?;
    if let Some(warning) = warning {
        gam_obs::warn!("gam serve: {warning}");
    }
    println!(
        "gam serve: listening on {} ({} workers, queue {}, cache {} [capacity {}])",
        server.local_addr(),
        config.workers.max(1),
        config.queue_depth.max(1),
        config.cache_path.display(),
        config.cache_capacity.max(1),
    );
    // Serve until a client POSTs /shutdown, then drain gracefully: stop
    // accepting, join the workers and compact the journal into the
    // snapshot. Every cache mutation was already journaled when it
    // happened, so an external `kill -9` loses at most the one record
    // that was mid-write.
    server.wait_for_shutdown_request();
    println!("gam serve: shutdown requested; draining");
    server.shutdown();
    Ok(true)
}

/// Strips an optional `http://` scheme and trailing slashes from a server
/// address given on the command line.
fn server_addr(raw: &str) -> &str {
    raw.trim_start_matches("http://").trim_end_matches('/')
}

fn fetch_metrics(addr: &str, client: &gam_serve::ClientConfig) -> Result<Json, String> {
    let response = gam_serve::http::request_with(addr, "GET", "/metrics", None, client)
        .map_err(|err| format!("cannot reach {addr}: {err}"))?;
    if response.status != 200 {
        return Err(format!("{addr}/metrics answered {}", response.status));
    }
    Json::parse(&response.body).map_err(|err| format!("{addr}/metrics: bad JSON: {err}"))
}

/// What one replayed request came back with, verdicts aside.
enum ReplayOutcome {
    /// A checked result: `(allowed, cached)`.
    Verdict(bool, bool),
    /// The server was still shedding when the retry budget ran out. Not an
    /// error: under deliberate overload, bounded shedding is the server
    /// *working as designed*, and one unanswered request must not fail the
    /// whole replay.
    Shed,
}

/// One replayed request's observation, as seen by the bench client.
struct ReplayRow {
    test: String,
    model: ModelKind,
    outcome: Result<ReplayOutcome, String>,
    retry: gam_serve::RetryStats,
}

fn cmd_bench_serve(args: &[String], dir: &str, server: &str) -> Result<bool, String> {
    let addr = server_addr(server).to_string();
    let corpus = match Corpus::load(dir) {
        Ok(corpus) => corpus,
        Err(err) => {
            eprintln!("{err}");
            return Ok(false);
        }
    };
    let models = match arg_value(args, "--models") {
        Some(list) => parse_models(&list)?,
        None => vec![ModelKind::Gam],
    };
    for &model in &models {
        if !Backend::Operational.supports(model) {
            return Err(format!("--serve replays operationally; {model} has no machine"));
        }
    }
    let jobs = parallelism(args)?.max(1);
    let min_hit_rate = match arg_value(args, "--min-hit-rate") {
        None => 0.0f64,
        Some(r) => {
            let rate: f64 = r.parse().map_err(|_| format!("invalid --min-hit-rate `{r}`"))?;
            if !(0.0..=1.0).contains(&rate) {
                return Err(format!("--min-hit-rate `{r}` outside 0.0..=1.0"));
            }
            rate
        }
    };
    let client = match arg_value(args, "--timeout-ms") {
        None => gam_serve::ClientConfig::default(),
        Some(ms) => {
            let ms: u64 = ms.parse().map_err(|_| format!("invalid --timeout-ms `{ms}`"))?;
            if ms == 0 {
                return Err("--timeout-ms must be positive".to_string());
            }
            gam_serve::ClientConfig::with_timeout(std::time::Duration::from_millis(ms))
        }
    };
    let policy = match arg_value(args, "--retries") {
        None => gam_serve::RetryPolicy::default(),
        Some(n) => gam_serve::RetryPolicy {
            max_retries: n.parse().map_err(|_| format!("invalid --retries `{n}`"))?,
            ..gam_serve::RetryPolicy::default()
        },
    };
    let as_json = arg_flag(args, "--json");
    let out_path = arg_value(args, "--out");
    let tests = corpus.tests();
    let name = corpus.name();

    // Client-observed latency, per endpoint. Separate registry from the
    // server's: these are round-trip times as this client saw them,
    // including retries and backoff.
    let client_registry = gam_obs::metrics::Registry::new();
    let check_latency = client_registry.histogram("client.latency.check.us");
    let metrics_latency = client_registry.histogram("client.latency.metrics.us");
    let timed_metrics = |addr: &str| -> Result<Json, String> {
        let started = Instant::now();
        let doc = fetch_metrics(addr, &client)?;
        metrics_latency.observe(micros(started.elapsed()));
        Ok(doc)
    };

    // Ground truth: the same verdicts computed in-process.
    let mut expected: BTreeMap<(String, ModelKind), bool> = BTreeMap::new();
    for &model in &models {
        let engine = Engine::operational(model).map_err(|err| err.to_string())?;
        let suite = engine.run_suite_verdicts(&tests);
        for report in &suite.reports {
            let verdict = report.verdict.ok_or_else(|| {
                format!(
                    "in-process {model}/{}: {}",
                    report.test,
                    report.error.as_deref().unwrap_or("no verdict")
                )
            })?;
            expected.insert((report.test.clone(), model), verdict.is_allowed());
        }
    }

    let before = timed_metrics(&addr)?;

    // Replay: every (test, model) request, drained concurrently by `jobs`
    // client threads off a shared cursor.
    let work: Vec<(String, ModelKind, String)> = models
        .iter()
        .flat_map(|&model| {
            tests.iter().map(move |test| {
                let body = Json::object([
                    ("litmus", Json::from(print_litmus(test))),
                    ("models", Json::array([Json::from(model_word(model))])),
                    ("backends", Json::array([Json::from("operational")])),
                ]);
                (test.name().to_string(), model, body.to_string())
            })
        })
        .collect();
    let cursor = std::sync::atomic::AtomicUsize::new(0);
    let rows = std::sync::Mutex::new(Vec::<ReplayRow>::new());
    let started = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..jobs.min(work.len().max(1)) {
            scope.spawn(|| loop {
                let index = cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let Some((test, model, body)) = work.get(index) else { break };
                let request_started = Instant::now();
                let (outcome, retry) = replay_one(&addr, body, &client, &policy);
                check_latency.observe(micros(request_started.elapsed()));
                rows.lock().expect("rows lock").push(ReplayRow {
                    test: test.clone(),
                    model: *model,
                    outcome,
                    retry,
                });
            });
        }
    });
    let wall = started.elapsed();
    let rows = rows.into_inner().expect("rows lock");

    let after = timed_metrics(&addr)?;

    // Score the replay against the in-process verdicts.
    let mut disagreements = Vec::new();
    let mut errors = Vec::new();
    let mut hits = 0u64;
    let mut sheds = 0u64;
    let mut retried_requests = 0u64;
    let mut retries_total = 0u64;
    let mut backoff_us_total = 0u64;
    for row in &rows {
        if row.retry.retries > 0 {
            retried_requests += 1;
            retries_total += u64::from(row.retry.retries);
            backoff_us_total += micros(row.retry.backoff);
        }
        match &row.outcome {
            Ok(ReplayOutcome::Verdict(allowed, cached)) => {
                if *cached {
                    hits += 1;
                }
                let want = expected[&(row.test.clone(), row.model)];
                if *allowed != want {
                    disagreements.push(format!(
                        "{}/{}: server says {}, in-process says {}",
                        row.model,
                        row.test,
                        verdict_word(*allowed),
                        verdict_word(want)
                    ));
                }
            }
            Ok(ReplayOutcome::Shed) => sheds += 1,
            Err(err) => errors.push(format!("{}/{}: {err}", row.model, row.test)),
        }
    }
    let requests = rows.len() as u64;
    // Shed requests never reached a checker, so they can't hit the cache —
    // they drop out of the hit-rate denominator as well as the numerator.
    let answered = requests - sheds;
    let hit_permille = (hits * 1000).checked_div(answered).unwrap_or(0);
    let wall_us = micros(wall);
    let requests_per_sec =
        requests.saturating_mul(1_000_000).checked_div(wall_us.max(1)).unwrap_or(0);

    // The server's own accounting must match what this client observed.
    let delta = |key: &str| -> u64 {
        let read = |doc: &Json| doc.get(key).and_then(Json::as_u64).unwrap_or(0);
        read(&after).saturating_sub(read(&before))
    };
    let mut metric_faults = Vec::new();
    let checked = requests - errors.len() as u64 - sheds;
    if delta("checks_total") != checked {
        metric_faults.push(format!(
            "checks_total moved by {} for {checked} checked requests",
            delta("checks_total"),
        ));
    }
    if delta("cache_hits") != hits {
        metric_faults
            .push(format!("cache_hits moved by {} but client saw {hits}", delta("cache_hits")));
    }
    // The server's counters must reconcile among themselves too: every
    // check is exactly one of hit, miss, inconclusive or panicked.
    let accounted = delta("cache_hits")
        + delta("cache_misses")
        + delta("inconclusive_total")
        + delta("panics_total");
    if delta("checks_total") != accounted {
        metric_faults.push(format!(
            "checks_total moved by {} but hits+misses+inconclusive+panics moved by {accounted}",
            delta("checks_total")
        ));
    }

    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let min_hit_permille = (min_hit_rate * 1000.0).round() as u64;
    let hit_rate_ok = hit_permille >= min_hit_permille;
    let clean =
        disagreements.is_empty() && errors.is_empty() && metric_faults.is_empty() && hit_rate_ok;

    // Client-side round-trip quantiles, per endpoint (v2 addition).
    let latency_json = |histogram: &gam_obs::metrics::Histogram| {
        let snapshot = histogram.snapshot();
        Json::object([
            ("count", Json::UInt(snapshot.count)),
            ("p50_us", Json::UInt(snapshot.p50)),
            ("p90_us", Json::UInt(snapshot.p90)),
            ("p99_us", Json::UInt(snapshot.p99)),
            ("max_us", Json::UInt(snapshot.max)),
        ])
    };
    let check_snapshot = check_latency.snapshot();

    let report = Json::object([
        // Strict superset of gam-serve-bench/v1: `latency_us` is the only
        // addition; every v1 field is unchanged.
        ("schema", Json::from("gam-serve-bench/v2")),
        ("suite", Json::from(name.as_str())),
        ("server", Json::from(addr.as_str())),
        ("tests", Json::UInt(tests.len() as u64)),
        ("models", Json::array(models.iter().map(|m| Json::from(m.to_string())))),
        ("jobs", Json::UInt(jobs as u64)),
        ("requests", Json::UInt(requests)),
        ("errors", Json::UInt(errors.len() as u64)),
        ("disagreements", Json::UInt(disagreements.len() as u64)),
        ("shed_requests", Json::UInt(sheds)),
        ("retried_requests", Json::UInt(retried_requests)),
        ("retries_total", Json::UInt(retries_total)),
        ("backoff_us_total", Json::UInt(backoff_us_total)),
        ("max_retries", Json::UInt(u64::from(policy.max_retries))),
        ("cache_hits", Json::UInt(hits)),
        ("hit_rate_permille", Json::UInt(hit_permille)),
        ("min_hit_rate_permille", Json::UInt(min_hit_permille)),
        ("wall_us", Json::UInt(wall_us)),
        ("requests_per_sec", Json::UInt(requests_per_sec)),
        ("metrics_delta_ok", Json::from(metric_faults.is_empty())),
        (
            "latency_us",
            Json::object([
                ("check", latency_json(&check_latency)),
                ("metrics", latency_json(&metrics_latency)),
            ]),
        ),
        ("ok", Json::from(clean)),
    ]);
    if let Some(path) = out_path {
        std::fs::write(&path, format!("{report}\n"))
            .map_err(|err| format!("cannot write {path}: {err}"))?;
    }
    if as_json {
        println!("{report}");
    } else {
        println!(
            "serve bench {name} @ {addr}: {requests} requests ({} tests x {} models, {jobs} \
             jobs) in {wall_us}us ({requests_per_sec} req/s)",
            tests.len(),
            models.len()
        );
        println!(
            "  verdicts: {} agree, {} disagree, {} errors; cache hits {hits} \
             ({hit_permille}%o, floor {min_hit_permille}%o)",
            answered - disagreements.len() as u64 - errors.len() as u64,
            disagreements.len(),
            errors.len()
        );
        println!(
            "  overload: {sheds} shed after retries; {retried_requests} requests retried \
             ({retries_total} retries, {backoff_us_total}us backing off, budget {} per request)",
            policy.max_retries
        );
        println!(
            "  latency: /check p50 {}us p90 {}us p99 {}us (max {}us)",
            check_snapshot.p50, check_snapshot.p90, check_snapshot.p99, check_snapshot.max
        );
        for line in disagreements.iter().chain(&errors).chain(&metric_faults) {
            println!("  FAIL {line}");
        }
        if !hit_rate_ok {
            println!("  FAIL hit rate {hit_permille}%o below floor {min_hit_permille}%o");
        }
    }
    Ok(clean)
}

/// The lowercase wire name of a model, as `gam serve` parses it.
fn model_word(model: ModelKind) -> &'static str {
    gam_serve::model_name(model)
}

/// Sends one `/check` request through the bounded-retry client and extracts
/// `(allowed, cached)` from the single result row. A `503` that outlives the
/// retry budget is a counted [`ReplayOutcome::Shed`], not an error.
fn replay_one(
    addr: &str,
    body: &str,
    client: &gam_serve::ClientConfig,
    policy: &gam_serve::RetryPolicy,
) -> (Result<ReplayOutcome, String>, gam_serve::RetryStats) {
    let (response, stats) =
        match gam_serve::http::request_retrying(addr, "POST", "/check", Some(body), client, policy)
        {
            Ok(pair) => pair,
            Err(err) => return (Err(err.to_string()), gam_serve::RetryStats::default()),
        };
    (replay_verdict(&response), stats)
}

/// The verdict-extraction half of [`replay_one`].
fn replay_verdict(response: &gam_serve::http::Response) -> Result<ReplayOutcome, String> {
    if response.status == 503 {
        return Ok(ReplayOutcome::Shed);
    }
    if response.status != 200 {
        return Err(format!("HTTP {}: {}", response.status, response.body.trim()));
    }
    let json = Json::parse(&response.body).map_err(|err| format!("bad JSON: {err}"))?;
    let results = json
        .get("result")
        .and_then(|r| r.get("results"))
        .and_then(Json::as_array)
        .ok_or("response missing results")?;
    let row = results.first().ok_or("empty results")?;
    if let Some(err) = row.get("error").and_then(Json::as_str) {
        return Err(err.to_string());
    }
    let allowed = match row.get("verdict").and_then(Json::as_str) {
        Some("allowed") => true,
        Some("forbidden") => false,
        other => return Err(format!("bad verdict {other:?}")),
    };
    let cached = matches!(row.get("cached"), Some(Json::Bool(true)));
    Ok(ReplayOutcome::Verdict(allowed, cached))
}
