//! Instructions, operands and address expressions.

use std::fmt;

use crate::op::{AluOp, BranchCond, FenceKind, MemAccessType};
use crate::program::Label;
use crate::reg::Reg;
use crate::value::{Loc, Value};

/// A source operand of an instruction: a register or an immediate value.
///
/// Symbolic locations are immediates whose value is the location address, so
/// `Operand::loc(a)` is how litmus tests write "the constant `a`".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// Read the value of a register.
    Reg(Reg),
    /// A constant value.
    Imm(Value),
}

impl Operand {
    /// Convenience constructor for an immediate operand.
    #[must_use]
    pub fn imm(value: u64) -> Operand {
        Operand::Imm(Value::new(value))
    }

    /// Convenience constructor for a register operand.
    #[must_use]
    pub fn reg(reg: Reg) -> Operand {
        Operand::Reg(reg)
    }

    /// Convenience constructor for a symbolic-location immediate.
    #[must_use]
    pub fn loc(loc: Loc) -> Operand {
        Operand::Imm(loc.value())
    }

    /// Returns the register read by this operand, if any.
    #[must_use]
    pub fn source_reg(self) -> Option<Reg> {
        match self {
            Operand::Reg(r) => Some(r),
            Operand::Imm(_) => None,
        }
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(v) => write!(f, "{v}"),
        }
    }
}

impl From<Reg> for Operand {
    fn from(reg: Reg) -> Self {
        Operand::Reg(reg)
    }
}

impl From<Value> for Operand {
    fn from(value: Value) -> Self {
        Operand::Imm(value)
    }
}

impl From<Loc> for Operand {
    fn from(loc: Loc) -> Self {
        Operand::Imm(loc.value())
    }
}

/// The address expression of a load or store: `base + offset`.
///
/// The base is an operand (register or immediate/location) and the offset an
/// immediate. This is enough to express every address computation in the
/// paper: direct addresses (`Ld [a]`), register-indirect addresses
/// (`Ld [r1]`), and, combined with ALU instructions, artificial dependencies
/// (`r2 = a + r1 - r1; Ld [r2]`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Addr {
    /// Base of the address computation.
    pub base: Operand,
    /// Constant offset added to the base.
    pub offset: u64,
}

impl Addr {
    /// Address held in a register, with no offset.
    #[must_use]
    pub fn reg(reg: Reg) -> Addr {
        Addr { base: Operand::Reg(reg), offset: 0 }
    }

    /// Fixed symbolic location address.
    #[must_use]
    pub fn loc(loc: Loc) -> Addr {
        Addr { base: Operand::Imm(loc.value()), offset: 0 }
    }

    /// Register base plus constant offset.
    #[must_use]
    pub fn reg_offset(reg: Reg, offset: u64) -> Addr {
        Addr { base: Operand::Reg(reg), offset }
    }

    /// Returns the register read to compute the address, if any.
    #[must_use]
    pub fn source_reg(self) -> Option<Reg> {
        self.base.source_reg()
    }

    /// Evaluates the address given the value of its base operand.
    #[must_use]
    pub fn evaluate(self, base: Value) -> Value {
        base.wrapping_add(Value::new(self.offset))
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.offset == 0 {
            write!(f, "[{}]", self.base)
        } else {
            write!(f, "[{} + {}]", self.base, self.offset)
        }
    }
}

/// A single instruction of the GAM ISA.
///
/// The instruction set contains exactly the instruction classes the paper's
/// construction distinguishes: register-to-register computation, loads,
/// stores, fences and branches.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Instruction {
    /// `dst = op(lhs, rhs)` — a register-to-register ALU instruction.
    Alu {
        /// Destination register.
        dst: Reg,
        /// Operation to perform.
        op: AluOp,
        /// First source operand.
        lhs: Operand,
        /// Second source operand.
        rhs: Operand,
    },
    /// `dst = Ld [addr]` — a load.
    Load {
        /// Destination register receiving the loaded value.
        dst: Reg,
        /// Address expression of the access.
        addr: Addr,
    },
    /// `St [addr] data` — a store.
    Store {
        /// Address expression of the access.
        addr: Addr,
        /// Data operand to be written.
        data: Operand,
    },
    /// One of the four basic fences.
    Fence {
        /// Which access types the fence orders.
        kind: FenceKind,
    },
    /// Conditional branch to a label.
    Branch {
        /// Condition evaluated on the two operands.
        cond: BranchCond,
        /// First comparison operand.
        lhs: Operand,
        /// Second comparison operand.
        rhs: Operand,
        /// Branch target label (within the same thread).
        target: Label,
    },
}

impl Instruction {
    /// Returns true if the instruction is a load.
    #[must_use]
    pub fn is_load(&self) -> bool {
        matches!(self, Instruction::Load { .. })
    }

    /// Returns true if the instruction is a store.
    #[must_use]
    pub fn is_store(&self) -> bool {
        matches!(self, Instruction::Store { .. })
    }

    /// Returns true if the instruction is a memory instruction (load or store).
    #[must_use]
    pub fn is_memory(&self) -> bool {
        self.is_load() || self.is_store()
    }

    /// Returns true if the instruction is a fence.
    #[must_use]
    pub fn is_fence(&self) -> bool {
        matches!(self, Instruction::Fence { .. })
    }

    /// Returns true if the instruction is a branch.
    #[must_use]
    pub fn is_branch(&self) -> bool {
        matches!(self, Instruction::Branch { .. })
    }

    /// Returns the memory access type if this is a memory instruction.
    #[must_use]
    pub fn mem_access_type(&self) -> Option<MemAccessType> {
        match self {
            Instruction::Load { .. } => Some(MemAccessType::Load),
            Instruction::Store { .. } => Some(MemAccessType::Store),
            _ => None,
        }
    }

    /// The read set `RS(I)` of the paper (Definition 1): every register the
    /// instruction reads, ignoring the PC.
    #[must_use]
    pub fn read_set(&self) -> Vec<Reg> {
        let mut regs = Vec::new();
        let mut push = |op: &Operand| {
            if let Operand::Reg(r) = op {
                if !regs.contains(r) {
                    regs.push(*r);
                }
            }
        };
        match self {
            Instruction::Alu { lhs, rhs, .. } => {
                push(lhs);
                push(rhs);
            }
            Instruction::Load { addr, .. } => push(&addr.base),
            Instruction::Store { addr, data } => {
                push(&addr.base);
                push(data);
            }
            Instruction::Fence { .. } => {}
            Instruction::Branch { lhs, rhs, .. } => {
                push(lhs);
                push(rhs);
            }
        }
        regs
    }

    /// The write set `WS(I)` of the paper (Definition 2): every register the
    /// instruction can write, ignoring the PC.
    #[must_use]
    pub fn write_set(&self) -> Vec<Reg> {
        match self {
            Instruction::Alu { dst, .. } | Instruction::Load { dst, .. } => vec![*dst],
            Instruction::Store { .. } | Instruction::Fence { .. } | Instruction::Branch { .. } => {
                Vec::new()
            }
        }
    }

    /// The address read set `ARS(I)` of the paper (Definition 3): registers
    /// read to compute the address of a memory instruction.
    #[must_use]
    pub fn addr_read_set(&self) -> Vec<Reg> {
        match self {
            Instruction::Load { addr, .. } | Instruction::Store { addr, .. } => {
                addr.source_reg().into_iter().collect()
            }
            _ => Vec::new(),
        }
    }

    /// Returns the registers read to produce the *data* of a store (the store
    /// data read set). Empty for all other instruction kinds.
    #[must_use]
    pub fn data_read_set(&self) -> Vec<Reg> {
        match self {
            Instruction::Store { data, .. } => data.source_reg().into_iter().collect(),
            _ => Vec::new(),
        }
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instruction::Alu { dst, op, lhs, rhs } => write!(f, "{dst} = {op} {lhs}, {rhs}"),
            Instruction::Load { dst, addr } => write!(f, "{dst} = Ld {addr}"),
            Instruction::Store { addr, data } => write!(f, "St {addr} {data}"),
            Instruction::Fence { kind } => write!(f, "{kind}"),
            Instruction::Branch { cond, lhs, rhs, target } => {
                write!(f, "{cond} {lhs}, {rhs} -> {target}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u32) -> Reg {
        Reg::new(i)
    }

    #[test]
    fn operand_constructors() {
        assert_eq!(Operand::imm(5), Operand::Imm(Value::new(5)));
        assert_eq!(Operand::reg(r(1)), Operand::Reg(r(1)));
        let a = Loc::new("a");
        assert_eq!(Operand::loc(a), Operand::Imm(a.value()));
        assert_eq!(Operand::from(r(2)).source_reg(), Some(r(2)));
        assert_eq!(Operand::imm(3).source_reg(), None);
    }

    #[test]
    fn addr_evaluation() {
        let a = Addr::reg_offset(r(1), 8);
        assert_eq!(a.evaluate(Value::new(100)), Value::new(108));
        assert_eq!(a.source_reg(), Some(r(1)));
        let fixed = Addr::loc(Loc::new("x"));
        assert_eq!(fixed.source_reg(), None);
        assert_eq!(fixed.evaluate(Loc::new("x").value()), Loc::new("x").value());
    }

    #[test]
    fn classification_predicates() {
        let load = Instruction::Load { dst: r(1), addr: Addr::loc(Loc::new("a")) };
        let store = Instruction::Store { addr: Addr::loc(Loc::new("a")), data: Operand::imm(1) };
        let fence = Instruction::Fence { kind: FenceKind::SS };
        assert!(load.is_load() && load.is_memory() && !load.is_store());
        assert!(store.is_store() && store.is_memory() && !store.is_load());
        assert!(fence.is_fence() && !fence.is_memory());
        assert_eq!(load.mem_access_type(), Some(MemAccessType::Load));
        assert_eq!(store.mem_access_type(), Some(MemAccessType::Store));
        assert_eq!(fence.mem_access_type(), None);
    }

    #[test]
    fn read_write_sets_alu() {
        let i = Instruction::Alu {
            dst: r(3),
            op: AluOp::Add,
            lhs: Operand::reg(r(1)),
            rhs: Operand::reg(r(2)),
        };
        assert_eq!(i.read_set(), vec![r(1), r(2)]);
        assert_eq!(i.write_set(), vec![r(3)]);
        assert!(i.addr_read_set().is_empty());
    }

    #[test]
    fn read_set_deduplicates() {
        let i = Instruction::Alu {
            dst: r(2),
            op: AluOp::Sub,
            lhs: Operand::reg(r(1)),
            rhs: Operand::reg(r(1)),
        };
        assert_eq!(i.read_set(), vec![r(1)]);
    }

    #[test]
    fn read_write_sets_load_store() {
        let load = Instruction::Load { dst: r(2), addr: Addr::reg(r(1)) };
        assert_eq!(load.read_set(), vec![r(1)]);
        assert_eq!(load.write_set(), vec![r(2)]);
        assert_eq!(load.addr_read_set(), vec![r(1)]);
        assert!(load.data_read_set().is_empty());

        let store = Instruction::Store { addr: Addr::reg(r(1)), data: Operand::reg(r(3)) };
        assert_eq!(store.read_set(), vec![r(1), r(3)]);
        assert!(store.write_set().is_empty());
        assert_eq!(store.addr_read_set(), vec![r(1)]);
        assert_eq!(store.data_read_set(), vec![r(3)]);
    }

    #[test]
    fn fence_and_branch_sets() {
        let fence = Instruction::Fence { kind: FenceKind::LL };
        assert!(fence.read_set().is_empty());
        assert!(fence.write_set().is_empty());

        let branch = Instruction::Branch {
            cond: BranchCond::Eq,
            lhs: Operand::reg(r(1)),
            rhs: Operand::imm(0),
            target: Label::new("done"),
        };
        assert_eq!(branch.read_set(), vec![r(1)]);
        assert!(branch.write_set().is_empty());
        assert!(branch.is_branch());
    }

    #[test]
    fn display_formats() {
        let a = Loc::new("a");
        let load = Instruction::Load { dst: r(1), addr: Addr::loc(a) };
        assert!(load.to_string().starts_with("r1 = Ld ["));
        let st = Instruction::Store { addr: Addr::reg(r(2)), data: Operand::imm(7) };
        assert_eq!(st.to_string(), "St [r2] 7");
        assert_eq!(Instruction::Fence { kind: FenceKind::SL }.to_string(), "FenceSL");
    }
}
