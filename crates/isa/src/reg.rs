//! Architectural register names.

use std::fmt;

/// An architectural general-purpose register.
///
/// Registers are identified by a small integer index. The program counter is
/// *not* representable as a [`Reg`]; the paper's dependency definitions
/// (Definitions 1–5) explicitly ignore the PC register, so keeping it out of
/// the register namespace makes that impossible to get wrong.
///
/// # Example
///
/// ```
/// use gam_isa::Reg;
/// let r1 = Reg::new(1);
/// assert_eq!(r1.index(), 1);
/// assert_eq!(r1.to_string(), "r1");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u32);

impl Reg {
    /// Creates a register with the given index.
    #[must_use]
    pub const fn new(index: u32) -> Self {
        Reg(index)
    }

    /// Returns the register index.
    #[must_use]
    pub const fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl From<u32> for Reg {
    fn from(index: u32) -> Self {
        Reg::new(index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn construction_and_accessors() {
        let r = Reg::new(7);
        assert_eq!(r.index(), 7);
        assert_eq!(Reg::from(7u32), r);
    }

    #[test]
    fn display_format() {
        assert_eq!(Reg::new(0).to_string(), "r0");
        assert_eq!(Reg::new(42).to_string(), "r42");
    }

    #[test]
    fn ordering_follows_index() {
        let mut set = BTreeSet::new();
        set.insert(Reg::new(3));
        set.insert(Reg::new(1));
        set.insert(Reg::new(2));
        let ordered: Vec<u32> = set.into_iter().map(Reg::index).collect();
        assert_eq!(ordered, vec![1, 2, 3]);
    }

    #[test]
    fn copy_and_hash() {
        use std::collections::HashSet;
        let r = Reg::new(5);
        let copied = r;
        let mut s = HashSet::new();
        s.insert(r);
        assert!(s.contains(&copied));
    }
}
