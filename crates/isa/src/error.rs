//! Error types for the `gam-isa` crate.

use std::fmt;

/// Errors produced while constructing or validating programs and litmus tests.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum IsaError {
    /// A label was referenced by a branch but never defined in the thread.
    UndefinedLabel {
        /// The missing label name.
        label: String,
        /// The thread in which the reference appears.
        thread: usize,
    },
    /// A label was defined more than once within a thread.
    DuplicateLabel {
        /// The duplicated label name.
        label: String,
        /// The thread in which the duplicate appears.
        thread: usize,
    },
    /// A program was constructed with no threads.
    EmptyProgram,
    /// A thread was given an inconsistent processor identifier.
    ProcIdMismatch {
        /// The index the thread occupies in the program.
        expected: usize,
        /// The processor id stored in the thread.
        found: usize,
    },
    /// A litmus-test observation refers to a register that the program never writes.
    UnwrittenObservedRegister {
        /// Processor the observation refers to.
        proc: usize,
        /// Register index observed.
        reg: u32,
    },
    /// Two distinct symbolic locations were mapped to the same concrete address.
    LocationAddressClash {
        /// Name of the first location.
        first: String,
        /// Name of the second location.
        second: String,
    },
}

impl fmt::Display for IsaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IsaError::UndefinedLabel { label, thread } => {
                write!(f, "label `{label}` referenced but not defined in thread {thread}")
            }
            IsaError::DuplicateLabel { label, thread } => {
                write!(f, "label `{label}` defined more than once in thread {thread}")
            }
            IsaError::EmptyProgram => write!(f, "program has no threads"),
            IsaError::ProcIdMismatch { expected, found } => {
                write!(f, "thread at index {expected} carries processor id {found}")
            }
            IsaError::UnwrittenObservedRegister { proc, reg } => {
                write!(f, "observed register r{reg} on processor {proc} is never written")
            }
            IsaError::LocationAddressClash { first, second } => {
                write!(f, "locations `{first}` and `{second}` map to the same address")
            }
        }
    }
}

impl std::error::Error for IsaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_undefined_label() {
        let err = IsaError::UndefinedLabel { label: "loop".into(), thread: 1 };
        assert_eq!(err.to_string(), "label `loop` referenced but not defined in thread 1");
    }

    #[test]
    fn display_empty_program() {
        assert_eq!(IsaError::EmptyProgram.to_string(), "program has no threads");
    }

    #[test]
    fn display_proc_id_mismatch() {
        let err = IsaError::ProcIdMismatch { expected: 0, found: 3 };
        assert!(err.to_string().contains("processor id 3"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<IsaError>();
    }
}
