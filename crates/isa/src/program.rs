//! Thread programs, processor identifiers and multiprocessor programs.

use std::collections::BTreeMap;
use std::fmt;

use crate::error::IsaError;
use crate::instr::{Addr, Instruction, Operand};
use crate::op::{AluOp, BranchCond, FenceKind};
use crate::reg::Reg;
use crate::value::Loc;

/// Identifier of a (logical) processor in a multiprocessor program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcId(usize);

impl ProcId {
    /// Creates a processor identifier.
    #[must_use]
    pub const fn new(index: usize) -> Self {
        ProcId(index)
    }

    /// Returns the processor index.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0 + 1)
    }
}

impl From<usize> for ProcId {
    fn from(index: usize) -> Self {
        ProcId::new(index)
    }
}

/// A branch target label inside a thread program.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Label(String);

impl Label {
    /// Creates a label from a name.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Label(name.into())
    }

    /// Returns the label name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for Label {
    fn from(name: &str) -> Self {
        Label::new(name)
    }
}

/// The instruction sequence of one processor, together with label definitions.
///
/// Instruction indices within a thread are the *program order* positions used
/// throughout the memory-model crates.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ThreadProgram {
    proc: ProcId,
    instructions: Vec<Instruction>,
    /// Label name → index of the instruction the label precedes (may equal
    /// `instructions.len()` for an end-of-thread label).
    labels: BTreeMap<String, usize>,
}

impl ThreadProgram {
    /// Starts building a thread program for the given processor.
    #[must_use]
    pub fn builder(proc: ProcId) -> ThreadBuilder {
        ThreadBuilder { proc, instructions: Vec::new(), labels: BTreeMap::new() }
    }

    /// Returns the processor this thread runs on.
    #[must_use]
    pub fn proc(&self) -> ProcId {
        self.proc
    }

    /// Returns the instructions in program order.
    #[must_use]
    pub fn instructions(&self) -> &[Instruction] {
        &self.instructions
    }

    /// Returns the number of instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// Returns true if the thread has no instructions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// Resolves a label to the program-order index it points at.
    #[must_use]
    pub fn resolve_label(&self, label: &Label) -> Option<usize> {
        self.labels.get(label.name()).copied()
    }

    /// Returns the labels defined in this thread with their target indices.
    #[must_use]
    pub fn labels(&self) -> &BTreeMap<String, usize> {
        &self.labels
    }

    /// Number of memory instructions (loads and stores) in the thread.
    #[must_use]
    pub fn memory_instruction_count(&self) -> usize {
        self.instructions.iter().filter(|i| i.is_memory()).count()
    }

    /// Returns true if the thread contains any branch instruction.
    #[must_use]
    pub fn has_branches(&self) -> bool {
        self.instructions.iter().any(Instruction::is_branch)
    }

    /// Validates label references.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::UndefinedLabel`] when a branch targets a label that
    /// is not defined in this thread.
    pub fn validate(&self) -> Result<(), IsaError> {
        for instr in &self.instructions {
            if let Instruction::Branch { target, .. } = instr {
                if !self.labels.contains_key(target.name()) {
                    return Err(IsaError::UndefinedLabel {
                        label: target.name().to_string(),
                        thread: self.proc.index(),
                    });
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for ThreadProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}:", self.proc)?;
        for (idx, instr) in self.instructions.iter().enumerate() {
            for (name, target) in &self.labels {
                if *target == idx {
                    writeln!(f, "{name}:")?;
                }
            }
            writeln!(f, "  I{}: {instr}", idx + 1)?;
        }
        for (name, target) in &self.labels {
            if *target == self.instructions.len() {
                writeln!(f, "{name}:")?;
            }
        }
        Ok(())
    }
}

/// Incremental builder for [`ThreadProgram`].
///
/// The builder offers one method per instruction class plus litmus-test
/// conveniences. All methods return `&mut Self` so construction chains.
#[derive(Debug)]
pub struct ThreadBuilder {
    proc: ProcId,
    instructions: Vec<Instruction>,
    labels: BTreeMap<String, usize>,
}

impl ThreadBuilder {
    /// Appends an arbitrary instruction.
    pub fn push(&mut self, instruction: Instruction) -> &mut Self {
        self.instructions.push(instruction);
        self
    }

    /// Appends `dst = Ld [addr]`.
    pub fn load(&mut self, dst: Reg, addr: Addr) -> &mut Self {
        self.push(Instruction::Load { dst, addr })
    }

    /// Appends `St [addr] data`.
    pub fn store(&mut self, addr: Addr, data: impl Into<Operand>) -> &mut Self {
        self.push(Instruction::Store { addr, data: data.into() })
    }

    /// Appends `dst = op(lhs, rhs)`.
    pub fn alu(
        &mut self,
        dst: Reg,
        op: AluOp,
        lhs: impl Into<Operand>,
        rhs: impl Into<Operand>,
    ) -> &mut Self {
        self.push(Instruction::Alu { dst, op, lhs: lhs.into(), rhs: rhs.into() })
    }

    /// Appends `dst = src` (a register/immediate move).
    pub fn mov(&mut self, dst: Reg, src: impl Into<Operand>) -> &mut Self {
        self.alu(dst, AluOp::Mov, src, Operand::imm(0))
    }

    /// Appends the artificial-dependency idiom of the paper:
    /// `dst = loc + dep - dep`, which syntactically depends on `dep` but always
    /// evaluates to the address of `loc`.
    pub fn artificial_addr_dep(&mut self, dst: Reg, loc: Loc, dep: Reg) -> &mut Self {
        let scratch = dst;
        self.alu(scratch, AluOp::Add, Operand::loc(loc), Operand::reg(dep));
        self.alu(dst, AluOp::Sub, Operand::reg(scratch), Operand::reg(dep))
    }

    /// Appends a single basic fence.
    pub fn fence(&mut self, kind: FenceKind) -> &mut Self {
        self.push(Instruction::Fence { kind })
    }

    /// Appends the acquire fence (`FenceLL; FenceLS`).
    pub fn fence_acquire(&mut self) -> &mut Self {
        for kind in FenceKind::acquire() {
            self.fence(kind);
        }
        self
    }

    /// Appends the release fence (`FenceLS; FenceSS`).
    pub fn fence_release(&mut self) -> &mut Self {
        for kind in FenceKind::release() {
            self.fence(kind);
        }
        self
    }

    /// Appends the full fence (all four basic fences).
    pub fn fence_full(&mut self) -> &mut Self {
        for kind in FenceKind::full() {
            self.fence(kind);
        }
        self
    }

    /// Appends a conditional branch to `target`.
    pub fn branch(
        &mut self,
        cond: BranchCond,
        lhs: impl Into<Operand>,
        rhs: impl Into<Operand>,
        target: impl Into<Label>,
    ) -> &mut Self {
        self.push(Instruction::Branch {
            cond,
            lhs: lhs.into(),
            rhs: rhs.into(),
            target: target.into(),
        })
    }

    /// Defines a label at the current position (the next pushed instruction).
    pub fn label(&mut self, name: impl Into<String>) -> &mut Self {
        self.labels.insert(name.into(), self.instructions.len());
        self
    }

    /// Finishes the thread program.
    #[must_use]
    pub fn build(&mut self) -> ThreadProgram {
        ThreadProgram {
            proc: self.proc,
            instructions: std::mem::take(&mut self.instructions),
            labels: std::mem::take(&mut self.labels),
        }
    }
}

/// A complete multiprocessor program: one [`ThreadProgram`] per processor.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Program {
    threads: Vec<ThreadProgram>,
}

impl Program {
    /// Creates a program from its per-processor threads.
    ///
    /// Thread `i` must carry processor id `i`; use [`Program::try_new`] to
    /// observe violations as errors instead of panicking.
    ///
    /// # Panics
    ///
    /// Panics if the thread list is empty or a thread's processor id does not
    /// match its position.
    #[must_use]
    pub fn new(threads: Vec<ThreadProgram>) -> Self {
        Self::try_new(threads).expect("invalid program")
    }

    /// Fallible counterpart of [`Program::new`].
    ///
    /// # Errors
    ///
    /// Returns an error if the thread list is empty, a thread's processor id
    /// does not match its position, or a branch references an undefined label.
    pub fn try_new(threads: Vec<ThreadProgram>) -> Result<Self, IsaError> {
        if threads.is_empty() {
            return Err(IsaError::EmptyProgram);
        }
        for (idx, thread) in threads.iter().enumerate() {
            if thread.proc().index() != idx {
                return Err(IsaError::ProcIdMismatch {
                    expected: idx,
                    found: thread.proc().index(),
                });
            }
            thread.validate()?;
        }
        Ok(Program { threads })
    }

    /// Returns the per-processor threads.
    #[must_use]
    pub fn threads(&self) -> &[ThreadProgram] {
        &self.threads
    }

    /// Returns the thread running on the given processor, if any.
    #[must_use]
    pub fn thread(&self, proc: ProcId) -> Option<&ThreadProgram> {
        self.threads.get(proc.index())
    }

    /// Number of processors in the program.
    #[must_use]
    pub fn num_threads(&self) -> usize {
        self.threads.len()
    }

    /// Total number of instructions across all threads.
    #[must_use]
    pub fn instruction_count(&self) -> usize {
        self.threads.iter().map(ThreadProgram::len).sum()
    }

    /// Total number of memory instructions (loads and stores) across all threads.
    #[must_use]
    pub fn memory_instruction_count(&self) -> usize {
        self.threads.iter().map(ThreadProgram::memory_instruction_count).sum()
    }

    /// Returns true if any thread contains a branch.
    #[must_use]
    pub fn has_branches(&self) -> bool {
        self.threads.iter().any(ThreadProgram::has_branches)
    }

    /// Iterates over `(ProcId, program-order index, &Instruction)` for every
    /// instruction in the program.
    pub fn iter_instructions(&self) -> impl Iterator<Item = (ProcId, usize, &Instruction)> {
        self.threads.iter().flat_map(|t| {
            t.instructions().iter().enumerate().map(move |(idx, instr)| (t.proc(), idx, instr))
        })
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for thread in &self.threads {
            write!(f, "{thread}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Loc;

    fn r(i: u32) -> Reg {
        Reg::new(i)
    }

    #[test]
    fn builder_constructs_in_order() {
        let a = Loc::new("a");
        let mut b = ThreadProgram::builder(ProcId::new(0));
        b.store(Addr::loc(a), Operand::imm(1)).fence(FenceKind::SS).load(r(1), Addr::loc(a));
        let t = b.build();
        assert_eq!(t.len(), 3);
        assert!(t.instructions()[0].is_store());
        assert!(t.instructions()[1].is_fence());
        assert!(t.instructions()[2].is_load());
        assert_eq!(t.memory_instruction_count(), 2);
        assert!(!t.has_branches());
    }

    #[test]
    fn builder_full_fence_emits_four() {
        let mut b = ThreadProgram::builder(ProcId::new(0));
        b.fence_full();
        assert_eq!(b.build().len(), 4);
    }

    #[test]
    fn builder_acquire_release() {
        let mut b = ThreadProgram::builder(ProcId::new(0));
        b.fence_acquire().fence_release();
        let t = b.build();
        assert_eq!(t.len(), 4);
        assert!(t.instructions().iter().all(Instruction::is_fence));
    }

    #[test]
    fn artificial_dep_reads_dep_register() {
        let mut b = ThreadProgram::builder(ProcId::new(0));
        b.artificial_addr_dep(r(2), Loc::new("a"), r(1));
        let t = b.build();
        assert_eq!(t.len(), 2);
        assert!(t.instructions()[0].read_set().contains(&r(1)));
        assert!(t.instructions()[1].read_set().contains(&r(1)));
        assert_eq!(t.instructions()[1].write_set(), vec![r(2)]);
    }

    #[test]
    fn labels_resolve() {
        let mut b = ThreadProgram::builder(ProcId::new(0));
        b.label("start")
            .load(r(1), Addr::loc(Loc::new("a")))
            .branch(BranchCond::Eq, Operand::reg(r(1)), Operand::imm(0), "start")
            .label("end");
        let t = b.build();
        assert_eq!(t.resolve_label(&Label::new("start")), Some(0));
        assert_eq!(t.resolve_label(&Label::new("end")), Some(2));
        assert_eq!(t.resolve_label(&Label::new("missing")), None);
        assert!(t.validate().is_ok());
        assert!(t.has_branches());
    }

    #[test]
    fn undefined_label_rejected() {
        let mut b = ThreadProgram::builder(ProcId::new(0));
        b.branch(BranchCond::Ne, Operand::reg(r(1)), Operand::imm(0), "nowhere");
        let t = b.build();
        assert_eq!(
            t.validate(),
            Err(IsaError::UndefinedLabel { label: "nowhere".into(), thread: 0 })
        );
        assert!(Program::try_new(vec![t]).is_err());
    }

    #[test]
    fn program_construction_and_counts() {
        let a = Loc::new("a");
        let b_loc = Loc::new("b");
        let mut p1 = ThreadProgram::builder(ProcId::new(0));
        p1.store(Addr::loc(a), Operand::imm(1)).load(r(1), Addr::loc(b_loc));
        let mut p2 = ThreadProgram::builder(ProcId::new(1));
        p2.store(Addr::loc(b_loc), Operand::imm(1)).load(r(2), Addr::loc(a));
        let prog = Program::new(vec![p1.build(), p2.build()]);
        assert_eq!(prog.num_threads(), 2);
        assert_eq!(prog.instruction_count(), 4);
        assert_eq!(prog.memory_instruction_count(), 4);
        assert!(!prog.has_branches());
        assert_eq!(prog.iter_instructions().count(), 4);
        assert!(prog.thread(ProcId::new(0)).is_some());
        assert!(prog.thread(ProcId::new(5)).is_none());
    }

    #[test]
    fn empty_program_rejected() {
        assert_eq!(Program::try_new(vec![]), Err(IsaError::EmptyProgram));
    }

    #[test]
    fn proc_id_mismatch_rejected() {
        let mut b = ThreadProgram::builder(ProcId::new(3));
        b.load(r(1), Addr::loc(Loc::new("a")));
        let err = Program::try_new(vec![b.build()]).unwrap_err();
        assert_eq!(err, IsaError::ProcIdMismatch { expected: 0, found: 3 });
    }

    #[test]
    fn display_contains_instructions() {
        let mut b = ThreadProgram::builder(ProcId::new(0));
        b.store(Addr::loc(Loc::new("a")), Operand::imm(1));
        let prog = Program::new(vec![b.build()]);
        let text = prog.to_string();
        assert!(text.contains("P1:"));
        assert!(text.contains("I1: St ["));
    }
}
