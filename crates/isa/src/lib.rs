//! # gam-isa
//!
//! A minimal RISC-like instruction set, program representation and litmus-test
//! infrastructure used by the GAM (General Atomic Memory Model) reproduction.
//!
//! The instruction set is exactly what the paper *Constructing a Weak Memory
//! Model* (ISCA 2018) needs to express its constructions and litmus tests:
//!
//! * register-to-register ALU instructions,
//! * loads and stores whose addresses are computed from registers and
//!   immediates,
//! * the four basic fences `FenceLL`, `FenceLS`, `FenceSL`, `FenceSS`
//!   (plus the derived acquire / release / full fences),
//! * conditional branches.
//!
//! Programs are collections of per-processor instruction sequences
//! ([`ThreadProgram`], [`Program`]). Litmus tests ([`litmus::LitmusTest`])
//! wrap a program with an initial state and a condition on the final state;
//! [`litmus::library`] contains every litmus test that appears in the paper
//! plus a collection of classical tests.
//!
//! # Example
//!
//! ```
//! use gam_isa::prelude::*;
//!
//! // Dekker (Figure 2 of the paper): two processors each store to one
//! // location then load the other.
//! let a = Loc::new("a");
//! let b = Loc::new("b");
//! let mut p1 = ThreadProgram::builder(ProcId::new(0));
//! p1.store(Addr::loc(a), Operand::imm(1));
//! p1.load(Reg::new(1), Addr::loc(b));
//! let mut p2 = ThreadProgram::builder(ProcId::new(1));
//! p2.store(Addr::loc(b), Operand::imm(1));
//! p2.load(Reg::new(2), Addr::loc(a));
//! let program = Program::new(vec![p1.build(), p2.build()]);
//! assert_eq!(program.num_threads(), 2);
//! assert_eq!(program.memory_instruction_count(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod error;
pub mod instr;
pub mod litmus;
pub mod op;
pub mod program;
pub mod reg;
pub mod value;

pub use error::IsaError;
pub use instr::{Addr, Instruction, Operand};
pub use op::{AluOp, BranchCond, FenceKind, MemAccessType};
pub use program::{Label, ProcId, Program, ThreadBuilder, ThreadProgram};
pub use reg::Reg;
pub use value::{Loc, Value};

/// Convenience re-exports for downstream crates and examples.
pub mod prelude {
    pub use crate::instr::{Addr, Instruction, Operand};
    pub use crate::litmus::{LitmusTest, Observation, Outcome};
    pub use crate::op::{AluOp, BranchCond, FenceKind, MemAccessType};
    pub use crate::program::{Label, ProcId, Program, ThreadBuilder, ThreadProgram};
    pub use crate::reg::Reg;
    pub use crate::value::{Loc, Value};
}
