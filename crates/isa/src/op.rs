//! Operation kinds: ALU operations, branch conditions, fence kinds and memory
//! access types.

use std::fmt;

use crate::value::Value;

/// Arithmetic / logic operations for register-to-register instructions.
///
/// The set is intentionally small: it is sufficient to express every
/// computation in the paper's litmus tests (notably the artificial address
/// dependency `r2 = a + r1 - r1`) and realistic enough for the dependency
/// analysis to be meaningful.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise exclusive or.
    Xor,
    /// Copy of the first operand (the second operand is ignored).
    Mov,
}

impl AluOp {
    /// Applies the operation to two values.
    ///
    /// # Example
    ///
    /// ```
    /// use gam_isa::{AluOp, Value};
    /// assert_eq!(AluOp::Add.apply(Value::new(2), Value::new(3)), Value::new(5));
    /// assert_eq!(AluOp::Mov.apply(Value::new(2), Value::new(3)), Value::new(2));
    /// ```
    #[must_use]
    pub fn apply(self, lhs: Value, rhs: Value) -> Value {
        match self {
            AluOp::Add => lhs.wrapping_add(rhs),
            AluOp::Sub => lhs.wrapping_sub(rhs),
            AluOp::And => Value::new(lhs.raw() & rhs.raw()),
            AluOp::Or => Value::new(lhs.raw() | rhs.raw()),
            AluOp::Xor => Value::new(lhs.raw() ^ rhs.raw()),
            AluOp::Mov => lhs,
        }
    }
}

impl fmt::Display for AluOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Mov => "mov",
        };
        f.write_str(s)
    }
}

/// Conditions for conditional branches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum BranchCond {
    /// Branch if the two operands are equal.
    Eq,
    /// Branch if the two operands differ.
    Ne,
}

impl BranchCond {
    /// Evaluates the condition on two values.
    #[must_use]
    pub fn holds(self, lhs: Value, rhs: Value) -> bool {
        match self {
            BranchCond::Eq => lhs == rhs,
            BranchCond::Ne => lhs != rhs,
        }
    }
}

impl fmt::Display for BranchCond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BranchCond::Eq => "beq",
            BranchCond::Ne => "bne",
        })
    }
}

/// The type of memory access a fence side refers to: loads or stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemAccessType {
    /// A load access.
    Load,
    /// A store access.
    Store,
}

impl fmt::Display for MemAccessType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            MemAccessType::Load => "L",
            MemAccessType::Store => "S",
        })
    }
}

/// One of the four basic fences of the paper (Section III-D1).
///
/// A `FenceXY` orders all memory instructions of type `X` that are older than
/// the fence before all memory instructions of type `Y` that are younger than
/// the fence, in the execution order (constraint *FenceOrd*, Figure 12).
/// Stronger fences (acquire, release, full) are sequences of the basic ones;
/// see [`FenceKind::acquire`], [`FenceKind::release`] and [`FenceKind::full`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FenceKind {
    /// The access type ordered *before* the fence.
    pub before: MemAccessType,
    /// The access type ordered *after* the fence.
    pub after: MemAccessType,
}

impl FenceKind {
    /// `FenceLL`: orders older loads before younger loads.
    pub const LL: FenceKind = FenceKind { before: MemAccessType::Load, after: MemAccessType::Load };
    /// `FenceLS`: orders older loads before younger stores.
    pub const LS: FenceKind =
        FenceKind { before: MemAccessType::Load, after: MemAccessType::Store };
    /// `FenceSL`: orders older stores before younger loads.
    pub const SL: FenceKind =
        FenceKind { before: MemAccessType::Store, after: MemAccessType::Load };
    /// `FenceSS`: orders older stores before younger stores.
    pub const SS: FenceKind =
        FenceKind { before: MemAccessType::Store, after: MemAccessType::Store };

    /// The four basic fences in a fixed order.
    pub const ALL: [FenceKind; 4] = [Self::LL, Self::LS, Self::SL, Self::SS];

    /// The acquire fence of the paper: `FenceLL; FenceLS`.
    #[must_use]
    pub fn acquire() -> Vec<FenceKind> {
        vec![Self::LL, Self::LS]
    }

    /// The release fence of the paper: `FenceLS; FenceSS`.
    #[must_use]
    pub fn release() -> Vec<FenceKind> {
        vec![Self::LS, Self::SS]
    }

    /// The full fence of the paper: all four basic fences.
    #[must_use]
    pub fn full() -> Vec<FenceKind> {
        vec![Self::LL, Self::LS, Self::SL, Self::SS]
    }

    /// Returns true if the fence orders older accesses of type `ty` (the `X` in `FenceXY`).
    #[must_use]
    pub fn orders_older(self, ty: MemAccessType) -> bool {
        self.before == ty
    }

    /// Returns true if the fence orders younger accesses of type `ty` (the `Y` in `FenceXY`).
    #[must_use]
    pub fn orders_younger(self, ty: MemAccessType) -> bool {
        self.after == ty
    }
}

impl fmt::Display for FenceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fence{}{}", self.before, self.after)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_semantics() {
        let a = Value::new(0b1100);
        let b = Value::new(0b1010);
        assert_eq!(AluOp::Add.apply(a, b), Value::new(0b1100 + 0b1010));
        assert_eq!(AluOp::Sub.apply(a, b), Value::new(0b1100 - 0b1010));
        assert_eq!(AluOp::And.apply(a, b), Value::new(0b1000));
        assert_eq!(AluOp::Or.apply(a, b), Value::new(0b1110));
        assert_eq!(AluOp::Xor.apply(a, b), Value::new(0b0110));
        assert_eq!(AluOp::Mov.apply(a, b), a);
    }

    #[test]
    fn branch_conditions() {
        assert!(BranchCond::Eq.holds(Value::new(1), Value::new(1)));
        assert!(!BranchCond::Eq.holds(Value::new(1), Value::new(2)));
        assert!(BranchCond::Ne.holds(Value::new(1), Value::new(2)));
        assert!(!BranchCond::Ne.holds(Value::new(1), Value::new(1)));
    }

    #[test]
    fn fence_display_names() {
        assert_eq!(FenceKind::LL.to_string(), "FenceLL");
        assert_eq!(FenceKind::LS.to_string(), "FenceLS");
        assert_eq!(FenceKind::SL.to_string(), "FenceSL");
        assert_eq!(FenceKind::SS.to_string(), "FenceSS");
    }

    #[test]
    fn fence_ordering_predicates() {
        assert!(FenceKind::LS.orders_older(MemAccessType::Load));
        assert!(!FenceKind::LS.orders_older(MemAccessType::Store));
        assert!(FenceKind::LS.orders_younger(MemAccessType::Store));
        assert!(!FenceKind::LS.orders_younger(MemAccessType::Load));
    }

    #[test]
    fn derived_fences_match_paper() {
        assert_eq!(FenceKind::acquire(), vec![FenceKind::LL, FenceKind::LS]);
        assert_eq!(FenceKind::release(), vec![FenceKind::LS, FenceKind::SS]);
        assert_eq!(
            FenceKind::full(),
            vec![FenceKind::LL, FenceKind::LS, FenceKind::SL, FenceKind::SS]
        );
    }

    #[test]
    fn all_contains_four_distinct_fences() {
        let all = FenceKind::ALL;
        assert_eq!(all.len(), 4);
        for (i, x) in all.iter().enumerate() {
            for y in all.iter().skip(i + 1) {
                assert_ne!(x, y);
            }
        }
    }
}
