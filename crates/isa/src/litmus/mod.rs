//! Litmus tests: small multiprocessor programs paired with a condition on the
//! final state.
//!
//! A litmus test wraps a [`Program`] with
//!
//! * an initial memory state (locations not mentioned start at zero),
//! * the set of *observed* registers and memory locations, and
//! * one *condition of interest* — the final-state [`Outcome`] whose
//!   allowed/forbidden status distinguishes memory models (usually a non-SC
//!   behaviour, e.g. `r1 = 0, r2 = 0` for Dekker).
//!
//! The [`library`] submodule contains every litmus test that appears in the
//! paper (Figures 2, 5, 13 and 14) plus a set of classical tests (MP, LB, SB,
//! IRIW, WRC, CoRW, 2+2W, …) used by the verification and benchmark crates.

pub mod library;

use std::collections::BTreeMap;
use std::fmt;

use crate::program::{ProcId, Program};
use crate::reg::Reg;
use crate::value::{Loc, Value};

/// A single observed quantity in a litmus-test outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Observation {
    /// The final value of a register on a processor.
    Register(ProcId, Reg),
    /// The final value of a memory location.
    Memory(Loc),
}

impl fmt::Display for Observation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Observation::Register(p, r) => write!(f, "{p}:{r}"),
            Observation::Memory(loc) => write!(f, "m[{loc}]"),
        }
    }
}

/// A complete assignment of values to the observed quantities of a litmus test.
///
/// Outcomes are ordered and hashable so they can be collected into sets and
/// compared across the axiomatic and operational checkers.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Outcome {
    values: BTreeMap<Observation, Value>,
}

impl Outcome {
    /// Creates an empty outcome.
    #[must_use]
    pub fn new() -> Self {
        Outcome::default()
    }

    /// Builder-style insertion of a register observation.
    #[must_use]
    pub fn with_reg(mut self, proc: ProcId, reg: Reg, value: impl Into<Value>) -> Self {
        self.values.insert(Observation::Register(proc, reg), value.into());
        self
    }

    /// Builder-style insertion of a memory observation.
    #[must_use]
    pub fn with_mem(mut self, loc: Loc, value: impl Into<Value>) -> Self {
        self.values.insert(Observation::Memory(loc), value.into());
        self
    }

    /// Sets the value of an observation.
    pub fn set(&mut self, observation: Observation, value: Value) {
        self.values.insert(observation, value);
    }

    /// Returns the value recorded for an observation, if any.
    #[must_use]
    pub fn get(&self, observation: &Observation) -> Option<Value> {
        self.values.get(observation).copied()
    }

    /// Iterates over the `(observation, value)` pairs in a deterministic order.
    pub fn iter(&self) -> impl Iterator<Item = (&Observation, &Value)> {
        self.values.iter()
    }

    /// Number of observed quantities.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns true if nothing is observed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Returns true if `self` records the same value as `other` for every
    /// observation present in `self` (i.e. `other` *matches* the partial
    /// condition `self`).
    #[must_use]
    pub fn matched_by(&self, other: &Outcome) -> bool {
        self.values.iter().all(|(obs, v)| other.get(obs) == Some(*v))
    }
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (obs, value) in &self.values {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{obs}={value}")?;
            first = false;
        }
        Ok(())
    }
}

impl FromIterator<(Observation, Value)> for Outcome {
    fn from_iter<T: IntoIterator<Item = (Observation, Value)>>(iter: T) -> Self {
        Outcome { values: iter.into_iter().collect() }
    }
}

/// A litmus test: a program, its initial state, the observed quantities and
/// the condition of interest.
///
/// Equality is structural over every component (name, description, program,
/// initial memory, observed quantities in order, condition), which is what
/// the text frontend's round-trip guarantee `parse(print(t)) == t` relies on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LitmusTest {
    name: String,
    description: String,
    program: Program,
    initial_memory: BTreeMap<u64, Value>,
    observed: Vec<Observation>,
    condition: Outcome,
}

impl LitmusTest {
    /// Starts building a litmus test around a program.
    #[must_use]
    pub fn builder(name: impl Into<String>, program: Program) -> LitmusTestBuilder {
        LitmusTestBuilder {
            name: name.into(),
            description: String::new(),
            program,
            initial_memory: BTreeMap::new(),
            observed: Vec::new(),
            condition: Outcome::new(),
        }
    }

    /// The test name (e.g. `"dekker"`, `"mp+addr"`).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// A human-readable description, typically citing the paper figure.
    #[must_use]
    pub fn description(&self) -> &str {
        &self.description
    }

    /// The underlying multiprocessor program.
    #[must_use]
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Initial memory contents; addresses not present are zero.
    #[must_use]
    pub fn initial_memory(&self) -> &BTreeMap<u64, Value> {
        &self.initial_memory
    }

    /// Initial value of the given address (zero unless set explicitly).
    #[must_use]
    pub fn initial_value(&self, addr: u64) -> Value {
        self.initial_memory.get(&addr).copied().unwrap_or(Value::ZERO)
    }

    /// The observed registers and memory locations.
    #[must_use]
    pub fn observed(&self) -> &[Observation] {
        &self.observed
    }

    /// The condition of interest (a partial outcome).
    #[must_use]
    pub fn condition(&self) -> &Outcome {
        &self.condition
    }

    /// Restricts a full outcome to the observations of this test.
    #[must_use]
    pub fn project(&self, full: &Outcome) -> Outcome {
        self.observed.iter().filter_map(|obs| full.get(obs).map(|v| (*obs, v))).collect()
    }
}

impl fmt::Display for LitmusTest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "litmus test `{}`", self.name)?;
        if !self.description.is_empty() {
            writeln!(f, "  {}", self.description)?;
        }
        write!(f, "{}", self.program)?;
        writeln!(f, "condition: {}", self.condition)
    }
}

/// Builder for [`LitmusTest`].
#[derive(Debug)]
pub struct LitmusTestBuilder {
    name: String,
    description: String,
    program: Program,
    initial_memory: BTreeMap<u64, Value>,
    observed: Vec<Observation>,
    condition: Outcome,
}

impl LitmusTestBuilder {
    /// Sets the description.
    #[must_use]
    pub fn description(mut self, description: impl Into<String>) -> Self {
        self.description = description.into();
        self
    }

    /// Sets the initial value of a memory location.
    #[must_use]
    pub fn init(mut self, loc: Loc, value: impl Into<Value>) -> Self {
        self.initial_memory.insert(loc.address(), value.into());
        self
    }

    /// Adds an observation to the observed set (no-op if already observed).
    ///
    /// This is the parser-facing form of [`LitmusTestBuilder::observe_reg`] /
    /// [`LitmusTestBuilder::observe_mem`]: the text frontend's `locations`
    /// clause and condition terms both funnel through it, and observing the
    /// same quantity twice must not duplicate it.
    #[must_use]
    pub fn observe(mut self, observation: Observation) -> Self {
        if !self.observed.contains(&observation) {
            self.observed.push(observation);
        }
        self
    }

    /// Adds a register to the observed set.
    #[must_use]
    pub fn observe_reg(mut self, proc: ProcId, reg: Reg) -> Self {
        self.observed.push(Observation::Register(proc, reg));
        self
    }

    /// Adds a memory location to the observed set.
    #[must_use]
    pub fn observe_mem(mut self, loc: Loc) -> Self {
        self.observed.push(Observation::Memory(loc));
        self
    }

    /// Adds a register equality to the condition of interest (and observes the register).
    #[must_use]
    pub fn expect_reg(mut self, proc: ProcId, reg: Reg, value: impl Into<Value>) -> Self {
        let obs = Observation::Register(proc, reg);
        if !self.observed.contains(&obs) {
            self.observed.push(obs);
        }
        self.condition.set(obs, value.into());
        self
    }

    /// Adds a memory equality to the condition of interest (and observes the location).
    #[must_use]
    pub fn expect_mem(mut self, loc: Loc, value: impl Into<Value>) -> Self {
        let obs = Observation::Memory(loc);
        if !self.observed.contains(&obs) {
            self.observed.push(obs);
        }
        self.condition.set(obs, value.into());
        self
    }

    /// Adds an equality on an arbitrary observation to the condition of
    /// interest (and observes the quantity). Generic form of
    /// [`LitmusTestBuilder::expect_reg`] / [`LitmusTestBuilder::expect_mem`],
    /// used by the text frontend's condition parser.
    #[must_use]
    pub fn expect(mut self, observation: Observation, value: impl Into<Value>) -> Self {
        if !self.observed.contains(&observation) {
            self.observed.push(observation);
        }
        self.condition.set(observation, value.into());
        self
    }

    /// Finishes the litmus test.
    #[must_use]
    pub fn build(self) -> LitmusTest {
        LitmusTest {
            name: self.name,
            description: self.description,
            program: self.program,
            initial_memory: self.initial_memory,
            observed: self.observed,
            condition: self.condition,
        }
    }

    /// Finishes the litmus test after validating the observations against
    /// the program — the checked entry point used by the text frontend,
    /// where tests come from untrusted input rather than hand-written code.
    ///
    /// # Errors
    ///
    /// Returns [`crate::IsaError::UnwrittenObservedRegister`] when an
    /// observed register belongs to a processor the program does not have,
    /// or is never in the write set of any instruction of that processor's
    /// thread (such an observation can only ever read zero, which is almost
    /// certainly a typo in the source text).
    pub fn try_build(self) -> Result<LitmusTest, crate::IsaError> {
        for observation in &self.observed {
            let Observation::Register(proc, reg) = observation else { continue };
            let written = self.program.thread(*proc).is_some_and(|thread| {
                thread.instructions().iter().any(|instr| instr.write_set().contains(reg))
            });
            if !written {
                return Err(crate::IsaError::UnwrittenObservedRegister {
                    proc: proc.index(),
                    reg: reg.index(),
                });
            }
        }
        Ok(self.build())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{Addr, Operand};
    use crate::program::ThreadProgram;

    fn tiny_program() -> Program {
        let a = Loc::new("a");
        let mut p1 = ThreadProgram::builder(ProcId::new(0));
        p1.store(Addr::loc(a), Operand::imm(1));
        let mut p2 = ThreadProgram::builder(ProcId::new(1));
        p2.load(Reg::new(1), Addr::loc(a));
        Program::new(vec![p1.build(), p2.build()])
    }

    #[test]
    fn outcome_builder_and_match() {
        let p2 = ProcId::new(1);
        let full = Outcome::new().with_reg(p2, Reg::new(1), 1u64).with_reg(p2, Reg::new(2), 0u64);
        let partial = Outcome::new().with_reg(p2, Reg::new(1), 1u64);
        assert!(partial.matched_by(&full));
        assert!(!full.matched_by(&partial));
        assert_eq!(full.len(), 2);
        assert!(!full.is_empty());
    }

    #[test]
    fn outcome_display_is_deterministic() {
        let p = ProcId::new(0);
        let o = Outcome::new().with_reg(p, Reg::new(2), 5u64).with_reg(p, Reg::new(1), 3u64);
        assert_eq!(o.to_string(), "P1:r1=3, P1:r2=5");
    }

    #[test]
    fn outcome_memory_observation() {
        let a = Loc::new("a");
        let o = Outcome::new().with_mem(a, 7u64);
        assert_eq!(o.get(&Observation::Memory(a)), Some(Value::new(7)));
    }

    #[test]
    fn litmus_builder_collects_everything() {
        let a = Loc::new("a");
        let test = LitmusTest::builder("demo", tiny_program())
            .description("a tiny demo test")
            .init(a, 9u64)
            .expect_reg(ProcId::new(1), Reg::new(1), 0u64)
            .observe_mem(a)
            .build();
        assert_eq!(test.name(), "demo");
        assert_eq!(test.initial_value(a.address()), Value::new(9));
        assert_eq!(test.initial_value(0xdead), Value::ZERO);
        assert_eq!(test.observed().len(), 2);
        assert_eq!(test.condition().len(), 1);
        assert!(test.to_string().contains("demo"));
    }

    #[test]
    fn expect_reg_observes_once() {
        let test = LitmusTest::builder("demo", tiny_program())
            .expect_reg(ProcId::new(1), Reg::new(1), 0u64)
            .expect_reg(ProcId::new(1), Reg::new(1), 1u64)
            .build();
        assert_eq!(test.observed().len(), 1);
        // last expectation wins
        assert_eq!(
            test.condition().get(&Observation::Register(ProcId::new(1), Reg::new(1))),
            Some(Value::new(1))
        );
    }

    #[test]
    fn observe_and_expect_generic_forms_deduplicate() {
        let p2 = ProcId::new(1);
        let obs = Observation::Register(p2, Reg::new(1));
        let test = LitmusTest::builder("demo", tiny_program())
            .observe(obs)
            .observe(obs)
            .expect(obs, 0u64)
            .build();
        assert_eq!(test.observed(), &[obs]);
        assert_eq!(test.condition().get(&obs), Some(Value::ZERO));
    }

    #[test]
    fn try_build_accepts_written_registers_and_memory() {
        let test = LitmusTest::builder("demo", tiny_program())
            .expect_reg(ProcId::new(1), Reg::new(1), 0u64)
            .observe_mem(Loc::new("a"))
            .try_build()
            .expect("valid observations");
        assert_eq!(test.observed().len(), 2);
    }

    #[test]
    fn try_build_rejects_unwritten_or_out_of_range_registers() {
        // r9 is never written by thread P2.
        let err = LitmusTest::builder("demo", tiny_program())
            .expect_reg(ProcId::new(1), Reg::new(9), 0u64)
            .try_build()
            .unwrap_err();
        assert_eq!(err, crate::IsaError::UnwrittenObservedRegister { proc: 1, reg: 9 });
        // Processor P5 does not exist.
        let err = LitmusTest::builder("demo", tiny_program())
            .expect_reg(ProcId::new(4), Reg::new(1), 0u64)
            .try_build()
            .unwrap_err();
        assert_eq!(err, crate::IsaError::UnwrittenObservedRegister { proc: 4, reg: 1 });
    }

    #[test]
    fn structural_equality_distinguishes_components() {
        let base = || {
            LitmusTest::builder("demo", tiny_program()).expect_reg(
                ProcId::new(1),
                Reg::new(1),
                0u64,
            )
        };
        assert_eq!(base().build(), base().build());
        assert_ne!(base().build(), base().description("different").build());
        assert_ne!(base().build(), base().init(Loc::new("a"), 1u64).build());
        assert_ne!(base().build(), base().observe_mem(Loc::new("a")).build());
    }

    #[test]
    fn project_restricts_to_observed() {
        let p2 = ProcId::new(1);
        let test =
            LitmusTest::builder("demo", tiny_program()).expect_reg(p2, Reg::new(1), 0u64).build();
        let full = Outcome::new().with_reg(p2, Reg::new(1), 1u64).with_reg(p2, Reg::new(9), 42u64);
        let projected = test.project(&full);
        assert_eq!(projected.len(), 1);
        assert_eq!(projected.get(&Observation::Register(p2, Reg::new(1))), Some(Value::new(1)));
    }
}
