//! The litmus-test library: every test from the paper plus classical tests.
//!
//! Each function builds one litmus test. The *condition* attached to a test is
//! the behaviour the paper (or the classical literature) discusses — usually a
//! non-SC behaviour whose allowed/forbidden status distinguishes memory
//! models. The expected verdict of each model for each test lives in the
//! `gam-verify` crate so that this crate stays a pure program database.

use crate::instr::{Addr, Operand};
use crate::op::FenceKind;
use crate::program::{ProcId, Program, ThreadProgram};
use crate::reg::Reg;
use crate::value::Loc;

use super::LitmusTest;

fn p(i: usize) -> ProcId {
    ProcId::new(i)
}

fn r(i: u32) -> Reg {
    Reg::new(i)
}

/// Dekker / store-buffering (Figure 2 of the paper).
///
/// `P1: St [a] 1; r1 = Ld [b]` and `P2: St [b] 1; r2 = Ld [a]`.
/// The condition `r1 = 0 ∧ r2 = 0` is forbidden by SC but allowed by TSO and
/// every weaker model (store→load reordering).
#[must_use]
pub fn dekker() -> LitmusTest {
    let a = Loc::new("a");
    let b = Loc::new("b");
    let mut p1 = ThreadProgram::builder(p(0));
    p1.store(Addr::loc(a), Operand::imm(1)).load(r(1), Addr::loc(b));
    let mut p2 = ThreadProgram::builder(p(1));
    p2.store(Addr::loc(b), Operand::imm(1)).load(r(2), Addr::loc(a));
    LitmusTest::builder("dekker", Program::new(vec![p1.build(), p2.build()]))
        .description("Figure 2: store buffering; SC forbids r1=0,r2=0")
        .expect_reg(p(0), r(1), 0u64)
        .expect_reg(p(1), r(2), 0u64)
        .build()
}

/// Dekker with a `FenceSL` between the store and the load on both processors.
///
/// The fence restores the store→load ordering, so every model in the catalogue
/// forbids `r1 = 0 ∧ r2 = 0`.
#[must_use]
pub fn dekker_fence_sl() -> LitmusTest {
    let a = Loc::new("a");
    let b = Loc::new("b");
    let mut p1 = ThreadProgram::builder(p(0));
    p1.store(Addr::loc(a), Operand::imm(1)).fence(FenceKind::SL).load(r(1), Addr::loc(b));
    let mut p2 = ThreadProgram::builder(p(1));
    p2.store(Addr::loc(b), Operand::imm(1)).fence(FenceKind::SL).load(r(2), Addr::loc(a));
    LitmusTest::builder("dekker+fence-sl", Program::new(vec![p1.build(), p2.build()]))
        .description("Dekker with FenceSL on both sides; all models forbid r1=0,r2=0")
        .expect_reg(p(0), r(1), 0u64)
        .expect_reg(p(1), r(2), 0u64)
        .build()
}

/// Out-of-thin-air (Figure 5 of the paper).
///
/// `P1: r1 = Ld [a]; St [b] r1` and `P2: r2 = Ld [b]; St [a] r2`.
/// No model may allow `r1 = r2 = 42`: the value 42 would appear from nowhere.
#[must_use]
pub fn oota() -> LitmusTest {
    let a = Loc::new("a");
    let b = Loc::new("b");
    let mut p1 = ThreadProgram::builder(p(0));
    p1.load(r(1), Addr::loc(a)).store(Addr::loc(b), Operand::reg(r(1)));
    let mut p2 = ThreadProgram::builder(p(1));
    p2.load(r(2), Addr::loc(b)).store(Addr::loc(a), Operand::reg(r(2)));
    LitmusTest::builder("oota", Program::new(vec![p1.build(), p2.build()]))
        .description("Figure 5: out-of-thin-air; all models forbid r1=r2=42")
        .expect_reg(p(0), r(1), 42u64)
        .expect_reg(p(1), r(2), 42u64)
        .build()
}

/// Store forwarding within one processor (Figure 8 of the paper).
///
/// `I1: St [a] 1; S: St [a] r1; I2: r2 = Ld [a]` with `r1 = 0` initially.
/// The load must observe the youngest program-order-older store `S`, so
/// `r2 = 1` (skipping over `S` to read `I1`) is forbidden by every model.
#[must_use]
pub fn store_forwarding() -> LitmusTest {
    let a = Loc::new("a");
    let mut p1 = ThreadProgram::builder(p(0));
    p1.store(Addr::loc(a), Operand::imm(1))
        .store(Addr::loc(a), Operand::reg(r(1)))
        .load(r(2), Addr::loc(a));
    LitmusTest::builder("store-forwarding", Program::new(vec![p1.build()]))
        .description("Figure 8: a load may not skip over the youngest older same-address store")
        .expect_reg(p(0), r(2), 1u64)
        .build()
}

/// Message passing without any fence or dependency.
///
/// The classical MP shape; the stale-read outcome `r1 = 1 ∧ r2 = 0` is allowed
/// by every model that relaxes either store→store or load→load ordering.
#[must_use]
pub fn mp() -> LitmusTest {
    let a = Loc::new("a");
    let b = Loc::new("b");
    let mut p1 = ThreadProgram::builder(p(0));
    p1.store(Addr::loc(a), Operand::imm(1)).store(Addr::loc(b), Operand::imm(1));
    let mut p2 = ThreadProgram::builder(p(1));
    p2.load(r(1), Addr::loc(b)).load(r(2), Addr::loc(a));
    LitmusTest::builder("mp", Program::new(vec![p1.build(), p2.build()]))
        .description("classical message passing with no fences; weak models allow r1=1,r2=0")
        .expect_reg(p(1), r(1), 1u64)
        .expect_reg(p(1), r(2), 0u64)
        .build()
}

/// Message passing with `FenceSS` on the producer and `FenceLL` on the consumer.
///
/// Fully fenced MP: the stale-read outcome is forbidden by every model.
#[must_use]
pub fn mp_fences() -> LitmusTest {
    let a = Loc::new("a");
    let b = Loc::new("b");
    let mut p1 = ThreadProgram::builder(p(0));
    p1.store(Addr::loc(a), Operand::imm(1))
        .fence(FenceKind::SS)
        .store(Addr::loc(b), Operand::imm(1));
    let mut p2 = ThreadProgram::builder(p(1));
    p2.load(r(1), Addr::loc(b)).fence(FenceKind::LL).load(r(2), Addr::loc(a));
    LitmusTest::builder("mp+fences", Program::new(vec![p1.build(), p2.build()]))
        .description("message passing with FenceSS / FenceLL; all models forbid r1=1,r2=0")
        .expect_reg(p(1), r(1), 1u64)
        .expect_reg(p(1), r(2), 0u64)
        .build()
}

/// Message passing with only the producer-side `FenceSS`.
///
/// Without a consumer-side ordering the two loads may still be reordered, so
/// models that relax load→load ordering allow the stale read.
#[must_use]
pub fn mp_fence_ss_only() -> LitmusTest {
    let a = Loc::new("a");
    let b = Loc::new("b");
    let mut p1 = ThreadProgram::builder(p(0));
    p1.store(Addr::loc(a), Operand::imm(1))
        .fence(FenceKind::SS)
        .store(Addr::loc(b), Operand::imm(1));
    let mut p2 = ThreadProgram::builder(p(1));
    p2.load(r(1), Addr::loc(b)).load(r(2), Addr::loc(a));
    LitmusTest::builder("mp+fence-ss", Program::new(vec![p1.build(), p2.build()]))
        .description(
            "message passing with only the producer fence; load-load reordering exposes r1=1,r2=0",
        )
        .expect_reg(p(1), r(1), 1u64)
        .expect_reg(p(1), r(2), 0u64)
        .build()
}

/// MP+addr (Figure 13a of the paper): address dependency on the consumer.
///
/// `P2: r1 = Ld [b]; r2 = Ld [r1]`. Because GAM0/GAM preserve syntactic data
/// dependencies (constraint RegRAW), `r1 = a ∧ r2 = 0` is forbidden.
#[must_use]
pub fn mp_addr() -> LitmusTest {
    let a = Loc::new("a");
    let b = Loc::new("b");
    let mut p1 = ThreadProgram::builder(p(0));
    p1.store(Addr::loc(a), Operand::imm(1))
        .fence(FenceKind::SS)
        .store(Addr::loc(b), Operand::loc(a));
    let mut p2 = ThreadProgram::builder(p(1));
    p2.load(r(1), Addr::loc(b)).load(r(2), Addr::reg(r(1)));
    LitmusTest::builder("mp+addr", Program::new(vec![p1.build(), p2.build()]))
        .description("Figure 13a: address dependency; GAM0/GAM forbid r1=a,r2=0")
        .expect_reg(p(1), r(1), a.value())
        .expect_reg(p(1), r(2), 0u64)
        .build()
}

/// MP+artificial-addr (Figure 13b of the paper).
///
/// The consumer builds an artificial syntactic dependency
/// `r2 = a + r1 - r1` before the second load; the dependency must be honoured,
/// so `r1 = 1 ∧ r2 = a ∧ r3 = 0` is forbidden by GAM0/GAM.
#[must_use]
pub fn mp_artificial_addr() -> LitmusTest {
    let a = Loc::new("a");
    let b = Loc::new("b");
    let mut p1 = ThreadProgram::builder(p(0));
    p1.store(Addr::loc(a), Operand::imm(1))
        .fence(FenceKind::SS)
        .store(Addr::loc(b), Operand::imm(1));
    let mut p2 = ThreadProgram::builder(p(1));
    p2.load(r(1), Addr::loc(b)).artificial_addr_dep(r(2), a, r(1)).load(r(3), Addr::reg(r(2)));
    LitmusTest::builder("mp+artificial-addr", Program::new(vec![p1.build(), p2.build()]))
        .description("Figure 13b: artificial address dependency; GAM0/GAM forbid r1=1,r2=a,r3=0")
        .expect_reg(p(1), r(1), 1u64)
        .expect_reg(p(1), r(2), a.value())
        .expect_reg(p(1), r(3), 0u64)
        .build()
}

/// Dependency through a memory location (Figure 13c of the paper).
///
/// The consumer stores the value it read to `c`, loads it back, and uses it in
/// an artificial address dependency. Constraint SAStLd keeps the chain
/// ordered, so `r1 = r2 = 1 ∧ r3 = a ∧ r4 = 0` is forbidden by GAM0/GAM.
#[must_use]
pub fn mp_mem_dep() -> LitmusTest {
    let a = Loc::new("a");
    let b = Loc::new("b");
    let c = Loc::new("c");
    let mut p1 = ThreadProgram::builder(p(0));
    p1.store(Addr::loc(a), Operand::imm(1))
        .fence(FenceKind::SS)
        .store(Addr::loc(b), Operand::imm(1));
    let mut p2 = ThreadProgram::builder(p(1));
    p2.load(r(1), Addr::loc(b))
        .store(Addr::loc(c), Operand::reg(r(1)))
        .load(r(2), Addr::loc(c))
        .artificial_addr_dep(r(3), a, r(2))
        .load(r(4), Addr::reg(r(3)));
    LitmusTest::builder("mp+mem-dep", Program::new(vec![p1.build(), p2.build()]))
        .description("Figure 13c: dependency via memory; GAM0/GAM forbid r1=r2=1,r3=a,r4=0")
        .expect_reg(p(1), r(1), 1u64)
        .expect_reg(p(1), r(2), 1u64)
        .expect_reg(p(1), r(3), a.value())
        .expect_reg(p(1), r(4), 0u64)
        .build()
}

/// MP+prefetch (Figure 13d of the paper).
///
/// The consumer first loads `a` (possibly reading 0), then loads `b`, then
/// loads through the value of `b`. Without load-load forwarding the dependent
/// load must go to memory, so `r1 = 0 ∧ r2 = a ∧ r3 = 0` is forbidden by
/// GAM0/GAM; a machine with load-load forwarding (Alpha*) would exhibit it.
#[must_use]
pub fn mp_prefetch() -> LitmusTest {
    let a = Loc::new("a");
    let b = Loc::new("b");
    let mut p1 = ThreadProgram::builder(p(0));
    p1.store(Addr::loc(a), Operand::imm(1))
        .fence(FenceKind::SS)
        .store(Addr::loc(b), Operand::loc(a));
    let mut p2 = ThreadProgram::builder(p(1));
    p2.load(r(1), Addr::loc(a)).load(r(2), Addr::loc(b)).load(r(3), Addr::reg(r(2)));
    LitmusTest::builder("mp+prefetch", Program::new(vec![p1.build(), p2.build()]))
        .description("Figure 13d: prefetch; GAM0/GAM forbid r1=0,r2=a,r3=0")
        .expect_reg(p(1), r(1), 0u64)
        .expect_reg(p(1), r(2), a.value())
        .expect_reg(p(1), r(3), 0u64)
        .build()
}

/// CoRR — coherent read-read (Figure 14a of the paper).
///
/// Two consecutive loads of the same address must not appear to go backwards
/// in time. Models with per-location SC (SC, TSO, GAM, ARM) forbid
/// `r1 = 1 ∧ r2 = 0`; GAM0 and RMO allow it.
#[must_use]
pub fn corr() -> LitmusTest {
    let a = Loc::new("a");
    let mut p1 = ThreadProgram::builder(p(0));
    p1.store(Addr::loc(a), Operand::imm(1));
    let mut p2 = ThreadProgram::builder(p(1));
    p2.load(r(1), Addr::loc(a)).load(r(2), Addr::loc(a));
    LitmusTest::builder("corr", Program::new(vec![p1.build(), p2.build()]))
        .description("Figure 14a: coherent read-read; GAM forbids r1=1,r2=0, GAM0/RMO allow it")
        .expect_reg(p(1), r(1), 1u64)
        .expect_reg(p(1), r(2), 0u64)
        .build()
}

/// Same-address loads with an intervening store (Figure 14b of the paper).
///
/// The intervening store `St [b] 2` lets the younger load forward from it and
/// execute early, so `r1 = 1 ∧ r2 = 2 ∧ r3 = 0` is allowed by per-location SC
/// and by GAM.
#[must_use]
pub fn corr_intervening_store() -> LitmusTest {
    let a = Loc::new("a");
    let b = Loc::new("b");
    let mut p1 = ThreadProgram::builder(p(0));
    p1.store(Addr::loc(a), Operand::imm(1))
        .fence(FenceKind::SS)
        .store(Addr::loc(b), Operand::imm(1));
    let mut p2 = ThreadProgram::builder(p(1));
    p2.load(r(1), Addr::loc(b))
        .store(Addr::loc(b), Operand::imm(2))
        .load(r(2), Addr::loc(b))
        .artificial_addr_dep(r(4), a, r(2))
        .load(r(3), Addr::reg(r(4)));
    LitmusTest::builder("corr+intervening-store", Program::new(vec![p1.build(), p2.build()]))
        .description(
            "Figure 14b: same-address loads separated by a store; GAM allows r1=1,r2=2,r3=0",
        )
        .expect_reg(p(1), r(1), 1u64)
        .expect_reg(p(1), r(2), 2u64)
        .expect_reg(p(1), r(3), 0u64)
        .build()
}

/// RSW — read-same-write (Figure 14c of the paper).
///
/// Both middle loads of `c` read the initial value. Under the ARM rule
/// (`SALdLdARM`) they are unordered because they read from the same store, so
/// the non-SC outcome is allowed; GAM's `SALdLd` orders them and forbids it.
#[must_use]
pub fn rsw() -> LitmusTest {
    let a = Loc::new("a");
    let b = Loc::new("b");
    let c = Loc::new("c");
    let mut p1 = ThreadProgram::builder(p(0));
    p1.store(Addr::loc(a), Operand::imm(1))
        .fence(FenceKind::SS)
        .store(Addr::loc(b), Operand::imm(1));
    let mut p2 = ThreadProgram::builder(p(1));
    p2.load(r(1), Addr::loc(b))
        .artificial_addr_dep(r(2), c, r(1))
        .load(r(3), Addr::reg(r(2)))
        .load(r(4), Addr::loc(c))
        .artificial_addr_dep(r(5), a, r(4))
        .load(r(6), Addr::reg(r(5)));
    LitmusTest::builder("rsw", Program::new(vec![p1.build(), p2.build()]))
        .description("Figure 14c: read-same-write; ARM allows, GAM forbids the stale final read")
        .expect_reg(p(1), r(1), 1u64)
        .expect_reg(p(1), r(2), c.value())
        .expect_reg(p(1), r(3), 0u64)
        .expect_reg(p(1), r(4), 0u64)
        .expect_reg(p(1), r(5), a.value())
        .expect_reg(p(1), r(6), 0u64)
        .build()
}

/// RNSW — read-not-same-write (Figure 14d of the paper).
///
/// Identical to RSW except the producer also rewrites the initial value 0 to
/// `c`. If the two middle loads were reordered they would now read from
/// *different* stores, so even the ARM rule forbids the outcome; GAM forbids
/// it as well, which is the paper's argument for the simpler `SALdLd` rule.
#[must_use]
pub fn rnsw() -> LitmusTest {
    let a = Loc::new("a");
    let b = Loc::new("b");
    let c = Loc::new("c");
    let mut p1 = ThreadProgram::builder(p(0));
    p1.store(Addr::loc(a), Operand::imm(1))
        .fence(FenceKind::SS)
        .store(Addr::loc(c), Operand::imm(0))
        .fence(FenceKind::SS)
        .store(Addr::loc(b), Operand::imm(1));
    let mut p2 = ThreadProgram::builder(p(1));
    p2.load(r(1), Addr::loc(b))
        .artificial_addr_dep(r(2), c, r(1))
        .load(r(3), Addr::reg(r(2)))
        .load(r(4), Addr::loc(c))
        .artificial_addr_dep(r(5), a, r(4))
        .load(r(6), Addr::reg(r(5)));
    LitmusTest::builder("rnsw", Program::new(vec![p1.build(), p2.build()]))
        .description(
            "Figure 14d: read-not-same-write; both ARM and GAM forbid the stale final read",
        )
        .expect_reg(p(1), r(1), 1u64)
        .expect_reg(p(1), r(2), c.value())
        .expect_reg(p(1), r(3), 0u64)
        .expect_reg(p(1), r(4), 0u64)
        .expect_reg(p(1), r(5), a.value())
        .expect_reg(p(1), r(6), 0u64)
        .build()
}

/// Load buffering: `P1: r1 = Ld [a]; St [b] 1` and `P2: r2 = Ld [b]; St [a] 1`.
///
/// With no dependency between the load and the store, GAM allows
/// `r1 = 1 ∧ r2 = 1` (load→store reordering); SC and TSO forbid it.
#[must_use]
pub fn lb() -> LitmusTest {
    let a = Loc::new("a");
    let b = Loc::new("b");
    let mut p1 = ThreadProgram::builder(p(0));
    p1.load(r(1), Addr::loc(a)).store(Addr::loc(b), Operand::imm(1));
    let mut p2 = ThreadProgram::builder(p(1));
    p2.load(r(2), Addr::loc(b)).store(Addr::loc(a), Operand::imm(1));
    LitmusTest::builder("lb", Program::new(vec![p1.build(), p2.build()]))
        .description("load buffering without dependencies; GAM allows r1=r2=1")
        .expect_reg(p(0), r(1), 1u64)
        .expect_reg(p(1), r(2), 1u64)
        .build()
}

/// Load buffering with data dependencies (`St [b] r1` / `St [a] r2`).
///
/// The data dependencies make the outcome `r1 = r2 = 1` an out-of-thin-air
/// behaviour, forbidden by every model.
#[must_use]
pub fn lb_data() -> LitmusTest {
    let a = Loc::new("a");
    let b = Loc::new("b");
    let mut p1 = ThreadProgram::builder(p(0));
    p1.load(r(1), Addr::loc(a)).store(Addr::loc(b), Operand::reg(r(1)));
    let mut p2 = ThreadProgram::builder(p(1));
    p2.load(r(2), Addr::loc(b)).store(Addr::loc(a), Operand::reg(r(2)));
    LitmusTest::builder("lb+data", Program::new(vec![p1.build(), p2.build()]))
        .description("load buffering with data dependencies; all models forbid r1=r2=1")
        .expect_reg(p(0), r(1), 1u64)
        .expect_reg(p(1), r(2), 1u64)
        .build()
}

/// Load buffering with a `FenceLS` between the load and the store on both sides.
///
/// The fences restore load→store ordering, so every model forbids
/// `r1 = r2 = 1`.
#[must_use]
pub fn lb_fence_ls() -> LitmusTest {
    let a = Loc::new("a");
    let b = Loc::new("b");
    let mut p1 = ThreadProgram::builder(p(0));
    p1.load(r(1), Addr::loc(a)).fence(FenceKind::LS).store(Addr::loc(b), Operand::imm(1));
    let mut p2 = ThreadProgram::builder(p(1));
    p2.load(r(2), Addr::loc(b)).fence(FenceKind::LS).store(Addr::loc(a), Operand::imm(1));
    LitmusTest::builder("lb+fence-ls", Program::new(vec![p1.build(), p2.build()]))
        .description("load buffering with FenceLS; all models forbid r1=r2=1")
        .expect_reg(p(0), r(1), 1u64)
        .expect_reg(p(1), r(2), 1u64)
        .build()
}

/// IRIW — independent reads of independent writes, no fences.
///
/// Models that relax load→load ordering (GAM, GAM0, ARM) allow the two reader
/// processors to disagree on the order of the writes; SC and TSO forbid it.
#[must_use]
pub fn iriw() -> LitmusTest {
    let a = Loc::new("a");
    let b = Loc::new("b");
    let mut p1 = ThreadProgram::builder(p(0));
    p1.store(Addr::loc(a), Operand::imm(1));
    let mut p2 = ThreadProgram::builder(p(1));
    p2.store(Addr::loc(b), Operand::imm(1));
    let mut p3 = ThreadProgram::builder(p(2));
    p3.load(r(1), Addr::loc(a)).load(r(2), Addr::loc(b));
    let mut p4 = ThreadProgram::builder(p(3));
    p4.load(r(3), Addr::loc(b)).load(r(4), Addr::loc(a));
    LitmusTest::builder("iriw", Program::new(vec![p1.build(), p2.build(), p3.build(), p4.build()]))
        .description(
            "independent reads of independent writes; weak models allow the readers to disagree",
        )
        .expect_reg(p(2), r(1), 1u64)
        .expect_reg(p(2), r(2), 0u64)
        .expect_reg(p(3), r(3), 1u64)
        .expect_reg(p(3), r(4), 0u64)
        .build()
}

/// IRIW with a `FenceLL` between the loads on both reader processors.
///
/// Because GAM is a model of *atomic* memory, the fences are sufficient to
/// forbid the readers from disagreeing — a key difference from non-atomic
/// models such as POWER.
#[must_use]
pub fn iriw_fence_ll() -> LitmusTest {
    let a = Loc::new("a");
    let b = Loc::new("b");
    let mut p1 = ThreadProgram::builder(p(0));
    p1.store(Addr::loc(a), Operand::imm(1));
    let mut p2 = ThreadProgram::builder(p(1));
    p2.store(Addr::loc(b), Operand::imm(1));
    let mut p3 = ThreadProgram::builder(p(2));
    p3.load(r(1), Addr::loc(a)).fence(FenceKind::LL).load(r(2), Addr::loc(b));
    let mut p4 = ThreadProgram::builder(p(3));
    p4.load(r(3), Addr::loc(b)).fence(FenceKind::LL).load(r(4), Addr::loc(a));
    LitmusTest::builder(
        "iriw+fence-ll",
        Program::new(vec![p1.build(), p2.build(), p3.build(), p4.build()]),
    )
    .description("IRIW with FenceLL on the readers; atomic-memory models forbid the disagreement")
    .expect_reg(p(2), r(1), 1u64)
    .expect_reg(p(2), r(2), 0u64)
    .expect_reg(p(3), r(3), 1u64)
    .expect_reg(p(3), r(4), 0u64)
    .build()
}

/// WRC — write-to-read causality with dependencies.
///
/// `P2` forwards the value it read into a store (data dependency) and `P3`
/// uses an address dependency for its final load, so GAM forbids the stale
/// read `r3 = 0`; with no dependencies it would be allowed.
#[must_use]
pub fn wrc() -> LitmusTest {
    let a = Loc::new("a");
    let b = Loc::new("b");
    let mut p1 = ThreadProgram::builder(p(0));
    p1.store(Addr::loc(a), Operand::imm(1));
    let mut p2 = ThreadProgram::builder(p(1));
    p2.load(r(1), Addr::loc(a)).store(Addr::loc(b), Operand::reg(r(1)));
    let mut p3 = ThreadProgram::builder(p(2));
    p3.load(r(2), Addr::loc(b)).artificial_addr_dep(r(4), a, r(2)).load(r(3), Addr::reg(r(4)));
    LitmusTest::builder("wrc", Program::new(vec![p1.build(), p2.build(), p3.build()]))
        .description("write-to-read causality with data+address dependencies; GAM forbids r3=0")
        .expect_reg(p(1), r(1), 1u64)
        .expect_reg(p(2), r(2), 1u64)
        .expect_reg(p(2), r(3), 0u64)
        .build()
}

/// WRC without dependencies on the final reader.
///
/// `P3` performs two independent loads, which weak models may reorder, so the
/// stale read is allowed by GAM/GAM0/ARM.
#[must_use]
pub fn wrc_no_dep() -> LitmusTest {
    let a = Loc::new("a");
    let b = Loc::new("b");
    let mut p1 = ThreadProgram::builder(p(0));
    p1.store(Addr::loc(a), Operand::imm(1));
    let mut p2 = ThreadProgram::builder(p(1));
    p2.load(r(1), Addr::loc(a)).store(Addr::loc(b), Operand::reg(r(1)));
    let mut p3 = ThreadProgram::builder(p(2));
    p3.load(r(2), Addr::loc(b)).load(r(3), Addr::loc(a));
    LitmusTest::builder("wrc+no-dep", Program::new(vec![p1.build(), p2.build(), p3.build()]))
        .description("write-to-read causality without reader dependencies; weak models allow r3=0")
        .expect_reg(p(1), r(1), 1u64)
        .expect_reg(p(2), r(2), 1u64)
        .expect_reg(p(2), r(3), 0u64)
        .build()
}

/// CoRW — a load followed by a same-address store on one processor.
///
/// The load may not read the value of the program-order-younger store
/// (constraint SAMemSt plus the load-value axiom), so `r1 = 1` is forbidden
/// by every model.
#[must_use]
pub fn corw() -> LitmusTest {
    let a = Loc::new("a");
    let mut p1 = ThreadProgram::builder(p(0));
    p1.load(r(1), Addr::loc(a)).store(Addr::loc(a), Operand::imm(1));
    LitmusTest::builder("corw", Program::new(vec![p1.build()]))
        .description(
            "a load may not read its own processor's younger store; all models forbid r1=1",
        )
        .expect_reg(p(0), r(1), 1u64)
        .build()
}

/// CoWR — a store followed by a same-address load, with a racing remote store.
///
/// The local load must observe the local store or something coherence-newer,
/// never the stale initial value, so `r1 = 0` is forbidden by every model.
#[must_use]
pub fn cowr() -> LitmusTest {
    let a = Loc::new("a");
    let mut p1 = ThreadProgram::builder(p(0));
    p1.store(Addr::loc(a), Operand::imm(1)).load(r(1), Addr::loc(a));
    let mut p2 = ThreadProgram::builder(p(1));
    p2.store(Addr::loc(a), Operand::imm(2));
    LitmusTest::builder("cowr", Program::new(vec![p1.build(), p2.build()]))
        .description(
            "a load after a same-address store must not read older values; all models forbid r1=0",
        )
        .expect_reg(p(0), r(1), 0u64)
        .build()
}

/// CoWW — two same-address stores on one processor observed through final memory.
///
/// Constraint SAMemSt keeps the stores in order, so the final memory value
/// cannot be that of the older store (`m[a] = 1` is forbidden) — per-location
/// coherence for writes.
#[must_use]
pub fn coww() -> LitmusTest {
    let a = Loc::new("a");
    let mut p1 = ThreadProgram::builder(p(0));
    p1.store(Addr::loc(a), Operand::imm(1)).store(Addr::loc(a), Operand::imm(2));
    LitmusTest::builder("coww", Program::new(vec![p1.build()]))
        .description("same-address stores stay ordered; all models forbid final m[a]=1")
        .expect_mem(a, 1u64)
        .build()
}

/// 2+2W — two processors each writing both locations in opposite orders.
///
/// The condition observes final memory `a = 2 ∧ b = 2`, which requires both
/// processors' *first* stores to lose the coherence race; models that relax
/// store→store ordering (GAM, GAM0, ARM) allow it, SC and TSO forbid it.
#[must_use]
pub fn two_plus_two_w() -> LitmusTest {
    let a = Loc::new("a");
    let b = Loc::new("b");
    let mut p1 = ThreadProgram::builder(p(0));
    p1.store(Addr::loc(a), Operand::imm(2)).store(Addr::loc(b), Operand::imm(1));
    let mut p2 = ThreadProgram::builder(p(1));
    p2.store(Addr::loc(b), Operand::imm(2)).store(Addr::loc(a), Operand::imm(1));
    LitmusTest::builder("2+2w", Program::new(vec![p1.build(), p2.build()]))
        .description("2+2W; store-store relaxation allows final a=2,b=2")
        .expect_mem(a, 2u64)
        .expect_mem(b, 2u64)
        .build()
}

/// 2+2W with a `FenceSS` between the stores on both processors.
///
/// The fences restore store→store ordering, so every model forbids the
/// `a = 2 ∧ b = 2` final state.
#[must_use]
pub fn two_plus_two_w_fence() -> LitmusTest {
    let a = Loc::new("a");
    let b = Loc::new("b");
    let mut p1 = ThreadProgram::builder(p(0));
    p1.store(Addr::loc(a), Operand::imm(2))
        .fence(FenceKind::SS)
        .store(Addr::loc(b), Operand::imm(1));
    let mut p2 = ThreadProgram::builder(p(1));
    p2.store(Addr::loc(b), Operand::imm(2))
        .fence(FenceKind::SS)
        .store(Addr::loc(a), Operand::imm(1));
    LitmusTest::builder("2+2w+fence-ss", Program::new(vec![p1.build(), p2.build()]))
        .description("2+2W with FenceSS; all models forbid final a=2,b=2")
        .expect_mem(a, 2u64)
        .expect_mem(b, 2u64)
        .build()
}

/// S — store-store ordering observed through a racing write.
///
/// `P1: St [a] 2; FenceSS; St [b] 1` and `P2: r1 = Ld [b]; St [a] 1`.
/// The condition `r1 = 1 ∧ m[a] = 2` needs `P2`'s store to be coherence-older
/// than `P1`'s even though it causally follows it; GAM allows it only via
/// load→store reordering on `P2`, SC/TSO forbid it.
#[must_use]
pub fn s_test() -> LitmusTest {
    let a = Loc::new("a");
    let b = Loc::new("b");
    let mut p1 = ThreadProgram::builder(p(0));
    p1.store(Addr::loc(a), Operand::imm(2))
        .fence(FenceKind::SS)
        .store(Addr::loc(b), Operand::imm(1));
    let mut p2 = ThreadProgram::builder(p(1));
    p2.load(r(1), Addr::loc(b)).store(Addr::loc(a), Operand::imm(1));
    LitmusTest::builder("s", Program::new(vec![p1.build(), p2.build()]))
        .description("S shape; load->store relaxation allows r1=1 with final a=2")
        .expect_reg(p(1), r(1), 1u64)
        .expect_mem(a, 2u64)
        .build()
}

/// R — store-store ordering against a racing store observed by a load.
///
/// `P1: St [a] 1; St [b] 1` and `P2: St [b] 2; r1 = Ld [a]`.
/// The condition `m[b] = 2 ∧ r1 = 0` requires `P2`'s store to win the
/// coherence race on `b` while its later load still misses `P1`'s store to
/// `a`; SC forbids it, any model that relaxes store→load ordering (TSO and
/// weaker) allows it.
#[must_use]
pub fn r_test() -> LitmusTest {
    let a = Loc::new("a");
    let b = Loc::new("b");
    let mut p1 = ThreadProgram::builder(p(0));
    p1.store(Addr::loc(a), Operand::imm(1)).store(Addr::loc(b), Operand::imm(1));
    let mut p2 = ThreadProgram::builder(p(1));
    p2.store(Addr::loc(b), Operand::imm(2)).load(r(1), Addr::loc(a));
    LitmusTest::builder("r", Program::new(vec![p1.build(), p2.build()]))
        .description("R shape; store->load relaxation allows final b=2 with r1=0")
        .expect_mem(b, 2u64)
        .expect_reg(p(1), r(1), 0u64)
        .build()
}

/// Every litmus test that appears as a figure in the paper.
#[must_use]
pub fn paper_tests() -> Vec<LitmusTest> {
    vec![
        dekker(),
        oota(),
        store_forwarding(),
        mp_addr(),
        mp_artificial_addr(),
        mp_mem_dep(),
        mp_prefetch(),
        corr(),
        corr_intervening_store(),
        rsw(),
        rnsw(),
    ]
}

/// The classical litmus tests used in addition to the paper's figures.
#[must_use]
pub fn classic_tests() -> Vec<LitmusTest> {
    vec![
        dekker_fence_sl(),
        mp(),
        mp_fences(),
        mp_fence_ss_only(),
        lb(),
        lb_data(),
        lb_fence_ls(),
        iriw(),
        iriw_fence_ll(),
        wrc(),
        wrc_no_dep(),
        corw(),
        cowr(),
        coww(),
        two_plus_two_w(),
        two_plus_two_w_fence(),
        s_test(),
        r_test(),
    ]
}

/// All litmus tests in the library (paper figures first, then classics).
#[must_use]
pub fn all_tests() -> Vec<LitmusTest> {
    let mut tests = paper_tests();
    tests.extend(classic_tests());
    tests
}

/// Looks up a litmus test by name.
#[must_use]
pub fn by_name(name: &str) -> Option<LitmusTest> {
    all_tests().into_iter().find(|t| t.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn library_has_paper_and_classic_tests() {
        assert_eq!(paper_tests().len(), 11);
        assert_eq!(classic_tests().len(), 18);
        assert_eq!(all_tests().len(), 29);
    }

    #[test]
    fn names_are_unique() {
        let names: BTreeSet<String> = all_tests().iter().map(|t| t.name().to_string()).collect();
        assert_eq!(names.len(), all_tests().len());
    }

    #[test]
    fn all_tests_validate_and_observe_something() {
        for test in all_tests() {
            assert!(test.program().num_threads() >= 1, "{}", test.name());
            assert!(!test.condition().is_empty(), "{}", test.name());
            assert!(!test.observed().is_empty(), "{}", test.name());
            assert!(!test.description().is_empty(), "{}", test.name());
        }
    }

    #[test]
    fn by_name_finds_paper_tests() {
        assert!(by_name("dekker").is_some());
        assert!(by_name("rsw").is_some());
        assert!(by_name("rnsw").is_some());
        assert!(by_name("does-not-exist").is_none());
    }

    #[test]
    fn dekker_shape() {
        let t = dekker();
        assert_eq!(t.program().num_threads(), 2);
        assert_eq!(t.program().memory_instruction_count(), 4);
        assert!(!t.program().has_branches());
    }

    #[test]
    fn iriw_has_four_threads() {
        assert_eq!(iriw().program().num_threads(), 4);
        assert_eq!(iriw_fence_ll().program().num_threads(), 4);
    }

    #[test]
    fn rsw_and_rnsw_differ_by_one_store_and_fence() {
        let rsw_count = rsw().program().instruction_count();
        let rnsw_count = rnsw().program().instruction_count();
        assert_eq!(rnsw_count, rsw_count + 2);
    }

    #[test]
    fn mem_dep_test_uses_three_locations() {
        let t = mp_mem_dep();
        // P2 has 4 loads/stores touching b, c, c, and a dependent address.
        assert_eq!(t.program().threads()[1].memory_instruction_count(), 4);
    }

    #[test]
    fn coww_observes_memory() {
        let t = coww();
        assert!(matches!(t.observed()[0], crate::litmus::Observation::Memory(_)));
    }
}
