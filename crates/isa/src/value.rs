//! Runtime values and symbolic memory locations.

use std::fmt;

/// A 64-bit machine value.
///
/// Values carry both data and addresses: the paper's litmus tests frequently
/// store an *address* into memory (e.g. `St [b] a` in MP+addr, Figure 13a) and
/// later load it to form the address of another access, so the value domain
/// must be able to represent locations. Symbolic locations are mapped to
/// concrete addresses by [`Loc::address`].
///
/// # Example
///
/// ```
/// use gam_isa::{Loc, Value};
/// let v = Value::new(42);
/// assert_eq!(v.raw(), 42);
/// let a = Loc::new("a");
/// assert_eq!(Value::from(a), Value::new(a.address()));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Value(u64);

impl Value {
    /// The zero value, also the initial content of every memory location and register.
    pub const ZERO: Value = Value(0);

    /// Creates a value from a raw 64-bit integer.
    #[must_use]
    pub const fn new(raw: u64) -> Self {
        Value(raw)
    }

    /// Returns the raw 64-bit representation.
    #[must_use]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Wrapping addition, the semantics of the `Add` ALU operation.
    #[must_use]
    pub const fn wrapping_add(self, other: Value) -> Value {
        Value(self.0.wrapping_add(other.0))
    }

    /// Wrapping subtraction, the semantics of the `Sub` ALU operation.
    #[must_use]
    pub const fn wrapping_sub(self, other: Value) -> Value {
        Value(self.0.wrapping_sub(other.0))
    }

    /// Returns true if this value is zero.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Values in the location-address window print as the location name
        // would not be recoverable here, so print the raw integer; locations
        // themselves provide a nicer Display.
        write!(f, "{}", self.0)
    }
}

impl From<u64> for Value {
    fn from(raw: u64) -> Self {
        Value(raw)
    }
}

impl From<Loc> for Value {
    fn from(loc: Loc) -> Self {
        Value(loc.address())
    }
}

/// A symbolic shared-memory location (the `a`, `b`, `c` of litmus tests).
///
/// Every location has a stable concrete address derived from its name so that
/// address arithmetic (e.g. `r2 = a + r1 - r1`) works on plain [`Value`]s.
/// Addresses are spaced far apart (one 4 KiB page per location) and offset
/// from a large base so they never collide with small litmus-test data values.
///
/// # Example
///
/// ```
/// use gam_isa::Loc;
/// let a = Loc::new("a");
/// let b = Loc::new("b");
/// assert_ne!(a.address(), b.address());
/// assert_eq!(Loc::new("a"), a);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Loc {
    address: u64,
}

/// Base address of the symbolic location region.
const LOC_BASE: u64 = 0x1000_0000;
/// Spacing between consecutive symbolic locations.
const LOC_STRIDE: u64 = 0x1000;

impl Loc {
    /// Base address of the symbolic location region: every [`Loc`] produced
    /// by [`Loc::new`] lives at or above this address, and litmus-test *data*
    /// values are expected to stay below it. Tools that need to distinguish
    /// "looks like an address" from "looks like data" (e.g. the frontend's
    /// canonicalizer) key off this constant.
    pub const REGION_BASE: u64 = LOC_BASE;

    /// Spacing between consecutive symbolic locations ([`Loc::new`] addresses
    /// are multiples of this stride above [`Loc::REGION_BASE`]).
    pub const REGION_STRIDE: u64 = LOC_STRIDE;

    /// Creates a location from a symbolic name.
    ///
    /// The same name always maps to the same address. Distinct names map to
    /// distinct addresses as long as their hashes do not collide within the
    /// 2^40 slots available; the litmus-test domain uses a handful of names.
    #[must_use]
    pub fn new(name: &str) -> Self {
        Loc { address: LOC_BASE + LOC_STRIDE * Self::slot(name) }
    }

    /// Creates a location directly from a concrete address.
    #[must_use]
    pub const fn from_address(address: u64) -> Self {
        Loc { address }
    }

    /// Returns the concrete address of this location.
    #[must_use]
    pub const fn address(self) -> u64 {
        self.address
    }

    /// Returns the value holding this location's address.
    #[must_use]
    pub const fn value(self) -> Value {
        Value::new(self.address)
    }

    fn slot(name: &str) -> u64 {
        // Small deterministic FNV-1a hash; litmus tests use single-letter
        // names so collisions are not a practical concern, and callers can
        // always fall back to `from_address` for full control.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash % 0x100_0000
    }
}

impl fmt::Display for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "loc@{:#x}", self.address)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_arithmetic_wraps() {
        let max = Value::new(u64::MAX);
        assert_eq!(max.wrapping_add(Value::new(1)), Value::ZERO);
        assert_eq!(Value::ZERO.wrapping_sub(Value::new(1)), max);
    }

    #[test]
    fn value_zero_checks() {
        assert!(Value::ZERO.is_zero());
        assert!(!Value::new(3).is_zero());
        assert_eq!(Value::default(), Value::ZERO);
    }

    #[test]
    fn loc_same_name_same_address() {
        assert_eq!(Loc::new("x"), Loc::new("x"));
        assert_eq!(Loc::new("x").address(), Loc::new("x").address());
    }

    #[test]
    fn loc_distinct_names_distinct_addresses() {
        let names = ["a", "b", "c", "d", "x", "y", "z", "flag", "data", "lock"];
        for (i, n1) in names.iter().enumerate() {
            for n2 in names.iter().skip(i + 1) {
                assert_ne!(Loc::new(n1).address(), Loc::new(n2).address(), "{n1} vs {n2}");
            }
        }
    }

    #[test]
    fn loc_addresses_above_base() {
        assert!(Loc::new("a").address() >= LOC_BASE);
    }

    #[test]
    fn loc_to_value_roundtrip() {
        let a = Loc::new("a");
        assert_eq!(Value::from(a).raw(), a.address());
        assert_eq!(a.value(), Value::from(a));
        assert_eq!(Loc::from_address(a.address()), a);
    }

    #[test]
    fn value_address_arithmetic_identity() {
        // r2 = a + r1 - r1 must equal a, the artificial-dependency idiom.
        let a = Loc::new("a").value();
        let r1 = Value::new(123_456);
        assert_eq!(a.wrapping_add(r1).wrapping_sub(r1), a);
    }
}
