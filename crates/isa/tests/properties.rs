//! Property-based tests of the ISA layer: value arithmetic, locations,
//! register sets and the thread-program builder.

use gam_isa::prelude::*;
use proptest::prelude::*;

proptest! {
    /// The artificial-dependency idiom `x + d - d` is always the identity,
    /// which is what makes `artificial_addr_dep` semantically transparent.
    #[test]
    fn artificial_dependency_is_identity(base in any::<u64>(), dep in any::<u64>()) {
        let x = Value::new(base);
        let d = Value::new(dep);
        prop_assert_eq!(x.wrapping_add(d).wrapping_sub(d), x);
    }

    /// Wrapping add/sub are inverses in either order.
    #[test]
    fn add_sub_inverse(a in any::<u64>(), b in any::<u64>()) {
        let va = Value::new(a);
        let vb = Value::new(b);
        prop_assert_eq!(va.wrapping_add(vb).wrapping_sub(vb), va);
        prop_assert_eq!(va.wrapping_sub(vb).wrapping_add(vb), va);
    }

    /// ALU operations are total and Mov ignores its second operand.
    #[test]
    fn mov_ignores_rhs(a in any::<u64>(), b in any::<u64>()) {
        prop_assert_eq!(AluOp::Mov.apply(Value::new(a), Value::new(b)), Value::new(a));
        prop_assert_eq!(AluOp::Xor.apply(Value::new(a), Value::new(a)), Value::ZERO);
    }

    /// Location naming is stable and injective for short names.
    #[test]
    fn locations_are_stable(name in "[a-z]{1,6}") {
        let first = Loc::new(&name);
        let second = Loc::new(&name);
        prop_assert_eq!(first, second);
        prop_assert_eq!(first.address(), second.address());
        prop_assert_eq!(Loc::from_address(first.address()), first);
    }

    /// Distinct single-letter names map to distinct addresses (the litmus domain).
    #[test]
    fn distinct_short_names_do_not_collide(a in "[a-z]{1,3}", b in "[a-z]{1,3}") {
        prop_assume!(a != b);
        prop_assert_ne!(Loc::new(&a).address(), Loc::new(&b).address());
    }

    /// An instruction's address read set is always contained in its read set,
    /// and its write set never overlaps a store's or fence's outputs.
    #[test]
    fn register_set_containment(dst in 0u32..8, addr_reg in 0u32..8, data_reg in 0u32..8) {
        let load = Instruction::Load { dst: Reg::new(dst), addr: Addr::reg(Reg::new(addr_reg)) };
        for reg in load.addr_read_set() {
            prop_assert!(load.read_set().contains(&reg));
        }
        prop_assert_eq!(load.write_set(), vec![Reg::new(dst)]);

        let store = Instruction::Store {
            addr: Addr::reg(Reg::new(addr_reg)),
            data: Operand::reg(Reg::new(data_reg)),
        };
        for reg in store.addr_read_set() {
            prop_assert!(store.read_set().contains(&reg));
        }
        for reg in store.data_read_set() {
            prop_assert!(store.read_set().contains(&reg));
        }
        prop_assert!(store.write_set().is_empty());
    }

    /// The builder preserves instruction order and memory-instruction counts.
    #[test]
    fn builder_preserves_order(stores in 0usize..6, loads in 0usize..6) {
        let loc = Loc::new("p");
        let mut builder = ThreadProgram::builder(ProcId::new(0));
        for _ in 0..stores {
            builder.store(Addr::loc(loc), Operand::imm(1));
        }
        for i in 0..loads {
            builder.load(Reg::new(i as u32 + 1), Addr::loc(loc));
        }
        let thread = builder.build();
        prop_assert_eq!(thread.len(), stores + loads);
        prop_assert_eq!(thread.memory_instruction_count(), stores + loads);
        let store_count = thread.instructions().iter().filter(|i| i.is_store()).count();
        prop_assert_eq!(store_count, stores);
    }

    /// Outcome matching is reflexive and monotone under extension.
    #[test]
    fn outcome_matching_is_monotone(values in proptest::collection::vec(0u64..16, 1..5)) {
        let proc = ProcId::new(0);
        let mut partial = Outcome::new();
        let mut full = Outcome::new();
        for (i, v) in values.iter().enumerate() {
            full = full.with_reg(proc, Reg::new(i as u32), *v);
            if i % 2 == 0 {
                partial = partial.with_reg(proc, Reg::new(i as u32), *v);
            }
        }
        prop_assert!(full.matched_by(&full));
        prop_assert!(partial.matched_by(&full));
    }
}
