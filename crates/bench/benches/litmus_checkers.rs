//! Criterion benchmarks of the formal-model checkers: the axiomatic
//! enumerator, the operational explorer, the equivalence comparison and the
//! parallel engine facade, on representative litmus tests from the paper
//! (Figures 2, 13 and 14).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use gam_axiomatic::AxiomaticChecker;
use gam_core::{model, ModelKind};
use gam_engine::{Backend, Engine};
use gam_isa::litmus::library;
use gam_operational::OperationalChecker;
use gam_verify::EquivalenceReport;

fn bench_axiomatic(c: &mut Criterion) {
    let mut group = c.benchmark_group("axiomatic");
    group.sample_size(20);
    for test in [library::dekker(), library::corr(), library::mp_addr(), library::rsw()] {
        for spec in [model::gam(), model::gam0(), model::sc()] {
            let checker = AxiomaticChecker::new(spec.clone());
            let id = BenchmarkId::new(spec.name(), test.name());
            group.bench_with_input(id, &test, |b, test| {
                b.iter(|| checker.check(test).expect("checkable"));
            });
        }
    }
    group.finish();
}

fn bench_operational(c: &mut Criterion) {
    let mut group = c.benchmark_group("operational");
    group.sample_size(10);
    for test in [library::dekker(), library::corr(), library::mp_fence_ss_only()] {
        for kind in [ModelKind::Sc, ModelKind::Tso, ModelKind::Gam, ModelKind::Gam0] {
            let checker = OperationalChecker::new(kind);
            let id = BenchmarkId::new(format!("{kind}"), test.name());
            group.bench_with_input(id, &test, |b, test| {
                b.iter(|| checker.allowed_outcomes(test).expect("explorable"));
            });
        }
    }
    group.finish();
}

fn bench_equivalence(c: &mut Criterion) {
    let mut group = c.benchmark_group("equivalence");
    group.sample_size(10);
    let tests = vec![library::dekker(), library::corr()];
    group.bench_function("gam-dekker-corr", |b| {
        b.iter(|| {
            let report = EquivalenceReport::compute(&tests, ModelKind::Gam);
            assert!(report.all_equivalent());
        });
    });
    group.finish();
}

fn bench_engine_suite(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_suite");
    group.sample_size(10);
    let tests = library::paper_tests();
    for backend in Backend::ALL {
        for workers in [1usize, 4] {
            let engine = Engine::builder()
                .model(ModelKind::Gam)
                .backend(backend)
                .parallelism(workers)
                .build()
                .expect("GAM is supported by both backends");
            let id = BenchmarkId::new(backend.name(), format!("{workers}-workers"));
            group.bench_with_input(id, &tests, |b, tests| {
                b.iter(|| {
                    let report = engine.run_suite(tests);
                    assert!(report.all_ok());
                });
            });
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_axiomatic,
    bench_operational,
    bench_equivalence,
    bench_engine_suite
);
criterion_main!(benches);
