//! Criterion benchmarks of the formal-model checkers: the axiomatic
//! enumerator, the operational explorer and the equivalence comparison, on
//! representative litmus tests from the paper (Figures 2, 13 and 14).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use gam_axiomatic::AxiomaticChecker;
use gam_core::{model, ModelKind};
use gam_isa::litmus::library;
use gam_operational::OperationalChecker;
use gam_verify::EquivalenceReport;

fn bench_axiomatic(c: &mut Criterion) {
    let mut group = c.benchmark_group("axiomatic");
    group.sample_size(20);
    for test in [library::dekker(), library::corr(), library::mp_addr(), library::rsw()] {
        for spec in [model::gam(), model::gam0(), model::sc()] {
            let checker = AxiomaticChecker::new(spec.clone());
            let id = BenchmarkId::new(spec.name(), test.name());
            group.bench_with_input(id, &test, |b, test| {
                b.iter(|| checker.check(test).expect("checkable"));
            });
        }
    }
    group.finish();
}

fn bench_operational(c: &mut Criterion) {
    let mut group = c.benchmark_group("operational");
    group.sample_size(10);
    for test in [library::dekker(), library::corr(), library::mp_fence_ss_only()] {
        for kind in [ModelKind::Sc, ModelKind::Tso, ModelKind::Gam, ModelKind::Gam0] {
            let checker = OperationalChecker::new(kind);
            let id = BenchmarkId::new(format!("{kind}"), test.name());
            group.bench_with_input(id, &test, |b, test| {
                b.iter(|| checker.allowed_outcomes(test).expect("explorable"));
            });
        }
    }
    group.finish();
}

fn bench_equivalence(c: &mut Criterion) {
    let mut group = c.benchmark_group("equivalence");
    group.sample_size(10);
    let tests = vec![library::dekker(), library::corr()];
    group.bench_function("gam-dekker-corr", |b| {
        b.iter(|| {
            let report = EquivalenceReport::compute(&tests, ModelKind::Gam);
            assert!(report.all_equivalent());
        });
    });
    group.finish();
}

criterion_group!(benches, bench_axiomatic, bench_operational, bench_equivalence);
criterion_main!(benches);
