//! Criterion benchmarks of the microarchitecture simulator, one group per
//! paper experiment: Figure 18 (normalized uPC), Table II (kills/stalls) and
//! Table III (load-load forwarding). Each group runs a scaled-down version of
//! the corresponding harness so that `cargo bench` stays fast; the
//! full-length experiment binaries (`fig18`, `table2`, `table3`) print the
//! complete tables.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use gam_bench::{run_workload, table2, table3};
use gam_uarch::config::{MemoryModelPolicy, SimConfig};
use gam_uarch::workload::{WorkloadSpec, WorkloadSuite};
use gam_uarch::Simulator;

const BENCH_OPS: usize = 20_000;

fn bench_fig18_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig18_sim");
    group.sample_size(10);
    let trace = WorkloadSpec::mixed("fig18.bench", 256 * 1024, 0.03).generate(BENCH_OPS, 42);
    for policy in MemoryModelPolicy::ALL {
        let simulator = Simulator::new(SimConfig::haswell_like(policy));
        group.bench_with_input(BenchmarkId::from_parameter(policy), &trace, |b, trace| {
            b.iter(|| simulator.run(trace));
        });
    }
    group.finish();
}

fn bench_table2_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_sim");
    group.sample_size(10);
    let spec = WorkloadSpec::same_addr_heavy("table2.bench", 64 * 1024);
    group.bench_function("kills-and-stalls", |b| {
        b.iter(|| {
            let result = run_workload(&spec, BENCH_OPS, 7);
            table2(&[result])
        });
    });
    group.finish();
}

fn bench_table3_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3_sim");
    group.sample_size(10);
    let spec = WorkloadSpec::pointer_chase("table3.bench", 1024 * 1024);
    group.bench_function("load-load-forwarding", |b| {
        b.iter(|| {
            let result = run_workload(&spec, BENCH_OPS, 9);
            table3(&[result])
        });
    });
    group.finish();
}

fn bench_workload_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("workload_generation");
    group.sample_size(20);
    for spec in WorkloadSuite::small().specs() {
        group.bench_with_input(BenchmarkId::from_parameter(spec.name()), spec, |b, spec| {
            b.iter(|| spec.generate(BENCH_OPS, 3));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_fig18_policies,
    bench_table2_pipeline,
    bench_table3_pipeline,
    bench_workload_generation
);
criterion_main!(benches);
