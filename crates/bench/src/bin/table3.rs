//! Reproduces Table III of the paper: the effects of load-load forwarding in
//! Alpha\* — forwardings per thousand micro-ops and the reduction in L1 load
//! misses relative to GAM.
//!
//! Usage: `cargo run --release -p gam-bench --bin table3 [-- --ops N --seed S]`.

use gam_bench::{arg_value, render_table3, run_suite};
use gam_uarch::workload::WorkloadSuite;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    eprintln!("{}", gam_bench::validate_models_via_engine());
    let ops: usize = arg_value(&args, "--ops").and_then(|v| v.parse().ok()).unwrap_or(200_000);
    let seed: u64 = arg_value(&args, "--seed").and_then(|v| v.parse().ok()).unwrap_or(42);

    let suite = WorkloadSuite::paper();
    eprintln!(
        "simulating {} workloads x 2 policies (GAM, Alpha*) x {ops} micro-ops (seed {seed})...",
        suite.len()
    );
    let results = run_suite(&suite, ops, seed);
    print!("{}", render_table3(&results));
}
