//! Ablation study beyond the paper's evaluation: how sensitive are the
//! same-address load-load kill/stall rates (and the resulting uPC gap between
//! GAM and the weaker policies) to (a) adversarial same-address-heavy
//! workloads and (b) the size of the instruction window?
//!
//! The paper's claim is that SALdLd is essentially free *on SPEC-like code*;
//! this binary shows where that stops being true, which is exactly the
//! information an architect weighing constraint SALdLd would want.
//!
//! Usage: `cargo run --release -p gam-bench --bin ablation [-- --ops N --seed S]`.

use gam_bench::{arg_value, run_workload};
use gam_uarch::config::{MemoryModelPolicy, SimConfig};
use gam_uarch::workload::WorkloadSuite;
use gam_uarch::Simulator;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    eprintln!("{}", gam_bench::validate_models_via_engine());
    let ops: usize = arg_value(&args, "--ops").and_then(|v| v.parse().ok()).unwrap_or(100_000);
    let seed: u64 = arg_value(&args, "--seed").and_then(|v| v.parse().ok()).unwrap_or(42);

    println!("Ablation 1 — adversarial same-address workloads (not part of Figure 18)");
    println!(
        "{:<18} {:>12} {:>12} {:>14} {:>14}",
        "workload", "kills/1K", "stalls/1K", "GAM uPC", "GAM0/GAM uPC"
    );
    for spec in WorkloadSuite::adversarial().specs() {
        let result = run_workload(spec, ops, seed);
        let gam = result.of(MemoryModelPolicy::Gam);
        println!(
            "{:<18} {:>12.3} {:>12.3} {:>14.3} {:>14.4}",
            result.workload,
            gam.kills_per_kilo_uop(),
            gam.stalls_per_kilo_uop(),
            gam.upc(),
            result.normalized_upc(MemoryModelPolicy::Gam0),
        );
    }

    println!();
    println!("Ablation 2 — window-size sensitivity of the SALdLd kill rate");
    println!(
        "(adversarial `samereads.hot` workload; larger windows expose more same-address pairs)"
    );
    println!("{:<10} {:>10} {:>12} {:>12} {:>12}", "ROB", "LQ", "kills/1K", "stalls/1K", "GAM uPC");
    let spec = &WorkloadSuite::adversarial().specs()[0].clone();
    let trace = spec.generate(ops, seed);
    for (rob, lq) in [(32, 12), (64, 24), (96, 36), (128, 48), (192, 72), (256, 96)] {
        let mut config = SimConfig::haswell_like(MemoryModelPolicy::Gam);
        config.core.rob_entries = rob;
        config.core.lq_entries = lq;
        config.core.rs_entries = (rob / 3).max(8);
        config.core.sq_entries = (lq * 2 / 3).max(8);
        let stats = Simulator::new(config).run(&trace);
        println!(
            "{:<10} {:>10} {:>12.3} {:>12.3} {:>12.3}",
            rob,
            lq,
            stats.kills_per_kilo_uop(),
            stats.stalls_per_kilo_uop(),
            stats.upc()
        );
    }
}
