//! Reproduces the litmus-test verdicts of the paper's figures (2, 5, 8, 13
//! and 14) plus the classical tests, as a model-comparison matrix, and
//! cross-checks the axiomatic and operational definitions of every model that
//! has an abstract machine. Everything runs through the parallel
//! [`gam_engine::Engine`] facade.
//!
//! Usage: `cargo run --release -p gam-bench --bin litmus_tables [-- --json]
//! [--parallel N]`
//!
//! With `--json`, the complete per-test suite results (verdict, outcome set,
//! wall time, backend) are printed as machine-readable JSON for the
//! perf-trajectory tooling instead of the human-readable tables.

use gam_bench::{arg_flag, arg_value};
use gam_core::ModelKind;
use gam_engine::{Backend, Engine, Json, ToJson};
use gam_isa::litmus::library;
use gam_verify::{ComparisonMatrix, EquivalenceReport};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let parallelism: usize = arg_value(&args, "--parallel")
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        })
        .max(1);
    let tests = library::all_tests();

    if arg_flag(&args, "--json") {
        print_json(parallelism);
        return;
    }

    println!("Litmus-test verdicts per model (axiomatic engine, {parallelism} workers)");
    println!("==================================================");
    let matrix = ComparisonMatrix::compute_with_parallelism(&tests, parallelism)
        .expect("litmus tests are checkable");
    print!("{matrix}");
    println!();
    if matrix.matches_expectations() {
        println!("all verdicts match the paper / expectation table");
    } else {
        println!("MISMATCHES against the expectation table:");
        for row in matrix.mismatched_rows() {
            println!("  {}: {:?}", row.test, row.mismatches);
        }
    }

    println!();
    println!("Axiomatic vs operational equivalence (complete outcome sets)");
    println!("=============================================================");
    let report = EquivalenceReport::compute_all(&tests);
    let mismatches = report.mismatches();
    println!(
        "{} comparisons across SC, TSO, GAM and GAM0; {} mismatches",
        report.results().len(),
        mismatches.len()
    );
    for mismatch in mismatches {
        println!("  {mismatch}");
    }
}

/// Runs every supported `(model, backend)` pair over the whole library and
/// prints one JSON document with all suite reports plus an equivalence
/// summary.
fn print_json(parallelism: usize) {
    let tests = library::all_tests();
    let mut suites = Vec::new();
    for model in ModelKind::ALL {
        for backend in Backend::ALL {
            if !backend.supports(model) {
                continue;
            }
            let engine = Engine::builder()
                .model(model)
                .backend(backend)
                .parallelism(parallelism)
                .build()
                .expect("supported (model, backend) pair");
            suites.push(engine.run_suite(&tests));
        }
    }

    let equivalence = EquivalenceReport::compute_all(&tests);
    let document = Json::object([
        ("parallelism", Json::from(parallelism as u64)),
        ("test_count", Json::from(tests.len() as u64)),
        ("suites", Json::array(suites.iter().map(ToJson::to_json))),
        (
            "equivalence",
            Json::object([
                ("comparisons", Json::from(equivalence.results().len() as u64)),
                ("mismatches", Json::from(equivalence.mismatches().len() as u64)),
                ("all_equivalent", Json::from(equivalence.all_equivalent())),
            ]),
        ),
    ]);
    println!("{document}");
}
