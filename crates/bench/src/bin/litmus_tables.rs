//! Reproduces the litmus-test verdicts of the paper's figures (2, 5, 8, 13
//! and 14) plus the classical tests, as a model-comparison matrix, and
//! cross-checks the axiomatic and operational definitions of every model that
//! has an abstract machine.

use gam_isa::litmus::library;
use gam_verify::{ComparisonMatrix, EquivalenceReport};

fn main() {
    let tests = library::all_tests();
    println!("Litmus-test verdicts per model (axiomatic checker)");
    println!("==================================================");
    let matrix = ComparisonMatrix::compute(&tests).expect("litmus tests are checkable");
    print!("{matrix}");
    println!();
    if matrix.matches_expectations() {
        println!("all verdicts match the paper / expectation table");
    } else {
        println!("MISMATCHES against the expectation table:");
        for row in matrix.mismatched_rows() {
            println!("  {}: {:?}", row.test, row.mismatches);
        }
    }

    println!();
    println!("Axiomatic vs operational equivalence (complete outcome sets)");
    println!("=============================================================");
    let report = EquivalenceReport::compute_all(&tests);
    let mismatches = report.mismatches();
    println!(
        "{} comparisons across SC, TSO, GAM and GAM0; {} mismatches",
        report.results().len(),
        mismatches.len()
    );
    for mismatch in mismatches {
        println!("  {mismatch}");
    }
}
