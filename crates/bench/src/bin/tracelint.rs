//! `tracelint` — validates a Chrome `trace_event` JSON file as written by
//! `gam ... --trace-out`.
//!
//! Usage: `tracelint FILE`. Exits 0 when the trace is valid, 1 with one
//! message per violation otherwise. CI runs a traced `gam check` and lints
//! the file, so a trace Perfetto would refuse to load fails the build
//! instead.
//!
//! Checks:
//!
//! * the document parses and has a non-empty `traceEvents` array;
//! * every event has `ph`, `name`, `ts`, `pid` and `tid`;
//! * `ph` is `X` (complete span) or `i` (instant) — the only phases the
//!   exporter emits;
//! * every `X` event has a `dur`;
//! * spans are balanced per thread: two spans on one `tid` either nest or
//!   are disjoint — partial overlap means a corrupt span stack.

use std::process::ExitCode;

use gam_engine::Json;

struct SpanRow {
    name: String,
    tid: u64,
    ts: u64,
    dur: u64,
}

fn lint(trace: &Json) -> Vec<String> {
    let mut errors = Vec::new();
    let Some(events) = trace.get("traceEvents").and_then(Json::as_array) else {
        return vec!["missing traceEvents array".to_string()];
    };
    if events.is_empty() {
        return vec!["traceEvents is empty".to_string()];
    }
    let mut spans: Vec<SpanRow> = Vec::new();
    for (index, event) in events.iter().enumerate() {
        let label = |field: &str| format!("event {index}: missing {field}");
        let Some(ph) = event.get("ph").and_then(Json::as_str) else {
            errors.push(label("ph"));
            continue;
        };
        let Some(name) = event.get("name").and_then(Json::as_str) else {
            errors.push(label("name"));
            continue;
        };
        let Some(ts) = event.get("ts").and_then(Json::as_u64) else {
            errors.push(label("ts"));
            continue;
        };
        for field in ["pid", "tid"] {
            if event.get(field).and_then(Json::as_u64).is_none() {
                errors.push(label(field));
            }
        }
        match ph {
            "X" => {
                let Some(dur) = event.get("dur").and_then(Json::as_u64) else {
                    errors.push(format!("event {index} ({name}): X span without dur"));
                    continue;
                };
                spans.push(SpanRow {
                    name: name.to_string(),
                    tid: event.get("tid").and_then(Json::as_u64).unwrap_or(0),
                    ts,
                    dur,
                });
            }
            "i" => {}
            other => errors.push(format!("event {index} ({name}): unexpected ph `{other}`")),
        }
    }
    // Balance: on one thread, spans nest or are disjoint — never partially
    // overlap. (ts, ts+dur) intervals are compared pairwise per tid; the
    // ring holds tens of thousands of spans at most, so O(n^2) within a
    // thread is fine for a lint.
    let mut tids: Vec<u64> = spans.iter().map(|s| s.tid).collect();
    tids.sort_unstable();
    tids.dedup();
    for tid in tids {
        let thread: Vec<&SpanRow> = spans.iter().filter(|s| s.tid == tid).collect();
        for (i, a) in thread.iter().enumerate() {
            for b in &thread[i + 1..] {
                let (a0, a1) = (a.ts, a.ts + a.dur);
                let (b0, b1) = (b.ts, b.ts + b.dur);
                let disjoint = a1 <= b0 || b1 <= a0;
                let nested = (a0 <= b0 && b1 <= a1) || (b0 <= a0 && a1 <= b1);
                if !disjoint && !nested {
                    errors.push(format!(
                        "tid {tid}: spans `{}` [{a0},{a1}) and `{}` [{b0},{b1}) partially \
                         overlap — unbalanced span stack",
                        a.name, b.name
                    ));
                }
            }
        }
    }
    errors
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(path) = args.first() else {
        eprintln!("usage: tracelint FILE");
        return ExitCode::from(2);
    };
    let raw = match std::fs::read_to_string(path) {
        Ok(raw) => raw,
        Err(err) => {
            eprintln!("tracelint: cannot read {path}: {err}");
            return ExitCode::from(2);
        }
    };
    let trace = match Json::parse(&raw) {
        Ok(trace) => trace,
        Err(err) => {
            eprintln!("tracelint: {path}: not well-formed JSON: {err}");
            return ExitCode::FAILURE;
        }
    };
    let errors = lint(&trace);
    if errors.is_empty() {
        let count = trace.get("traceEvents").and_then(Json::as_array).map_or(0, <[Json]>::len);
        println!("tracelint: ok ({count} events)");
        ExitCode::SUCCESS
    } else {
        for error in &errors {
            eprintln!("tracelint: {error}");
        }
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::lint;
    use gam_engine::Json;

    fn parse(text: &str) -> Json {
        Json::parse(text).expect("test JSON parses")
    }

    #[test]
    fn a_valid_trace_passes() {
        let trace = parse(
            r#"{"traceEvents":[
                {"ph":"X","name":"outer","ts":0,"dur":100,"pid":1,"tid":1},
                {"ph":"X","name":"inner","ts":10,"dur":20,"pid":1,"tid":1},
                {"ph":"X","name":"later","ts":50,"dur":50,"pid":1,"tid":1},
                {"ph":"i","name":"mark","ts":60,"pid":1,"tid":1,"s":"t"}
            ]}"#,
        );
        assert_eq!(lint(&trace), Vec::<String>::new());
    }

    #[test]
    fn partial_overlap_is_unbalanced() {
        let trace = parse(
            r#"{"traceEvents":[
                {"ph":"X","name":"a","ts":0,"dur":60,"pid":1,"tid":1},
                {"ph":"X","name":"b","ts":50,"dur":60,"pid":1,"tid":1}
            ]}"#,
        );
        assert!(lint(&trace).iter().any(|e| e.contains("partially overlap")));
    }

    #[test]
    fn cross_thread_overlap_is_fine() {
        let trace = parse(
            r#"{"traceEvents":[
                {"ph":"X","name":"a","ts":0,"dur":60,"pid":1,"tid":1},
                {"ph":"X","name":"b","ts":50,"dur":60,"pid":1,"tid":2}
            ]}"#,
        );
        assert_eq!(lint(&trace), Vec::<String>::new());
    }

    #[test]
    fn missing_fields_and_empty_traces_fail() {
        assert!(lint(&parse(r#"{"traceEvents":[]}"#)).iter().any(|e| e.contains("empty")));
        assert!(lint(&parse(r#"{}"#)).iter().any(|e| e.contains("missing traceEvents")));
        let no_dur = parse(r#"{"traceEvents":[{"ph":"X","name":"a","ts":0,"pid":1,"tid":1}]}"#);
        assert!(lint(&no_dur).iter().any(|e| e.contains("without dur")));
    }
}
