//! `perf_snapshot` — the perf-trajectory recorder.
//!
//! Runs the full litmus library through both formal backends under every
//! model, measures wall time and search effort (read-from assignments
//! enumerated vs. the unpruned space, memory orders visited, machine states
//! explored — unreduced, partial-order-reduced, sequential and parallel),
//! cross-checks that every configuration produced identical outcome sets,
//! and writes a machine-readable `BENCH_<date>.json` so future changes have
//! a baseline to beat.
//!
//! ```text
//! usage: perf_snapshot [--quick] [--corpus DIR] [--out PATH] [--parallelism N]
//!                      [--date YYYY-MM-DD]
//!                      [--compare OLD.json [--against NEW.json]]
//!                      [--fail-threshold R] [--list-gates]
//!
//!   --quick            run the paper's 11 core tests instead of the full library
//!   --corpus DIR       measure a `.litmus` corpus directory (see `gam run`)
//!                      instead of the in-code library
//!   --out PATH         output path (default: BENCH_<date>.json in the CWD)
//!   --parallelism N    worker threads for the parallel explorer (default: all cores)
//!   --date D           date stamp for the file name and payload (default: today, UTC)
//!   --compare OLD      after the run, diff OLD against the fresh snapshot and
//!                      exit non-zero on regressions beyond the threshold
//!   --against NEW      with --compare: diff OLD against NEW instead of running
//!   --fail-threshold R factor on the deterministic effort counters above which
//!                      a difference is a regression (default 1.25; 0 = report only)
//!   --no-obs-gate      skip the disarmed-instrumentation wall gate — for
//!                      comparisons across machines, where absolute walls
//!                      are not comparable (the deterministic counter gates
//!                      and the intra-run parallelism gate still apply)
//!   --list-gates       print every gated counter and the threshold semantics,
//!                      then exit (no benchmark run)
//! ```
//!
//! The JSON schema (`gam-perf-snapshot/v5`) is documented in the README's
//! "Performance" section: v4 (the top-level `obs` section measuring the
//! cost of the `gam-obs` instrumentation — the suite's wall time with
//! tracing disarmed and armed, best of three passes each, and the armed
//! overhead in permille) plus per-test *memory figures*: every operational
//! entry carries a `memory` object recorded by one extra sequential
//! exploration with the memory accountant armed (`peak_accounted_bytes`,
//! `spilled_bytes`, `spill_segments`, `sleep_flushes`), the totals gain the
//! summed `peak_accounted_bytes`, and the snapshot records the process's
//! final `resident_bytes` (informational — OS- and allocator-dependent).
//! `--compare` reads v1 through v5 files and diffs whatever metrics the two
//! snapshots share, so the committed baselines stay usable across schema
//! bumps. Besides the per-test counters (which now include the
//! deterministic `peak_accounted_bytes` — the peak-memory regression gate),
//! it *gates* two walls: the adaptive parallelism (a candidate whose total
//! parallel operational wall time exceeds the sequential wall time beyond
//! the threshold factor fails the comparison, so the sharding regression
//! this schema generation fixed cannot silently return) and the disarmed
//! instrumentation overhead (a candidate whose disarmed suite wall exceeds
//! a same-workload baseline's by more than 2% fails — phase timers must
//! stay one relaxed load when off).

use std::collections::BTreeSet;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use gam_axiomatic::{AxiomaticChecker, CheckStats};
use gam_bench::{arg_flag, arg_value};
use gam_core::{model, ModelKind};
use gam_engine::Json;
use gam_isa::litmus::{library, LitmusTest, Outcome};
use gam_operational::{
    ArenaOccupancy, ExplorerConfig, MemoryConfig, MemoryStats, OperationalChecker, Reduction,
};

/// Everything measured for one `(model, test)` pair.
struct Row {
    test: String,
    axiomatic_wall: Duration,
    stats: CheckStats,
    outcomes: usize,
    /// Sequential and parallel exploration measurements (models with an
    /// abstract machine only).
    operational: Option<OperationalRow>,
}

struct OperationalRow {
    sequential_wall: Duration,
    parallel_wall: Duration,
    states_visited: usize,
    final_states: usize,
    /// Component-arena sharing statistics of the sequential exploration.
    occupancy: ArenaOccupancy,
    /// Memory figures of the accounted sequential exploration (budget far
    /// beyond any test's needs, so the degradation ladder never engages and
    /// `peak_bytes` is the test's deterministic in-RAM high-water mark).
    memory: MemoryStats,
    /// Reduced exploration, one entry per reduced [`Reduction`] mode.
    sleep: ReducedRow,
    sleep_canon: ReducedRow,
}

struct ReducedRow {
    wall: Duration,
    states_visited: usize,
    transitions_pruned: usize,
}

fn reduced_run(
    model_kind: ModelKind,
    test: &LitmusTest,
    reduction: Reduction,
    baseline: &BTreeSet<Outcome>,
) -> Result<ReducedRow, String> {
    let checker = OperationalChecker::with_config(
        model_kind,
        ExplorerConfig { reduction, ..ExplorerConfig::default() },
    );
    let start = Instant::now();
    let exploration = checker
        .explore(test)
        .map_err(|e| format!("{reduction} operational {model_kind}/{}: {e}", test.name()))?;
    let wall = start.elapsed();
    expect_identical(
        model_kind,
        test,
        &format!("unreduced vs {reduction}"),
        baseline,
        &exploration.outcomes,
    )?;
    Ok(ReducedRow {
        wall,
        states_visited: exploration.states_visited,
        transitions_pruned: exploration.transitions_pruned,
    })
}

fn check_one(model_kind: ModelKind, test: &LitmusTest, parallelism: usize) -> Result<Row, String> {
    let checker = AxiomaticChecker::new(model::by_kind(model_kind));
    let start = Instant::now();
    let (ax_outcomes, stats) = checker
        .allowed_outcomes_with_stats(test)
        .map_err(|e| format!("axiomatic {model_kind}/{}: {e}", test.name()))?;
    let axiomatic_wall = start.elapsed();

    let operational = if OperationalChecker::supports(model_kind) {
        let sequential = OperationalChecker::new(model_kind);
        let start = Instant::now();
        let seq = sequential
            .explore(test)
            .map_err(|e| format!("operational {model_kind}/{}: {e}", test.name()))?;
        let sequential_wall = start.elapsed();

        let parallel = OperationalChecker::with_config(
            model_kind,
            ExplorerConfig { parallelism, ..ExplorerConfig::default() },
        );
        let start = Instant::now();
        let par = parallel
            .explore(test)
            .map_err(|e| format!("parallel operational {model_kind}/{}: {e}", test.name()))?;
        let parallel_wall = start.elapsed();

        expect_identical(
            model_kind,
            test,
            "axiomatic vs operational",
            &ax_outcomes,
            &seq.outcomes,
        )?;
        expect_identical(model_kind, test, "sequential vs parallel", &seq.outcomes, &par.outcomes)?;
        if seq.states_visited != par.states_visited {
            return Err(format!(
                "{model_kind}/{}: parallel visited {} states, sequential {}",
                test.name(),
                par.states_visited,
                seq.states_visited
            ));
        }

        // Memory figures: one more sequential exploration with the
        // accountant armed. The huge budget never trips, so this measures
        // the undisturbed high-water mark — deterministic for a fixed
        // search, unlike RSS.
        let accounted = OperationalChecker::new(model_kind).with_memory(MemoryConfig {
            max_bytes: Some(usize::MAX / 2),
            spill_dir: None,
            checkpoint: None,
        });
        let acc = accounted
            .explore(test)
            .map_err(|e| format!("accounted operational {model_kind}/{}: {e}", test.name()))?;
        expect_identical(model_kind, test, "unreduced vs accounted", &seq.outcomes, &acc.outcomes)?;
        if seq.states_visited != acc.states_visited {
            return Err(format!(
                "{model_kind}/{}: accounted exploration visited {} states, plain {}",
                test.name(),
                acc.states_visited,
                seq.states_visited
            ));
        }

        let sleep = reduced_run(model_kind, test, Reduction::Sleep, &seq.outcomes)?;
        let sleep_canon = reduced_run(model_kind, test, Reduction::SleepPlusCanon, &seq.outcomes)?;
        // The parallel reduced driver must agree too (its states/pruning are
        // arrival-order dependent, so only the outcome set is pinned).
        let parallel_reduced = OperationalChecker::with_config(
            model_kind,
            ExplorerConfig {
                parallelism,
                reduction: Reduction::SleepPlusCanon,
                ..ExplorerConfig::default()
            },
        );
        let par_red = parallel_reduced
            .explore(test)
            .map_err(|e| format!("parallel reduced {model_kind}/{}: {e}", test.name()))?;
        expect_identical(
            model_kind,
            test,
            "unreduced vs parallel sleep+canon",
            &seq.outcomes,
            &par_red.outcomes,
        )?;

        Some(OperationalRow {
            sequential_wall,
            parallel_wall,
            states_visited: seq.states_visited,
            final_states: seq.final_states,
            occupancy: seq.arena.unwrap_or_default(),
            memory: acc.memory.unwrap_or_default(),
            sleep,
            sleep_canon,
        })
    } else {
        None
    };

    Ok(Row {
        test: test.name().to_string(),
        axiomatic_wall,
        stats,
        outcomes: ax_outcomes.len(),
        operational,
    })
}

fn expect_identical(
    model_kind: ModelKind,
    test: &LitmusTest,
    what: &str,
    a: &BTreeSet<Outcome>,
    b: &BTreeSet<Outcome>,
) -> Result<(), String> {
    if a == b {
        Ok(())
    } else {
        Err(format!(
            "{model_kind}/{}: {what} outcome sets differ ({} vs {} outcomes)",
            test.name(),
            a.len(),
            b.len()
        ))
    }
}

/// Wall time of the suite with `gam-obs` instrumentation disarmed and armed.
struct ObsOverhead {
    disarmed: Duration,
    armed: Duration,
}

impl ObsOverhead {
    /// Armed-over-disarmed overhead in permille (0 when armed is not slower).
    fn armed_overhead_permille(&self) -> u64 {
        let disarmed = self.disarmed.as_micros().max(1);
        let extra = self.armed.as_micros().saturating_sub(self.disarmed.as_micros());
        u64::try_from(extra * 1000 / disarmed).unwrap_or(u64::MAX)
    }
}

/// One pass over the suite: every model's axiomatic check plus, where
/// supported, a sequential operational exploration — the same work whose
/// per-test walls the main loop records, so the disarmed wall is comparable
/// to `totals.wall_us_axiomatic + totals.wall_us_operational_sequential` of
/// pre-`obs` baselines.
fn suite_pass(tests: &[LitmusTest]) -> Result<Duration, String> {
    let start = Instant::now();
    for model_kind in ModelKind::ALL {
        let checker = AxiomaticChecker::new(model::by_kind(model_kind));
        for test in tests {
            checker
                .allowed_outcomes_with_stats(test)
                .map_err(|e| format!("obs pass axiomatic {model_kind}/{}: {e}", test.name()))?;
            if OperationalChecker::supports(model_kind) {
                OperationalChecker::new(model_kind).explore(test).map_err(|e| {
                    format!("obs pass operational {model_kind}/{}: {e}", test.name())
                })?;
            }
        }
    }
    Ok(start.elapsed())
}

/// Measures the suite disarmed and armed, best of three passes each so the
/// recorded walls reflect the instrumentation, not scheduler noise. Leaves
/// tracing disarmed and the ring empty on return.
fn measure_obs_overhead(tests: &[LitmusTest]) -> Result<ObsOverhead, String> {
    let passes = 3;
    let mut disarmed = Duration::MAX;
    for _ in 0..passes {
        disarmed = disarmed.min(suite_pass(tests)?);
    }
    gam_obs::trace::arm();
    gam_obs::phase::arm_metrics();
    let mut armed = Duration::MAX;
    for _ in 0..passes {
        let pass = suite_pass(tests);
        gam_obs::trace::clear();
        armed = armed.min(pass?);
    }
    gam_obs::phase::disarm_metrics();
    gam_obs::trace::disarm();
    gam_obs::trace::clear();
    Ok(ObsOverhead { disarmed, armed })
}

/// Saturates a u128 statistic into the JSON integer space.
fn uint(n: u128) -> Json {
    Json::UInt(u64::try_from(n).unwrap_or(u64::MAX))
}

fn micros(d: Duration) -> Json {
    Json::UInt(u64::try_from(d.as_micros()).unwrap_or(u64::MAX))
}

/// Exploration throughput (saturating; 0 for an unmeasurably fast run).
fn states_per_sec(states: usize, wall: Duration) -> u64 {
    let secs = wall.as_secs_f64();
    if secs <= 0.0 {
        return 0;
    }
    #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    {
        (states as f64 / secs) as u64
    }
}

fn reduced_json(row: &ReducedRow) -> Json {
    Json::object([
        ("wall_us", micros(row.wall)),
        ("states_visited", Json::UInt(row.states_visited as u64)),
        ("transitions_pruned", Json::UInt(row.transitions_pruned as u64)),
    ])
}

fn row_json(row: &Row) -> Json {
    let pruned =
        row.stats.assignments_naive.saturating_sub(row.stats.assignments_enumerated.into());
    let mut pairs = vec![
        ("test", Json::from(row.test.as_str())),
        (
            "axiomatic",
            Json::object([
                ("wall_us", micros(row.axiomatic_wall)),
                ("assignments_naive", uint(row.stats.assignments_naive)),
                ("assignments_enumerated", Json::UInt(row.stats.assignments_enumerated)),
                ("assignments_pruned", uint(pruned)),
                ("assignments_concretized", Json::UInt(row.stats.assignments_concretized)),
                ("orders_visited", Json::UInt(row.stats.orders_visited)),
                ("outcomes", Json::UInt(row.outcomes as u64)),
            ]),
        ),
    ];
    if let Some(op) = &row.operational {
        pairs.push((
            "operational",
            Json::object([
                ("wall_us_sequential", micros(op.sequential_wall)),
                ("wall_us_parallel", micros(op.parallel_wall)),
                ("states_visited", Json::UInt(op.states_visited as u64)),
                ("final_states", Json::UInt(op.final_states as u64)),
                (
                    "states_per_sec",
                    Json::UInt(states_per_sec(op.states_visited, op.sequential_wall)),
                ),
                (
                    "arena",
                    Json::object([
                        ("distinct_memories", Json::UInt(op.occupancy.distinct_memories as u64)),
                        ("distinct_procs", Json::UInt(op.occupancy.distinct_procs as u64)),
                        (
                            "distinct_components",
                            Json::UInt(op.occupancy.distinct_components() as u64),
                        ),
                        ("interned_bytes", Json::UInt(op.occupancy.interned_bytes as u64)),
                    ]),
                ),
                (
                    "memory",
                    Json::object([
                        ("peak_accounted_bytes", Json::UInt(op.memory.peak_bytes as u64)),
                        ("spilled_bytes", Json::UInt(op.memory.spilled_bytes as u64)),
                        ("spill_segments", Json::UInt(op.memory.spill_segments as u64)),
                        ("sleep_flushes", Json::UInt(op.memory.sleep_flushes as u64)),
                    ]),
                ),
                (
                    "reduction",
                    Json::object([
                        ("sleep", reduced_json(&op.sleep)),
                        ("sleep_canon", reduced_json(&op.sleep_canon)),
                    ]),
                ),
            ]),
        ));
    }
    Json::object(pairs.iter().map(|(k, v)| (*k, v.clone())))
}

/// Days-from-epoch to a civil `YYYY-MM-DD` date (Howard Hinnant's algorithm).
fn civil_date(days: u64) -> String {
    let z = days as i64 + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}

fn today() -> String {
    let secs = SystemTime::now().duration_since(UNIX_EPOCH).map_or(0, |d| d.as_secs());
    civil_date(secs / 86_400)
}

// ---- snapshot comparison ---------------------------------------------------

/// The deterministic effort counters a comparison grades (path within a
/// per-test entry, lower is better). Wall times are reported but never fail
/// the comparison — they are machine- and load-dependent.
const GRADED: [(&str, &[&str]); 6] = [
    ("axiomatic.assignments_enumerated", &["axiomatic", "assignments_enumerated"]),
    ("axiomatic.orders_visited", &["axiomatic", "orders_visited"]),
    ("operational.states_visited", &["operational", "states_visited"]),
    ("operational.memory.peak_accounted_bytes", &["operational", "memory", "peak_accounted_bytes"]),
    (
        "operational.reduction.sleep.states_visited",
        &["operational", "reduction", "sleep", "states_visited"],
    ),
    (
        "operational.reduction.sleep_canon.states_visited",
        &["operational", "reduction", "sleep_canon", "states_visited"],
    ),
];

fn lookup<'a>(mut value: &'a Json, path: &[&str]) -> Option<&'a Json> {
    for key in path {
        value = value.get(key)?;
    }
    Some(value)
}

/// Flattens a snapshot into `(model, test) -> per-test entry`.
fn test_entries(snapshot: &Json) -> Vec<(String, String, &Json)> {
    let mut out = Vec::new();
    let Some(models) = snapshot.get("per_model").and_then(Json::as_array) else {
        return out;
    };
    for section in models {
        let Some(model) = section.get("model").and_then(Json::as_str) else { continue };
        let Some(tests) = section.get("tests").and_then(Json::as_array) else { continue };
        for entry in tests {
            if let Some(test) = entry.get("test").and_then(Json::as_str) {
                out.push((model.to_string(), test.to_string(), entry));
            }
        }
    }
    out
}

fn load_snapshot(path: &str) -> Json {
    let payload = match std::fs::read_to_string(path) {
        Ok(payload) => payload,
        Err(err) => {
            eprintln!("perf_snapshot: cannot read {path}: {err}");
            std::process::exit(2);
        }
    };
    match Json::parse(&payload) {
        Ok(snapshot) => snapshot,
        Err(err) => {
            eprintln!("perf_snapshot: cannot parse {path}: {err}");
            std::process::exit(2);
        }
    }
}

/// Prints every counter `--compare` gates, with the gate semantics — the
/// reference for debugging a failed comparison.
fn list_gates() {
    println!("perf_snapshot gated counters (per (model, test) entry; lower is better):");
    for (label, _) in GRADED {
        println!("  {label}");
    }
    println!("  (operational.memory.peak_accounted_bytes is present from v5 snapshots on;");
    println!("  against an older baseline the entry is skipped, like any missing metric)");
    println!("snapshot-level gate:");
    println!("  totals.wall_us_operational_parallel <= totals.wall_us_operational_sequential x threshold");
    println!(
        "  obs.library_wall_us_disarmed <= baseline disarmed wall x {OBS_OVERHEAD_THRESHOLD:.2}"
    );
    println!("    (baseline = its obs.library_wall_us_disarmed, or wall_us_axiomatic +");
    println!("    wall_us_operational_sequential for pre-v4 snapshots; only gated when");
    println!("    both snapshots measured the same workload — same test and model counts)");
    println!();
    println!("semantics: a counter regresses when candidate > baseline x threshold");
    println!("(default 1.25); improvements beyond 1/threshold are reported but never");
    println!("fail. --fail-threshold 0 switches to report-only mode: every difference");
    println!("is printed and the exit status stays 0. Wall times other than the");
    println!("parallel-vs-sequential gate are informational only (machine-dependent).");
}

/// The disarmed-instrumentation wall may regress by at most 2% before the
/// comparison fails — phase timers are contractually one relaxed load when
/// off, so any larger movement on the same workload is a broken disarm path,
/// not noise (the recorded wall is a best-of-three pass).
const OBS_OVERHEAD_THRESHOLD: f64 = 1.02;

/// A snapshot's disarmed suite wall: the `obs` section when present, else
/// the pre-v4 equivalent (axiomatic + sequential operational totals — the
/// same work `suite_pass` times).
fn disarmed_wall(snapshot: &Json) -> Option<u64> {
    lookup(snapshot, &["obs", "library_wall_us_disarmed"]).and_then(Json::as_u64).or_else(|| {
        let ax = lookup(snapshot, &["totals", "wall_us_axiomatic"]).and_then(Json::as_u64)?;
        let seq = lookup(snapshot, &["totals", "wall_us_operational_sequential"])
            .and_then(Json::as_u64)?;
        Some(ax + seq)
    })
}

/// The disarmed-overhead gate; pushes onto `regressions` when it fails.
fn gate_obs_overhead(old: &Json, new: &Json, regressions: &mut Vec<String>) {
    let Some(candidate) = lookup(new, &["obs", "library_wall_us_disarmed"]).and_then(Json::as_u64)
    else {
        println!("compare: obs gate skipped (candidate has no obs section)");
        return;
    };
    let same_workload = ["tests", "models"]
        .iter()
        .all(|key| old.get(key).is_some() && old.get(key) == new.get(key));
    if !same_workload {
        println!(
            "compare: obs gate skipped (snapshots measured different workloads — \
             disarmed walls are not comparable)"
        );
        return;
    }
    let Some(baseline) = disarmed_wall(old) else {
        println!("compare: obs gate skipped (baseline has no disarmed wall)");
        return;
    };
    #[allow(clippy::cast_precision_loss)]
    if candidate as f64 > baseline as f64 * OBS_OVERHEAD_THRESHOLD {
        regressions.push(format!(
            "obs.library_wall_us_disarmed: baseline {baseline}us, candidate {candidate}us \
             (beyond x{OBS_OVERHEAD_THRESHOLD:.2})"
        ));
        println!(
            "compare: REGRESSION obs.library_wall_us_disarmed: {candidate}us exceeds the \
             baseline {baseline}us beyond x{OBS_OVERHEAD_THRESHOLD:.2} — disarmed \
             instrumentation must stay free"
        );
    } else {
        println!(
            "compare: disarmed suite wall {candidate}us <= baseline {baseline}us x \
             {OBS_OVERHEAD_THRESHOLD:.2} (disarmed-overhead gate holds)"
        );
    }
}

/// Diffs two snapshots over the metrics they share; returns one description
/// per regression beyond `threshold` (empty = comparison passed).
/// `obs_gate: false` skips the absolute-wall instrumentation gate
/// (cross-machine comparisons).
fn compare_snapshots(old: &Json, new: &Json, threshold: f64, obs_gate: bool) -> Vec<String> {
    let old_schema = old.get("schema").and_then(Json::as_str).unwrap_or("?");
    let new_schema = new.get("schema").and_then(Json::as_str).unwrap_or("?");
    println!("compare: baseline schema {old_schema}, candidate schema {new_schema}");

    let new_entries = test_entries(new);
    let mut compared = 0usize;
    let mut regressions: Vec<String> = Vec::new();
    let mut improvements = 0usize;
    let mut total_old_wall = 0u64;
    let mut total_new_wall = 0u64;

    for (model, test, old_entry) in test_entries(old) {
        let Some((_, _, new_entry)) =
            new_entries.iter().find(|(m, t, _)| *m == model && *t == test)
        else {
            continue;
        };
        compared += 1;
        for (label, path) in GRADED {
            let (Some(old_value), Some(new_value)) = (
                lookup(old_entry, path).and_then(Json::as_u64),
                lookup(new_entry, path).and_then(Json::as_u64),
            ) else {
                continue;
            };
            #[allow(clippy::cast_precision_loss)]
            let factor = if old_value == 0 {
                if new_value == 0 {
                    1.0
                } else {
                    f64::INFINITY
                }
            } else {
                new_value as f64 / old_value as f64
            };
            if threshold > 0.0 && factor > threshold {
                regressions.push(format!(
                    "{model}/{test} {label}: baseline {old_value}, candidate {new_value} \
                     (x{factor:.2} > x{threshold:.2})"
                ));
                println!(
                    "compare: REGRESSION {model}/{test} {label}: {old_value} -> {new_value} \
                     (x{factor:.2})"
                );
            } else if threshold > 0.0 && factor < 1.0 / threshold {
                improvements += 1;
                println!(
                    "compare: improvement {model}/{test} {label}: {old_value} -> {new_value} \
                     (x{factor:.2})"
                );
            } else if threshold <= 0.0 && old_value != new_value {
                // Report-only mode: surface every difference, fail nothing.
                println!(
                    "compare: change {model}/{test} {label}: {old_value} -> {new_value} \
                     (x{factor:.2})"
                );
            }
        }
        for wall in ["wall_us_sequential", "wall_us"] {
            if let (Some(old_wall), Some(new_wall)) = (
                lookup(old_entry, &["operational", wall]).and_then(Json::as_u64),
                lookup(new_entry, &["operational", wall]).and_then(Json::as_u64),
            ) {
                total_old_wall += old_wall;
                total_new_wall += new_wall;
            }
        }
    }
    // The adaptive-parallelism gate: on the candidate snapshot the parallel
    // operational wall time must not exceed the sequential wall time beyond
    // the threshold factor. Wall times are noisy, hence the slack — but a
    // parallel mode that is systematically *slower* than sequential (the
    // pre-adaptive regression) trips this on every run.
    if threshold > 0.0 {
        if let (Some(seq), Some(par)) = (
            lookup(new, &["totals", "wall_us_operational_sequential"]).and_then(Json::as_u64),
            lookup(new, &["totals", "wall_us_operational_parallel"]).and_then(Json::as_u64),
        ) {
            #[allow(clippy::cast_precision_loss)]
            if par as f64 > seq as f64 * threshold {
                regressions.push(format!(
                    "totals.wall_us_operational_parallel: sequential {seq}us, parallel {par}us \
                     (beyond x{threshold:.2})"
                ));
                println!(
                    "compare: REGRESSION totals.wall_us_operational_parallel: {par}us exceeds \
                     the sequential {seq}us beyond x{threshold:.2} — adaptive sharding must \
                     keep parallel exploration no slower than sequential"
                );
            } else {
                println!(
                    "compare: parallel operational wall {par}us <= sequential {seq}us x \
                     {threshold:.2} (adaptive-parallelism gate holds)"
                );
            }
        }
        if obs_gate {
            gate_obs_overhead(old, new, &mut regressions);
        } else {
            println!("compare: obs gate skipped (--no-obs-gate)");
        }
    }
    println!(
        "compare: {compared} (model, test) pairs compared, {} regressions, \
         {improvements} improvements (threshold x{threshold:.2}); operational sequential wall \
         {total_old_wall}us -> {total_new_wall}us (informational)",
        regressions.len()
    );
    // A terminal summary naming every failed gate with both values, so a CI
    // log's last lines say exactly which counter moved and by how much
    // (`--list-gates` documents the full gate set).
    if !regressions.is_empty() {
        println!("compare: FAILED {} gate(s):", regressions.len());
        for line in &regressions {
            println!("  {line}");
        }
    }
    regressions
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if arg_flag(&args, "--list-gates") {
        list_gates();
        return;
    }
    let quick = arg_flag(&args, "--quick");
    let date = arg_value(&args, "--date").unwrap_or_else(today);
    let out_path = arg_value(&args, "--out").unwrap_or_else(|| format!("BENCH_{date}.json"));
    let compare = arg_value(&args, "--compare");
    let against = arg_value(&args, "--against");
    let threshold = arg_value(&args, "--fail-threshold")
        .map(|v| v.parse::<f64>().expect("--fail-threshold takes a number"))
        .unwrap_or(1.25);

    let obs_gate = !arg_flag(&args, "--no-obs-gate");

    if let (Some(old_path), Some(new_path)) = (&compare, &against) {
        // Pure diff mode: no benchmark run.
        let old = load_snapshot(old_path);
        let new = load_snapshot(new_path);
        let regressions = compare_snapshots(&old, &new, threshold, obs_gate);
        std::process::exit(i32::from(!regressions.is_empty()));
    }

    // At least two workers, so the sharded-frontier code path is always the
    // one measured and cross-checked (one worker falls back to sequential).
    let parallelism = arg_value(&args, "--parallelism")
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        })
        .max(2);

    let tests = match arg_value(&args, "--corpus") {
        Some(dir) => {
            // A `.litmus` corpus as the workload source instead of the
            // in-code library — the same files `gam run` consumes.
            let corpus = gam_frontend::Corpus::load(&dir).unwrap_or_else(|err| {
                eprintln!("perf_snapshot: {err}");
                std::process::exit(2);
            });
            eprintln!("perf_snapshot: corpus {dir} ({} tests)", corpus.tests.len());
            corpus.tests()
        }
        None if quick => library::paper_tests(),
        None => library::all_tests(),
    };
    eprintln!(
        "perf_snapshot: {} tests x {} models, explorer parallelism {parallelism}",
        tests.len(),
        ModelKind::ALL.len()
    );

    let started = Instant::now();
    let mut model_sections = Vec::new();
    let mut total_naive = 0u128;
    let mut total_enumerated = 0u128;
    let mut total_states = 0u64;
    let mut total_peak_accounted = 0u64;
    let mut total_components = 0u64;
    let mut total_interned_bytes = 0u64;
    let mut total_states_reduced = 0u64;
    let mut total_pruned = 0u64;
    let mut total_ax_wall = Duration::ZERO;
    let mut total_seq_wall = Duration::ZERO;
    let mut total_par_wall = Duration::ZERO;
    let mut total_reduced_wall = Duration::ZERO;
    let mut five_fold: BTreeSet<String> = BTreeSet::new();
    let mut gam_two_fold: BTreeSet<String> = BTreeSet::new();

    for model_kind in ModelKind::ALL {
        let mut rows = Vec::new();
        for test in &tests {
            match check_one(model_kind, test, parallelism) {
                Ok(row) => {
                    total_naive = total_naive.saturating_add(row.stats.assignments_naive);
                    total_enumerated =
                        total_enumerated.saturating_add(row.stats.assignments_enumerated.into());
                    total_ax_wall += row.axiomatic_wall;
                    if let Some(op) = &row.operational {
                        total_states += op.states_visited as u64;
                        total_peak_accounted += op.memory.peak_bytes as u64;
                        total_components += op.occupancy.distinct_components() as u64;
                        total_interned_bytes += op.occupancy.interned_bytes as u64;
                        total_states_reduced += op.sleep_canon.states_visited as u64;
                        total_pruned += op.sleep_canon.transitions_pruned as u64;
                        total_seq_wall += op.sequential_wall;
                        total_par_wall += op.parallel_wall;
                        total_reduced_wall += op.sleep_canon.wall;
                        if model_kind == ModelKind::Gam
                            && op.sleep_canon.states_visited * 2 <= op.states_visited
                        {
                            gam_two_fold.insert(row.test.clone());
                        }
                    }
                    if row.stats.pruning_factor().is_some_and(|f| f >= 5.0) {
                        five_fold.insert(row.test.clone());
                    }
                    rows.push(row_json(&row));
                }
                Err(message) => {
                    eprintln!("perf_snapshot: FAILED: {message}");
                    std::process::exit(1);
                }
            }
        }
        model_sections.push(Json::object([
            ("model", Json::from(model_kind.to_string())),
            ("tests", Json::Array(rows)),
        ]));
    }

    let overhead = match measure_obs_overhead(&tests) {
        Ok(overhead) => overhead,
        Err(message) => {
            eprintln!("perf_snapshot: FAILED: {message}");
            std::process::exit(1);
        }
    };

    let snapshot = Json::object([
        ("schema", Json::from("gam-perf-snapshot/v5")),
        ("date", Json::from(date.as_str())),
        ("quick", Json::from(quick)),
        ("explorer_parallelism", Json::UInt(parallelism as u64)),
        ("tests", Json::UInt(tests.len() as u64)),
        ("models", Json::UInt(ModelKind::ALL.len() as u64)),
        (
            "totals",
            Json::object([
                ("wall_us_axiomatic", micros(total_ax_wall)),
                ("wall_us_operational_sequential", micros(total_seq_wall)),
                ("wall_us_operational_parallel", micros(total_par_wall)),
                ("wall_us_operational_reduced", micros(total_reduced_wall)),
                ("assignments_naive", uint(total_naive)),
                ("assignments_enumerated", uint(total_enumerated)),
                ("assignments_pruned", uint(total_naive.saturating_sub(total_enumerated))),
                ("states_visited", Json::UInt(total_states)),
                ("peak_accounted_bytes", Json::UInt(total_peak_accounted)),
                ("arena_distinct_components", Json::UInt(total_components)),
                ("arena_interned_bytes", Json::UInt(total_interned_bytes)),
                ("states_visited_reduced", Json::UInt(total_states_reduced)),
                ("transitions_pruned", Json::UInt(total_pruned)),
                (
                    "tests_with_5x_pruning",
                    Json::array(five_fold.iter().map(|name| Json::from(name.as_str()))),
                ),
                (
                    "gam_tests_with_2x_state_reduction",
                    Json::array(gam_two_fold.iter().map(|name| Json::from(name.as_str()))),
                ),
            ]),
        ),
        (
            "obs",
            Json::object([
                ("library_wall_us_disarmed", micros(overhead.disarmed)),
                ("library_wall_us_armed", micros(overhead.armed)),
                ("armed_overhead_permille", Json::UInt(overhead.armed_overhead_permille())),
            ]),
        ),
        // Informational only: the OS view of the whole run's footprint.
        // Allocator- and platform-dependent, so it is never gated —
        // `peak_accounted_bytes` is the deterministic figure.
        (
            "resident_bytes",
            Json::UInt(
                gam_core::memory::process_resident_bytes()
                    .map_or(0, |b| u64::try_from(b).unwrap_or(u64::MAX)),
            ),
        ),
        ("per_model", Json::Array(model_sections)),
    ]);

    let payload = format!("{snapshot}\n");
    if let Err(err) = std::fs::write(&out_path, &payload) {
        eprintln!("perf_snapshot: cannot write {out_path}: {err}");
        std::process::exit(1);
    }

    let factor = if total_enumerated == 0 {
        1.0
    } else {
        #[allow(clippy::cast_precision_loss)]
        {
            total_naive as f64 / total_enumerated as f64
        }
    };
    #[allow(clippy::cast_precision_loss)]
    let reduction_factor = if total_states_reduced == 0 {
        1.0
    } else {
        total_states as f64 / total_states_reduced as f64
    };
    println!(
        "perf_snapshot: OK in {:?} — {} assignments enumerated (naive space {}, {:.1}x pruned), \
         {} tests with a >=5x pruning factor, {} states visited ({} reduced, {:.2}x, \
         {} transitions pruned, {} GAM tests with >=2x state reduction); snapshot written to \
         {out_path}",
        started.elapsed(),
        total_enumerated,
        total_naive,
        factor,
        five_fold.len(),
        total_states,
        total_states_reduced,
        reduction_factor,
        total_pruned,
        gam_two_fold.len()
    );
    println!(
        "perf_snapshot: obs suite wall {:?} disarmed, {:?} armed \
         (+{} permille; best of 3 passes each)",
        overhead.disarmed,
        overhead.armed,
        overhead.armed_overhead_permille()
    );
    println!(
        "perf_snapshot: accounted exploration peak {total_peak_accounted} bytes summed over \
         all (model, test) pairs"
    );

    if let Some(old_path) = compare {
        let old = load_snapshot(&old_path);
        let regressions = compare_snapshots(&old, &snapshot, threshold, obs_gate);
        if !regressions.is_empty() {
            std::process::exit(1);
        }
    }
}
