//! Reproduces Figure 18 of the paper: uPC of ARM, GAM0 and Alpha\* normalized
//! to GAM across the workload suite.
//!
//! Usage: `cargo run --release -p gam-bench --bin fig18 [-- --ops N --seed S]`
//! (default 200_000 micro-ops per workload, seed 42).

use gam_bench::{arg_value, render_fig18, run_suite};
use gam_uarch::workload::WorkloadSuite;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    eprintln!("{}", gam_bench::validate_models_via_engine());
    let ops: usize = arg_value(&args, "--ops").and_then(|v| v.parse().ok()).unwrap_or(200_000);
    let seed: u64 = arg_value(&args, "--seed").and_then(|v| v.parse().ok()).unwrap_or(42);

    let suite = WorkloadSuite::paper();
    eprintln!(
        "simulating {} workloads x 4 policies x {ops} micro-ops (seed {seed})...",
        suite.len()
    );
    let results = run_suite(&suite, ops, seed);
    print!("{}", render_fig18(&results));
}
