//! `promlint` — validates a Prometheus text exposition (format 0.0.4).
//!
//! Usage: `promlint FILE` (or `-` for stdin). Exits 0 when the document is
//! valid, 1 with one message per violation otherwise. CI scrapes
//! `GET /metrics?format=prometheus` from a live `gam serve` and runs the
//! scrape through this linter, so a malformed exposition fails the build
//! before it fails somebody's Prometheus.
//!
//! Checks:
//!
//! * every line is a `# HELP`/`# TYPE` comment, a sample, or blank;
//! * metric names match `[a-zA-Z_:][a-zA-Z0-9_:]*`;
//! * at most one `TYPE` per metric, `counter`/`gauge`/`summary`/
//!   `histogram`/`untyped`, and it precedes every sample of that metric;
//! * sample values parse as numbers;
//! * no duplicate `(name, labels)` sample;
//! * a `summary` metric has its `_sum` and `_count` series.

use std::io::Read as _;
use std::process::ExitCode;

fn name_ok(name: &str) -> bool {
    let mut chars = name.chars();
    chars.next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
        && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// The metric a sample series belongs to: `name_sum`/`name_count` of a
/// summary roll up to `name`.
fn base_metric<'a>(series: &'a str, typed: &[(String, String)]) -> &'a str {
    for suffix in ["_sum", "_count", "_bucket"] {
        if let Some(base) = series.strip_suffix(suffix) {
            if typed.iter().any(|(n, t)| n == base && (t == "summary" || t == "histogram")) {
                return base;
            }
        }
    }
    series
}

fn lint(text: &str) -> Vec<String> {
    let mut errors = Vec::new();
    let mut typed: Vec<(String, String)> = Vec::new();
    let mut seen_samples: Vec<String> = Vec::new();
    let mut sampled: Vec<String> = Vec::new();
    for (index, line) in text.lines().enumerate() {
        let lineno = index + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix("# ") {
            let mut words = comment.splitn(3, ' ');
            match (words.next(), words.next(), words.next()) {
                (Some("HELP"), Some(name), _) => {
                    if !name_ok(name) {
                        errors.push(format!("line {lineno}: bad HELP metric name `{name}`"));
                    }
                }
                (Some("TYPE"), Some(name), Some(kind)) => {
                    if !name_ok(name) {
                        errors.push(format!("line {lineno}: bad TYPE metric name `{name}`"));
                    }
                    if !matches!(kind, "counter" | "gauge" | "summary" | "histogram" | "untyped") {
                        errors.push(format!("line {lineno}: unknown TYPE `{kind}` for {name}"));
                    }
                    if typed.iter().any(|(n, _)| n == name) {
                        errors.push(format!("line {lineno}: duplicate TYPE for {name}"));
                    }
                    if sampled.iter().any(|s| s == name) {
                        errors.push(format!("line {lineno}: TYPE for {name} after its samples"));
                    }
                    typed.push((name.to_string(), kind.to_string()));
                }
                _ => errors.push(format!("line {lineno}: malformed comment `{line}`")),
            }
            continue;
        }
        if line.starts_with('#') {
            errors.push(format!("line {lineno}: comment must start with `# `"));
            continue;
        }
        // A sample: `name[{labels}] value [timestamp]`.
        let (series, rest) = match line.find('{') {
            Some(open) => {
                let Some(close) = line.rfind('}') else {
                    errors.push(format!("line {lineno}: unclosed label set"));
                    continue;
                };
                (&line[..open], line[close + 1..].trim_start())
            }
            None => match line.split_once(' ') {
                Some((series, rest)) => (series, rest),
                None => {
                    errors.push(format!("line {lineno}: sample without a value"));
                    continue;
                }
            },
        };
        if !name_ok(series) {
            errors.push(format!("line {lineno}: bad metric name `{series}`"));
        }
        let value = rest.split_whitespace().next().unwrap_or("");
        if value.parse::<f64>().is_err() {
            errors.push(format!("line {lineno}: unparseable sample value `{value}`"));
        }
        let id = {
            let labels = line.find('{').map_or("", |open| &line[open..=line.rfind('}').unwrap()]);
            format!("{series}{labels}")
        };
        if seen_samples.contains(&id) {
            errors.push(format!("line {lineno}: duplicate sample `{id}`"));
        }
        seen_samples.push(id);
        sampled.push(base_metric(series, &typed).to_string());
    }
    // Summaries must carry their aggregate series.
    for (name, kind) in &typed {
        if kind == "summary" {
            for suffix in ["_sum", "_count"] {
                let wanted = format!("{name}{suffix}");
                if !seen_samples.iter().any(|s| s == &wanted) {
                    errors.push(format!("summary {name} is missing its {wanted} series"));
                }
            }
        }
    }
    if seen_samples.is_empty() {
        errors.push("exposition has no samples".to_string());
    }
    errors
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(path) = args.first() else {
        eprintln!("usage: promlint FILE (use - for stdin)");
        return ExitCode::from(2);
    };
    let text = if path == "-" {
        let mut buffer = String::new();
        if let Err(err) = std::io::stdin().read_to_string(&mut buffer) {
            eprintln!("promlint: cannot read stdin: {err}");
            return ExitCode::from(2);
        }
        buffer
    } else {
        match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(err) => {
                eprintln!("promlint: cannot read {path}: {err}");
                return ExitCode::from(2);
            }
        }
    };
    let errors = lint(&text);
    if errors.is_empty() {
        println!("promlint: ok ({} lines)", text.lines().count());
        ExitCode::SUCCESS
    } else {
        for error in &errors {
            eprintln!("promlint: {error}");
        }
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::lint;

    #[test]
    fn a_valid_exposition_passes() {
        let text = "# HELP serve_checks_total total checks\n\
                    # TYPE serve_checks_total counter\n\
                    serve_checks_total 42\n\
                    # TYPE phase_parse_us summary\n\
                    phase_parse_us{quantile=\"0.5\"} 10\n\
                    phase_parse_us_sum 100\n\
                    phase_parse_us_count 7\n";
        assert_eq!(lint(text), Vec::<String>::new());
    }

    #[test]
    fn violations_are_caught() {
        assert!(lint("1bad_name 3\n").iter().any(|e| e.contains("bad metric name")));
        assert!(lint("x 1\nx 2\n").iter().any(|e| e.contains("duplicate sample")));
        assert!(lint("x nope\n").iter().any(|e| e.contains("unparseable")));
        assert!(lint("# TYPE x counter\n# TYPE x gauge\nx 1\n")
            .iter()
            .any(|e| e.contains("duplicate TYPE")));
        assert!(lint("x 1\n# TYPE x counter\n").iter().any(|e| e.contains("after its samples")));
        assert!(lint("# TYPE s summary\ns{quantile=\"0.5\"} 1\n")
            .iter()
            .any(|e| e.contains("missing its s_sum")));
        assert!(lint("").iter().any(|e| e.contains("no samples")));
    }
}
