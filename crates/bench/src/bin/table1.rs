//! Reproduces Table I of the paper: the simulated processor parameters,
//! plus the formal-model counterpart of each policy's same-address rule,
//! checked live through the engine facade.

use gam_core::ModelKind;
use gam_engine::Engine;
use gam_isa::litmus::library;
use gam_uarch::config::{MemoryModelPolicy, SimConfig};

fn main() {
    println!("Table I — processor parameters (Haswell-like, as in the paper)");
    println!("===============================================================");
    print!("{}", SimConfig::haswell_like(MemoryModelPolicy::Gam));
    println!();
    println!("Memory-model policies available for the evaluation:");
    for policy in MemoryModelPolicy::ALL {
        println!(
            "  {:<7} stalls={} kills={} load-load-forwarding={}",
            policy.to_string(),
            policy.stalls_same_address_loads(),
            policy.kills_same_address_loads(),
            policy.allows_load_load_forwarding()
        );
    }

    // Each timing policy implements the same-address load-load discipline of
    // one formal model; the engine facade shows the litmus-level consequence
    // (CoRR: may a thread re-read a stale value for the same address?).
    println!();
    println!("Formal counterpart (CoRR verdict through the engine facade):");
    let corr = library::corr();
    for kind in [ModelKind::Gam, ModelKind::GamArm, ModelKind::Gam0] {
        let verdict = Engine::axiomatic(kind).check(&corr).expect("corr is checkable");
        println!("  {:<8} stale same-address re-read: {verdict}", kind.to_string());
    }
}
