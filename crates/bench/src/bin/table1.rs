//! Reproduces Table I of the paper: the simulated processor parameters.

use gam_uarch::config::{MemoryModelPolicy, SimConfig};

fn main() {
    println!("Table I — processor parameters (Haswell-like, as in the paper)");
    println!("===============================================================");
    print!("{}", SimConfig::haswell_like(MemoryModelPolicy::Gam));
    println!();
    println!("Memory-model policies available for the evaluation:");
    for policy in MemoryModelPolicy::ALL {
        println!(
            "  {:<7} stalls={} kills={} load-load-forwarding={}",
            policy.to_string(),
            policy.stalls_same_address_loads(),
            policy.kills_same_address_loads(),
            policy.allows_load_load_forwarding()
        );
    }
}
