//! # gam-bench
//!
//! The paper-reproduction harness: shared code used by the `fig18`, `table1`,
//! `table2`, `table3` and `litmus-tables` binaries and by the Criterion
//! benches.
//!
//! The harness runs the synthetic workload suite
//! ([`gam_uarch::WorkloadSuite::paper`]) under the four memory-model policies
//! of Section V on identical traces, collects [`gam_uarch::SimStats`] per
//! (workload, policy) pair, and renders the same rows the paper reports:
//!
//! * Figure 18 — uPC of ARM, GAM0 and Alpha\* normalized to GAM, per
//!   workload, plus the average;
//! * Table II — kills and stalls caused by same-address load-load ordering,
//!   per 1K uOPs, average and maximum across workloads;
//! * Table III — load-load forwardings per 1K uOPs in Alpha\* and the
//!   reduction in L1 load misses over GAM, average and maximum.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::collections::BTreeMap;
use std::fmt::Write as _;

use gam_uarch::config::{MemoryModelPolicy, SimConfig};
use gam_uarch::workload::{WorkloadSpec, WorkloadSuite};
use gam_uarch::{SimStats, Simulator};

/// Simulation results of one workload under every policy.
#[derive(Debug, Clone)]
pub struct WorkloadResult {
    /// Workload name.
    pub workload: String,
    /// Statistics per policy.
    pub stats: BTreeMap<MemoryModelPolicy, SimStats>,
}

impl WorkloadResult {
    /// The statistics of one policy.
    ///
    /// # Panics
    ///
    /// Panics if the policy was not simulated.
    #[must_use]
    pub fn of(&self, policy: MemoryModelPolicy) -> &SimStats {
        &self.stats[&policy]
    }

    /// uPC of `policy` normalized to the GAM baseline (the y-axis of Figure 18).
    #[must_use]
    pub fn normalized_upc(&self, policy: MemoryModelPolicy) -> f64 {
        let baseline = self.of(MemoryModelPolicy::Gam).upc();
        if baseline == 0.0 {
            0.0
        } else {
            self.of(policy).upc() / baseline
        }
    }
}

/// Runs one workload under every policy on the same generated trace.
#[must_use]
pub fn run_workload(spec: &WorkloadSpec, ops: usize, seed: u64) -> WorkloadResult {
    let trace = spec.generate(ops, seed);
    let stats = MemoryModelPolicy::ALL
        .iter()
        .map(|&policy| {
            let simulator = Simulator::new(SimConfig::haswell_like(policy));
            (policy, simulator.run(&trace))
        })
        .collect();
    WorkloadResult { workload: spec.name().to_string(), stats }
}

/// Runs a whole suite; `ops` micro-ops per workload, one deterministic seed.
#[must_use]
pub fn run_suite(suite: &WorkloadSuite, ops: usize, seed: u64) -> Vec<WorkloadResult> {
    suite.specs().iter().map(|spec| run_workload(spec, ops, seed)).collect()
}

/// Average of a slice of f64 (0.0 for an empty slice).
#[must_use]
pub fn average(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Maximum of a slice of f64 (0.0 for an empty slice).
#[must_use]
pub fn maximum(values: &[f64]) -> f64 {
    values.iter().copied().fold(0.0, f64::max)
}

/// Renders Figure 18: normalized uPC of ARM, GAM0 and Alpha\* (GAM = 1.00).
#[must_use]
pub fn render_fig18(results: &[WorkloadResult]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 18 — uPC normalized to GAM (higher than 1.000 means faster than GAM)"
    );
    let _ = writeln!(
        out,
        "{:<22} {:>8} {:>8} {:>8} {:>10}",
        "benchmark", "ARM", "GAM0", "Alpha*", "GAM uPC"
    );
    let compared = [MemoryModelPolicy::Arm, MemoryModelPolicy::Gam0, MemoryModelPolicy::AlphaStar];
    let mut sums = [0.0f64; 3];
    for result in results {
        let _ = write!(out, "{:<22}", result.workload);
        for (i, &policy) in compared.iter().enumerate() {
            let normalized = result.normalized_upc(policy);
            sums[i] += normalized;
            let _ = write!(out, " {normalized:>8.4}");
        }
        let _ = writeln!(out, " {:>10.3}", result.of(MemoryModelPolicy::Gam).upc());
    }
    let n = results.len().max(1) as f64;
    let _ = write!(out, "{:<22}", "average");
    for sum in sums {
        let _ = write!(out, " {:>8.4}", sum / n);
    }
    let _ = writeln!(out);
    out
}

/// The aggregate rows of Table II.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table2 {
    /// Average kills per 1K uOPs under GAM.
    pub kills_gam_avg: f64,
    /// Maximum kills per 1K uOPs under GAM.
    pub kills_gam_max: f64,
    /// Average stalls per 1K uOPs under GAM.
    pub stalls_gam_avg: f64,
    /// Maximum stalls per 1K uOPs under GAM.
    pub stalls_gam_max: f64,
    /// Average stalls per 1K uOPs under ARM.
    pub stalls_arm_avg: f64,
    /// Maximum stalls per 1K uOPs under ARM.
    pub stalls_arm_max: f64,
}

/// Computes Table II from suite results.
#[must_use]
pub fn table2(results: &[WorkloadResult]) -> Table2 {
    let kills_gam: Vec<f64> =
        results.iter().map(|r| r.of(MemoryModelPolicy::Gam).kills_per_kilo_uop()).collect();
    let stalls_gam: Vec<f64> =
        results.iter().map(|r| r.of(MemoryModelPolicy::Gam).stalls_per_kilo_uop()).collect();
    let stalls_arm: Vec<f64> =
        results.iter().map(|r| r.of(MemoryModelPolicy::Arm).stalls_per_kilo_uop()).collect();
    Table2 {
        kills_gam_avg: average(&kills_gam),
        kills_gam_max: maximum(&kills_gam),
        stalls_gam_avg: average(&stalls_gam),
        stalls_gam_max: maximum(&stalls_gam),
        stalls_arm_avg: average(&stalls_arm),
        stalls_arm_max: maximum(&stalls_arm),
    }
}

/// Renders Table II in the paper's layout.
#[must_use]
pub fn render_table2(results: &[WorkloadResult]) -> String {
    let t = table2(results);
    let mut out = String::new();
    let _ = writeln!(out, "Table II — kills and stalls caused by same-address load-load ordering");
    let _ = writeln!(out, "{:<22} {:>10} {:>10}", "events per 1K uOPs", "Average", "Max");
    let _ =
        writeln!(out, "{:<22} {:>10.3} {:>10.3}", "Kills in GAM", t.kills_gam_avg, t.kills_gam_max);
    let _ = writeln!(
        out,
        "{:<22} {:>10.3} {:>10.3}",
        "Stalls in GAM", t.stalls_gam_avg, t.stalls_gam_max
    );
    let _ = writeln!(
        out,
        "{:<22} {:>10.3} {:>10.3}",
        "Stalls in ARM", t.stalls_arm_avg, t.stalls_arm_max
    );
    out
}

/// The aggregate rows of Table III.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table3 {
    /// Average load-load forwardings per 1K uOPs in Alpha\*.
    pub forwardings_avg: f64,
    /// Maximum load-load forwardings per 1K uOPs in Alpha\*.
    pub forwardings_max: f64,
    /// Average reduction in L1 load misses per 1K uOPs of Alpha\* over GAM.
    pub reduced_misses_avg: f64,
    /// Maximum reduction in L1 load misses per 1K uOPs of Alpha\* over GAM.
    pub reduced_misses_max: f64,
}

/// Computes Table III from suite results.
#[must_use]
pub fn table3(results: &[WorkloadResult]) -> Table3 {
    let forwardings: Vec<f64> = results
        .iter()
        .map(|r| r.of(MemoryModelPolicy::AlphaStar).load_load_forwardings_per_kilo_uop())
        .collect();
    let reduced: Vec<f64> = results
        .iter()
        .map(|r| {
            let gam = r.of(MemoryModelPolicy::Gam).l1_misses_per_kilo_uop();
            let alpha = r.of(MemoryModelPolicy::AlphaStar).l1_misses_per_kilo_uop();
            (gam - alpha).max(0.0)
        })
        .collect();
    Table3 {
        forwardings_avg: average(&forwardings),
        forwardings_max: maximum(&forwardings),
        reduced_misses_avg: average(&reduced),
        reduced_misses_max: maximum(&reduced),
    }
}

/// Renders Table III in the paper's layout.
#[must_use]
pub fn render_table3(results: &[WorkloadResult]) -> String {
    let t = table3(results);
    let mut out = String::new();
    let _ = writeln!(out, "Table III — effects of load-load forwardings in Alpha*");
    let _ = writeln!(out, "{:<36} {:>10} {:>10}", "events per 1K uOPs", "Average", "Max");
    let _ = writeln!(
        out,
        "{:<36} {:>10.3} {:>10.3}",
        "Load-load forwardings", t.forwardings_avg, t.forwardings_max
    );
    let _ = writeln!(
        out,
        "{:<36} {:>10.3} {:>10.3}",
        "Reduced L1 load misses over GAM", t.reduced_misses_avg, t.reduced_misses_max
    );
    out
}

/// Parses a `--flag value` style option from a raw argument list.
#[must_use]
pub fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).cloned()
}

/// Returns true if a bare `--flag` is present in a raw argument list.
#[must_use]
pub fn arg_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

/// Validates the formal-model foundation through the parallel engine facade
/// before a long simulation run: every paper litmus test under every model,
/// checked against the paper's expectation table.
///
/// Every experiment binary calls this first, so a regression in the memory
/// models can never hide behind hours of timing simulation.
///
/// # Panics
///
/// Panics if any verdict disagrees with the expectation table.
#[must_use]
pub fn validate_models_via_engine() -> String {
    let tests = gam_isa::litmus::library::paper_tests();
    let matrix =
        gam_verify::ComparisonMatrix::compute(&tests).expect("paper litmus tests are checkable");
    assert!(
        matrix.matches_expectations(),
        "litmus verdicts disagree with the paper: {:?}",
        matrix
            .mismatched_rows()
            .iter()
            .map(|row| (row.test.clone(), row.mismatches.clone()))
            .collect::<Vec<_>>()
    );
    format!(
        "model sanity (engine facade): {} litmus tests x {} models match the paper",
        tests.len(),
        gam_core::ModelKind::ALL.len()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_results() -> Vec<WorkloadResult> {
        run_suite(&WorkloadSuite::small(), 5_000, 7)
    }

    #[test]
    fn every_policy_is_simulated_per_workload() {
        let results = small_results();
        assert_eq!(results.len(), 3);
        for result in &results {
            assert_eq!(result.stats.len(), 4);
            for policy in MemoryModelPolicy::ALL {
                assert!(result.of(policy).committed_uops > 0);
            }
        }
    }

    #[test]
    fn normalized_upc_is_close_to_one() {
        for result in small_results() {
            for policy in
                [MemoryModelPolicy::Arm, MemoryModelPolicy::Gam0, MemoryModelPolicy::AlphaStar]
            {
                let normalized = result.normalized_upc(policy);
                assert!(
                    (normalized - 1.0).abs() < 0.10,
                    "{}: {policy} normalized uPC {normalized}",
                    result.workload
                );
            }
        }
    }

    #[test]
    fn rendered_tables_contain_their_rows() {
        let results = small_results();
        let fig18 = render_fig18(&results);
        assert!(fig18.contains("average"));
        assert!(fig18.contains("Alpha*"));
        let t2 = render_table2(&results);
        assert!(t2.contains("Kills in GAM"));
        assert!(t2.contains("Stalls in ARM"));
        let t3 = render_table3(&results);
        assert!(t3.contains("Load-load forwardings"));
        assert!(t3.contains("Reduced L1 load misses"));
    }

    #[test]
    fn table2_numbers_are_small_and_consistent() {
        let results = small_results();
        let t = table2(&results);
        assert!(t.kills_gam_avg <= t.kills_gam_max + 1e-12);
        assert!(t.stalls_gam_avg <= t.stalls_gam_max + 1e-12);
        assert!(t.kills_gam_avg < 10.0, "kills must stay rare: {}", t.kills_gam_avg);
    }

    #[test]
    fn helpers_average_and_maximum() {
        assert_eq!(average(&[]), 0.0);
        assert_eq!(maximum(&[]), 0.0);
        assert!((average(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
        assert!((maximum(&[1.0, 5.0, 3.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn arg_value_parses_flags() {
        let args: Vec<String> = ["prog", "--ops", "1000", "--seed", "9", "--json"]
            .iter()
            .map(ToString::to_string)
            .collect();
        assert_eq!(arg_value(&args, "--ops"), Some("1000".into()));
        assert_eq!(arg_value(&args, "--seed"), Some("9".into()));
        assert_eq!(arg_value(&args, "--missing"), None);
        assert!(arg_flag(&args, "--json"));
        assert!(!arg_flag(&args, "--quiet"));
    }

    #[test]
    fn model_validation_passes_and_summarizes() {
        let summary = validate_models_via_engine();
        assert!(summary.contains("match the paper"));
    }
}
