//! Micro-op traces.
//!
//! The timing simulator is trace-driven: architectural values are irrelevant
//! for timing, so a workload is a sequence of [`MicroOp`]s carrying only what
//! the pipeline needs — the operation class, up to two register dependencies
//! (expressed as backward distances to the producing micro-ops), a memory
//! address for loads and stores, and a misprediction flag for branches.

use std::fmt;

/// The class of a micro-op, which determines the functional unit it needs and
/// its execution latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum UopKind {
    /// Simple integer ALU operation (1 cycle).
    IntAlu,
    /// Integer multiply (3 cycles).
    IntMul,
    /// Integer divide (20 cycles, unpipelined).
    IntDiv,
    /// Floating-point add/compare (3 cycles).
    FpAlu,
    /// Floating-point multiply (5 cycles).
    FpMul,
    /// Floating-point divide / square root (15 cycles, unpipelined).
    FpDiv,
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// Conditional branch (1 cycle).
    Branch,
}

impl UopKind {
    /// Execution latency in cycles (memory operations add cache latency on top
    /// of address generation).
    #[must_use]
    pub fn latency(self) -> u64 {
        match self {
            UopKind::IntAlu | UopKind::Branch => 1,
            UopKind::IntMul | UopKind::FpAlu => 3,
            UopKind::FpMul => 5,
            UopKind::FpDiv => 15,
            UopKind::IntDiv => 20,
            UopKind::Load | UopKind::Store => 1,
        }
    }

    /// Returns true for loads and stores.
    #[must_use]
    pub fn is_memory(self) -> bool {
        matches!(self, UopKind::Load | UopKind::Store)
    }
}

impl fmt::Display for UopKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            UopKind::IntAlu => "int-alu",
            UopKind::IntMul => "int-mul",
            UopKind::IntDiv => "int-div",
            UopKind::FpAlu => "fp-alu",
            UopKind::FpMul => "fp-mul",
            UopKind::FpDiv => "fp-div",
            UopKind::Load => "load",
            UopKind::Store => "store",
            UopKind::Branch => "branch",
        };
        f.write_str(name)
    }
}

/// One micro-op of a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MicroOp {
    /// Operation class.
    pub kind: UopKind,
    /// First register dependency, as the distance (in micro-ops) back to the
    /// producer: `Some(1)` depends on the immediately preceding micro-op.
    pub dep1: Option<u32>,
    /// Second register dependency.
    pub dep2: Option<u32>,
    /// Memory address (loads and stores; ignored otherwise).
    pub addr: u64,
    /// Whether this branch is mispredicted (branches only).
    pub mispredicted: bool,
}

impl MicroOp {
    /// A micro-op with no dependencies and no address.
    #[must_use]
    pub fn simple(kind: UopKind) -> Self {
        MicroOp { kind, dep1: None, dep2: None, addr: 0, mispredicted: false }
    }

    /// A load from `addr` depending on the micro-op `dep` positions back (if any).
    #[must_use]
    pub fn load(addr: u64, dep: Option<u32>) -> Self {
        MicroOp { kind: UopKind::Load, dep1: dep, dep2: None, addr, mispredicted: false }
    }

    /// A store to `addr` whose *data* is produced by the micro-op `data_dep`
    /// positions back (if any). The address itself is constant (`dep1` is the
    /// address dependency and stays empty); use
    /// [`MicroOp::store_with_addr_dep`] for stores with computed addresses.
    #[must_use]
    pub fn store(addr: u64, data_dep: Option<u32>) -> Self {
        MicroOp { kind: UopKind::Store, dep1: None, dep2: data_dep, addr, mispredicted: false }
    }

    /// A store whose address is produced by the micro-op `addr_dep` positions
    /// back and whose data is produced by the micro-op `data_dep` positions
    /// back.
    #[must_use]
    pub fn store_with_addr_dep(addr: u64, addr_dep: Option<u32>, data_dep: Option<u32>) -> Self {
        MicroOp { kind: UopKind::Store, dep1: addr_dep, dep2: data_dep, addr, mispredicted: false }
    }

    /// A branch with the given misprediction flag.
    #[must_use]
    pub fn branch(mispredicted: bool) -> Self {
        MicroOp { kind: UopKind::Branch, dep1: Some(1), dep2: None, addr: 0, mispredicted }
    }

    /// Returns true for loads and stores.
    #[must_use]
    pub fn is_memory(&self) -> bool {
        self.kind.is_memory()
    }
}

/// A micro-op trace together with its generating workload's name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    name: String,
    ops: Vec<MicroOp>,
}

impl Trace {
    /// Wraps a micro-op sequence.
    #[must_use]
    pub fn new(name: impl Into<String>, ops: Vec<MicroOp>) -> Self {
        Trace { name: name.into(), ops }
    }

    /// The workload name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The micro-ops in program order.
    #[must_use]
    pub fn ops(&self) -> &[MicroOp] {
        &self.ops
    }

    /// Number of micro-ops.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Returns true if the trace is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Fraction of micro-ops that are loads.
    #[must_use]
    pub fn load_fraction(&self) -> f64 {
        if self.ops.is_empty() {
            return 0.0;
        }
        self.ops.iter().filter(|op| op.kind == UopKind::Load).count() as f64 / self.ops.len() as f64
    }

    /// Fraction of micro-ops that are stores.
    #[must_use]
    pub fn store_fraction(&self) -> f64 {
        if self.ops.is_empty() {
            return 0.0;
        }
        self.ops.iter().filter(|op| op.kind == UopKind::Store).count() as f64
            / self.ops.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latencies_are_ordered_sensibly() {
        assert!(UopKind::IntAlu.latency() < UopKind::IntMul.latency());
        assert!(UopKind::IntMul.latency() < UopKind::IntDiv.latency());
        assert!(UopKind::FpMul.latency() < UopKind::FpDiv.latency());
        assert_eq!(UopKind::Branch.latency(), 1);
    }

    #[test]
    fn memory_classification() {
        assert!(UopKind::Load.is_memory());
        assert!(UopKind::Store.is_memory());
        assert!(!UopKind::IntAlu.is_memory());
        assert!(MicroOp::load(64, None).is_memory());
        assert!(!MicroOp::simple(UopKind::FpAlu).is_memory());
    }

    #[test]
    fn constructors_populate_fields() {
        let load = MicroOp::load(0x100, Some(2));
        assert_eq!(load.addr, 0x100);
        assert_eq!(load.dep1, Some(2));
        let store = MicroOp::store(0x40, Some(3));
        assert_eq!(store.kind, UopKind::Store);
        assert_eq!(store.dep1, None, "a plain store has a constant address");
        assert_eq!(store.dep2, Some(3), "the data dependency lives in dep2");
        let indexed = MicroOp::store_with_addr_dep(0x40, Some(1), Some(2));
        assert_eq!(indexed.dep1, Some(1));
        assert_eq!(indexed.dep2, Some(2));
        let branch = MicroOp::branch(true);
        assert!(branch.mispredicted);
        assert_eq!(branch.kind, UopKind::Branch);
    }

    #[test]
    fn trace_statistics() {
        let ops = vec![
            MicroOp::load(0, None),
            MicroOp::simple(UopKind::IntAlu),
            MicroOp::store(64, Some(1)),
            MicroOp::load(128, None),
        ];
        let trace = Trace::new("demo", ops);
        assert_eq!(trace.len(), 4);
        assert!(!trace.is_empty());
        assert_eq!(trace.name(), "demo");
        assert!((trace.load_fraction() - 0.5).abs() < 1e-9);
        assert!((trace.store_fraction() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn empty_trace_fractions_are_zero() {
        let trace = Trace::new("empty", vec![]);
        assert_eq!(trace.load_fraction(), 0.0);
        assert_eq!(trace.store_fraction(), 0.0);
        assert!(trace.is_empty());
    }

    #[test]
    fn kind_display() {
        assert_eq!(UopKind::Load.to_string(), "load");
        assert_eq!(UopKind::FpDiv.to_string(), "fp-div");
    }
}
