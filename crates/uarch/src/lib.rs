//! # gam-uarch
//!
//! A trace-driven out-of-order superscalar processor timing simulator with a
//! three-level write-back cache hierarchy, used to reproduce the performance
//! evaluation of *Constructing a Weak Memory Model* (Section V).
//!
//! The paper modifies the GEM5 O3 CPU model and runs SPEC CPU2006; neither is
//! available here, so this crate provides the closest synthetic equivalent:
//!
//! * [`config`] — the processor and cache parameters of Table I
//!   ([`config::SimConfig::haswell_like`]) and the four memory-model
//!   policies the paper compares: GAM (same-address load-load kills and
//!   stalls), ARM (stalls only), GAM0 (no same-address load constraints) and
//!   Alpha\* (load-load data forwarding);
//! * [`trace`] — micro-op traces: typed operations with register
//!   dependencies, memory addresses and branch-misprediction flags;
//! * [`workload`] — parameterised synthetic workload generators (pointer
//!   chasing, streaming, strided, random access, ALU-heavy, branchy,
//!   store-heavy, same-address-reuse-heavy) and a named 20-input suite that
//!   plays the role of the SPEC reference inputs in Figure 18;
//! * [`cache`] — a set-associative, LRU, inclusive three-level hierarchy with
//!   MSHR-limited miss concurrency;
//! * [`pipeline`] — the out-of-order core: fetch/dispatch, reservation
//!   station, ROB, load/store queues, functional-unit pools, in-order commit,
//!   branch-misprediction redirect, memory-order squashes, and the
//!   memory-model policy hooks (kills, stalls, load-load forwarding);
//! * [`stats`] — per-run statistics: uPC, kills and stalls per 1K uOPs,
//!   load-load forwardings, cache hit/miss counts — everything Figure 18 and
//!   Tables II/III report.
//!
//! # Example
//!
//! ```
//! use gam_uarch::config::{MemoryModelPolicy, SimConfig};
//! use gam_uarch::workload::WorkloadSpec;
//! use gam_uarch::Simulator;
//!
//! let trace = WorkloadSpec::streaming("demo", 64 * 1024, 8).generate(20_000, 42);
//! let config = SimConfig::haswell_like(MemoryModelPolicy::Gam);
//! let stats = Simulator::new(config).run(&trace);
//! assert!(stats.upc() > 0.5, "a streaming workload should sustain reasonable throughput");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod config;
pub mod pipeline;
pub mod stats;
pub mod trace;
pub mod workload;

pub use config::{CacheConfig, CoreConfig, MemoryModelPolicy, SimConfig};
pub use pipeline::Simulator;
pub use stats::SimStats;
pub use trace::{MicroOp, Trace, UopKind};
pub use workload::{WorkloadSpec, WorkloadSuite};
