//! A three-level, set-associative, inclusive, write-back cache hierarchy.
//!
//! The model is deliberately simple but structurally faithful: every level is
//! a set-associative array with LRU replacement, a fixed hit latency and a
//! bounded number of MSHRs (outstanding misses). A demand access walks down
//! the hierarchy, fills every level on the way back and reports both the
//! total latency and whether it hit in the L1 (the statistic Table III
//! needs). MSHR pressure is modelled by delaying an access when all MSHRs of
//! a level are still busy with earlier misses.

use crate::config::{CacheConfig, CacheHierarchyConfig};

/// Which level of the hierarchy served an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HitLevel {
    /// Served by the L1 data cache.
    L1,
    /// Served by the unified L2.
    L2,
    /// Served by the last-level cache.
    L3,
    /// Served by main memory.
    Memory,
}

/// The outcome of one cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheAccess {
    /// Total latency of the access in cycles (including MSHR waiting).
    pub latency: u64,
    /// The level that provided the data.
    pub level: HitLevel,
}

impl CacheAccess {
    /// Returns true if the access hit in the L1 data cache.
    #[must_use]
    pub fn l1_hit(&self) -> bool {
        self.level == HitLevel::L1
    }
}

/// One set-associative cache level.
#[derive(Debug, Clone)]
struct CacheLevel {
    config: CacheConfig,
    /// `tags[set][way]` — the line tag, or `None` when invalid.
    tags: Vec<Vec<Option<u64>>>,
    /// LRU stamps parallel to `tags` (larger = more recently used).
    stamps: Vec<Vec<u64>>,
    stamp_counter: u64,
    /// Cycle at which each MSHR becomes free again.
    mshr_free_at: Vec<u64>,
    hits: u64,
    misses: u64,
}

impl CacheLevel {
    fn new(config: CacheConfig) -> Self {
        let sets = config.num_sets();
        CacheLevel {
            config,
            tags: vec![vec![None; config.ways]; sets],
            stamps: vec![vec![0; config.ways]; sets],
            stamp_counter: 0,
            mshr_free_at: vec![0; config.mshrs],
            hits: 0,
            misses: 0,
        }
    }

    fn set_and_tag(&self, addr: u64) -> (usize, u64) {
        let line = addr / self.config.line_bytes as u64;
        let set = (line % self.tags.len() as u64) as usize;
        (set, line)
    }

    /// Looks up `addr`, updating LRU state. Returns true on hit.
    fn lookup(&mut self, addr: u64) -> bool {
        let (set, tag) = self.set_and_tag(addr);
        self.stamp_counter += 1;
        if let Some(way) = self.tags[set].iter().position(|t| *t == Some(tag)) {
            self.stamps[set][way] = self.stamp_counter;
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            false
        }
    }

    /// Checks for a hit without touching LRU state or statistics.
    fn peek(&self, addr: u64) -> bool {
        let (set, tag) = self.set_and_tag(addr);
        self.tags[set].contains(&Some(tag))
    }

    /// Fills `addr` into the level, evicting the LRU way.
    fn fill(&mut self, addr: u64) {
        let (set, tag) = self.set_and_tag(addr);
        if self.tags[set].contains(&Some(tag)) {
            return;
        }
        self.stamp_counter += 1;
        let victim = (0..self.config.ways)
            .min_by_key(|&way| self.stamps[set][way])
            .expect("at least one way");
        self.tags[set][victim] = Some(tag);
        self.stamps[set][victim] = self.stamp_counter;
    }

    /// Reserves an MSHR for a miss issued at `now`, returning the extra delay
    /// incurred if all MSHRs are busy, and marks it busy until
    /// `now + delay + occupancy`.
    fn reserve_mshr(&mut self, now: u64, occupancy: u64) -> u64 {
        let (slot, free_at) = self
            .mshr_free_at
            .iter()
            .copied()
            .enumerate()
            .min_by_key(|(_, free_at)| *free_at)
            .expect("at least one MSHR");
        let delay = free_at.saturating_sub(now);
        self.mshr_free_at[slot] = now + delay + occupancy;
        delay
    }
}

/// The full data-cache hierarchy.
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    l1: CacheLevel,
    l2: CacheLevel,
    l3: CacheLevel,
    memory_latency: u64,
}

impl CacheHierarchy {
    /// Builds an empty (cold) hierarchy.
    #[must_use]
    pub fn new(config: &CacheHierarchyConfig) -> Self {
        CacheHierarchy {
            l1: CacheLevel::new(config.l1d),
            l2: CacheLevel::new(config.l2),
            l3: CacheLevel::new(config.l3),
            memory_latency: config.memory_latency,
        }
    }

    /// Performs a demand access at time `now` and returns its latency and
    /// serving level. Lines are filled into every level on the way back
    /// (inclusive hierarchy).
    pub fn access(&mut self, addr: u64, now: u64) -> CacheAccess {
        if self.l1.lookup(addr) {
            return CacheAccess { latency: self.l1.config.hit_latency, level: HitLevel::L1 };
        }
        let l1_lat = self.l1.config.hit_latency;
        let l1_mshr_delay = self.l1.reserve_mshr(now, self.l2.config.hit_latency);

        if self.l2.lookup(addr) {
            self.l1.fill(addr);
            let latency = l1_lat + l1_mshr_delay + self.l2.config.hit_latency;
            return CacheAccess { latency, level: HitLevel::L2 };
        }
        let l2_mshr_delay = self.l2.reserve_mshr(now, self.l3.config.hit_latency);

        if self.l3.lookup(addr) {
            self.l2.fill(addr);
            self.l1.fill(addr);
            let latency = l1_lat
                + l1_mshr_delay
                + self.l2.config.hit_latency
                + l2_mshr_delay
                + self.l3.config.hit_latency;
            return CacheAccess { latency, level: HitLevel::L3 };
        }
        let l3_mshr_delay = self.l3.reserve_mshr(now, self.memory_latency);

        self.l3.fill(addr);
        self.l2.fill(addr);
        self.l1.fill(addr);
        let latency = l1_lat
            + l1_mshr_delay
            + self.l2.config.hit_latency
            + l2_mshr_delay
            + self.l3.config.hit_latency
            + l3_mshr_delay
            + self.memory_latency;
        CacheAccess { latency, level: HitLevel::Memory }
    }

    /// Would the access hit in L1? Does not update any state; used by the
    /// Alpha\* load-load-forwarding accounting (Table III's "reduced L1 load
    /// misses" column).
    #[must_use]
    pub fn peek_l1(&self, addr: u64) -> bool {
        self.l1.peek(addr)
    }

    /// L1 data-cache hits so far.
    #[must_use]
    pub fn l1_hits(&self) -> u64 {
        self.l1.hits
    }

    /// L1 data-cache misses so far.
    #[must_use]
    pub fn l1_misses(&self) -> u64 {
        self.l1.misses
    }

    /// L2 misses so far.
    #[must_use]
    pub fn l2_misses(&self) -> u64 {
        self.l2.misses
    }

    /// L3 misses so far.
    #[must_use]
    pub fn l3_misses(&self) -> u64 {
        self.l3.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hierarchy() -> CacheHierarchy {
        CacheHierarchy::new(&CacheHierarchyConfig::paper())
    }

    #[test]
    fn first_access_misses_everywhere_then_hits() {
        let mut caches = hierarchy();
        let first = caches.access(0x1000, 0);
        assert_eq!(first.level, HitLevel::Memory);
        assert!(first.latency >= 200);
        let second = caches.access(0x1000, first.latency);
        assert_eq!(second.level, HitLevel::L1);
        assert_eq!(second.latency, 4);
        assert!(second.l1_hit());
        assert!(!first.l1_hit());
    }

    #[test]
    fn same_line_accesses_hit() {
        let mut caches = hierarchy();
        caches.access(0x2000, 0);
        // Any address within the same 64-byte line hits in L1.
        let hit = caches.access(0x2038, 10);
        assert_eq!(hit.level, HitLevel::L1);
    }

    #[test]
    fn capacity_eviction_falls_back_to_l2() {
        let config = CacheHierarchyConfig::paper();
        let mut caches = CacheHierarchy::new(&config);
        // Touch enough distinct lines to overflow the 32 KiB L1 (512 lines).
        let lines = (config.l1d.size_bytes / config.l1d.line_bytes) as u64;
        for i in 0..(lines * 2) {
            caches.access(i * 64, i * 10);
        }
        // The first line was evicted from L1 but still lives in L2.
        let again = caches.access(0, 1_000_000);
        assert_eq!(again.level, HitLevel::L2);
    }

    #[test]
    fn peek_does_not_change_state() {
        let mut caches = hierarchy();
        assert!(!caches.peek_l1(0x3000));
        let misses_before = caches.l1_misses();
        assert!(!caches.peek_l1(0x3000));
        assert_eq!(caches.l1_misses(), misses_before, "peek must not count as an access");
        caches.access(0x3000, 0);
        assert!(caches.peek_l1(0x3000));
    }

    #[test]
    fn statistics_accumulate() {
        let mut caches = hierarchy();
        caches.access(0x100, 0);
        caches.access(0x100, 10);
        caches.access(0x100, 20);
        assert_eq!(caches.l1_misses(), 1);
        assert_eq!(caches.l1_hits(), 2);
        assert_eq!(caches.l2_misses(), 1);
        assert_eq!(caches.l3_misses(), 1);
    }

    #[test]
    fn mshr_pressure_adds_latency() {
        let config = CacheHierarchyConfig::tiny();
        let mut caches = CacheHierarchy::new(&config);
        // Issue more simultaneous misses than the L1 has MSHRs (4); the later
        // ones must queue and observe extra latency.
        let mut latencies = Vec::new();
        for i in 0..8u64 {
            latencies.push(caches.access(0x10_000 + i * 4096, 0).latency);
        }
        assert!(
            latencies[7] > latencies[0],
            "the eighth concurrent miss must wait for an MSHR ({latencies:?})"
        );
    }

    #[test]
    fn lru_keeps_the_recently_used_line() {
        let config = CacheHierarchyConfig::tiny();
        let mut caches = CacheHierarchy::new(&config);
        // The tiny L1 is 2-way with 16 sets; three lines mapping to the same
        // set evict the least recently used one.
        let set_stride = (config.l1d.num_sets() * config.l1d.line_bytes) as u64;
        let a = 0;
        let b = set_stride;
        let c = 2 * set_stride;
        caches.access(a, 0);
        caches.access(b, 10);
        caches.access(a, 20); // refresh a
        caches.access(c, 30); // evicts b
        assert!(caches.peek_l1(a));
        assert!(!caches.peek_l1(b));
        assert!(caches.peek_l1(c));
    }
}
