//! Per-run simulation statistics.
//!
//! [`SimStats`] carries every quantity the paper's evaluation reports:
//! micro-ops per cycle (Figure 18), same-address load-load kills and stalls
//! per thousand micro-ops (Table II), load-load forwardings and the change in
//! L1 load misses (Table III), plus general pipeline and cache counters
//! useful for sanity-checking the simulator.

use std::fmt;

/// Statistics of one simulation run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimStats {
    /// Workload name.
    pub workload: String,
    /// Memory-model policy name.
    pub policy: String,
    /// Cycles simulated.
    pub cycles: u64,
    /// Micro-ops committed.
    pub committed_uops: u64,
    /// Loads committed.
    pub committed_loads: u64,
    /// Stores committed.
    pub committed_stores: u64,
    /// Branch mispredictions taken (front-end redirects).
    pub branch_mispredicts: u64,
    /// Squashes caused by the same-address load-load kill of constraint
    /// SALdLd (the "kills" row of Table II).
    pub same_addr_load_kills: u64,
    /// Issue-time stalls caused by an older unissued same-address load
    /// (the "stalls" row of Table II).
    pub same_addr_load_stalls: u64,
    /// Squashes caused by a store resolving its address after a younger
    /// same-address load already executed (memory-order violations; present
    /// under every policy).
    pub store_order_squashes: u64,
    /// Load-to-load data forwardings performed (Alpha\* only; Table III).
    pub load_load_forwardings: u64,
    /// Among the load-load forwardings, how many would have missed in the L1
    /// had they accessed the cache (Table III's "reduced L1 load misses").
    pub forwardings_that_hid_l1_misses: u64,
    /// Loads that forwarded their value from an older store in the store queue.
    pub store_to_load_forwardings: u64,
    /// L1 data-cache hits.
    pub l1d_hits: u64,
    /// L1 data-cache misses.
    pub l1d_misses: u64,
    /// L2 misses.
    pub l2_misses: u64,
    /// L3 misses.
    pub l3_misses: u64,
}

impl SimStats {
    /// Micro-ops per cycle (the y-axis of Figure 18).
    #[must_use]
    pub fn upc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed_uops as f64 / self.cycles as f64
        }
    }

    /// Events per thousand committed micro-ops.
    #[must_use]
    pub fn per_kilo_uop(&self, events: u64) -> f64 {
        if self.committed_uops == 0 {
            0.0
        } else {
            events as f64 * 1000.0 / self.committed_uops as f64
        }
    }

    /// Same-address load-load kills per 1K uOPs (Table II).
    #[must_use]
    pub fn kills_per_kilo_uop(&self) -> f64 {
        self.per_kilo_uop(self.same_addr_load_kills)
    }

    /// Same-address load-load stalls per 1K uOPs (Table II).
    #[must_use]
    pub fn stalls_per_kilo_uop(&self) -> f64 {
        self.per_kilo_uop(self.same_addr_load_stalls)
    }

    /// Load-load forwardings per 1K uOPs (Table III).
    #[must_use]
    pub fn load_load_forwardings_per_kilo_uop(&self) -> f64 {
        self.per_kilo_uop(self.load_load_forwardings)
    }

    /// L1 load misses per 1K uOPs.
    #[must_use]
    pub fn l1_misses_per_kilo_uop(&self) -> f64 {
        self.per_kilo_uop(self.l1d_misses)
    }

    /// L1 data-cache miss rate over all L1 accesses.
    #[must_use]
    pub fn l1_miss_rate(&self) -> f64 {
        let total = self.l1d_hits + self.l1d_misses;
        if total == 0 {
            0.0
        } else {
            self.l1d_misses as f64 / total as f64
        }
    }
}

impl fmt::Display for SimStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} under {}:", self.workload, self.policy)?;
        writeln!(
            f,
            "  {} uops in {} cycles  (uPC {:.3})",
            self.committed_uops,
            self.cycles,
            self.upc()
        )?;
        writeln!(
            f,
            "  kills/1K {:.3}   stalls/1K {:.3}   ld-ld fwd/1K {:.3}",
            self.kills_per_kilo_uop(),
            self.stalls_per_kilo_uop(),
            self.load_load_forwardings_per_kilo_uop()
        )?;
        writeln!(
            f,
            "  L1D miss rate {:.2}%   store->load fwd {}   mispredicts {}",
            self.l1_miss_rate() * 100.0,
            self.store_to_load_forwardings,
            self.branch_mispredicts
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SimStats {
        SimStats {
            workload: "demo".into(),
            policy: "GAM".into(),
            cycles: 1_000,
            committed_uops: 2_000,
            committed_loads: 500,
            committed_stores: 200,
            same_addr_load_kills: 4,
            same_addr_load_stalls: 6,
            load_load_forwardings: 44,
            l1d_hits: 450,
            l1d_misses: 50,
            ..SimStats::default()
        }
    }

    #[test]
    fn upc_and_per_kilo_metrics() {
        let stats = sample();
        assert!((stats.upc() - 2.0).abs() < 1e-12);
        assert!((stats.kills_per_kilo_uop() - 2.0).abs() < 1e-12);
        assert!((stats.stalls_per_kilo_uop() - 3.0).abs() < 1e-12);
        assert!((stats.load_load_forwardings_per_kilo_uop() - 22.0).abs() < 1e-12);
        assert!((stats.l1_misses_per_kilo_uop() - 25.0).abs() < 1e-12);
        assert!((stats.l1_miss_rate() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn zero_denominators_do_not_panic() {
        let stats = SimStats::default();
        assert_eq!(stats.upc(), 0.0);
        assert_eq!(stats.kills_per_kilo_uop(), 0.0);
        assert_eq!(stats.l1_miss_rate(), 0.0);
    }

    #[test]
    fn display_contains_headline_numbers() {
        let text = sample().to_string();
        assert!(text.contains("uPC 2.000"));
        assert!(text.contains("demo under GAM"));
    }
}
