//! Synthetic workload generators — the SPEC CPU2006 stand-in.
//!
//! The paper's evaluation (Section V) runs the 55 SPEC CPU2006 reference
//! inputs; its conclusions are statistical: same-address load pairs close
//! enough together to trigger kills or stalls are rare, and load-load
//! forwarding almost never hides an L1 miss. The generators in this module
//! expose exactly the knobs that drive those statistics — memory footprint,
//! address pattern, dependency density, same-address reuse, store/load
//! aliasing, branch behaviour — and [`WorkloadSuite::paper`] instantiates a
//! 20-input suite spanning the same behavioural range (pointer-chasing,
//! streaming, random access, compute-bound, branchy, store-heavy, …).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::trace::{MicroOp, Trace, UopKind};

/// Base virtual address of the synthetic data segment.
const DATA_BASE: u64 = 0x1000_0000;

/// How load and store addresses walk through the footprint.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AddressPattern {
    /// Sequential streaming with the given stride in bytes.
    Sequential {
        /// Stride between consecutive accesses, in bytes.
        stride: u64,
    },
    /// Uniformly random addresses within the footprint.
    Random,
    /// Pointer chasing: every load's address depends on the previous load.
    PointerChase,
}

/// Tunable parameters of a synthetic workload.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadParams {
    /// Fraction of micro-ops that are loads.
    pub load_frac: f64,
    /// Fraction of micro-ops that are stores.
    pub store_frac: f64,
    /// Fraction of micro-ops that are branches.
    pub branch_frac: f64,
    /// Fraction of branches that are mispredicted.
    pub mispredict_rate: f64,
    /// Fraction of non-memory, non-branch micro-ops that are floating point.
    pub fp_frac: f64,
    /// Fraction of ALU micro-ops that are long-latency (multiply / divide).
    pub long_latency_frac: f64,
    /// Memory footprint in bytes.
    pub footprint_bytes: u64,
    /// Address pattern of loads and stores.
    pub pattern: AddressPattern,
    /// Probability that a micro-op depends on its immediate predecessor.
    pub dep_chain: f64,
    /// Probability that a load's address depends on the most recent load.
    pub load_dep_frac: f64,
    /// Probability that a load re-reads the exact address of a recent load
    /// (the trigger for the same-address load-load machinery of Section V).
    pub same_addr_load_frac: f64,
    /// Probability that a load aliases a recent store's address (store-to-load
    /// forwarding and memory-order squashes).
    pub store_load_alias_frac: f64,
}

impl Default for WorkloadParams {
    fn default() -> Self {
        WorkloadParams {
            load_frac: 0.25,
            store_frac: 0.10,
            branch_frac: 0.10,
            mispredict_rate: 0.03,
            fp_frac: 0.2,
            long_latency_frac: 0.05,
            footprint_bytes: 256 * 1024,
            pattern: AddressPattern::Random,
            dep_chain: 0.35,
            load_dep_frac: 0.05,
            same_addr_load_frac: 0.02,
            store_load_alias_frac: 0.05,
        }
    }
}

/// A named synthetic workload.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    name: String,
    params: WorkloadParams,
}

impl WorkloadSpec {
    /// Creates a workload from explicit parameters.
    #[must_use]
    pub fn new(name: impl Into<String>, params: WorkloadParams) -> Self {
        WorkloadSpec { name: name.into(), params }
    }

    /// The workload name (used as the benchmark label in Figure 18).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The workload parameters.
    #[must_use]
    pub fn params(&self) -> &WorkloadParams {
        &self.params
    }

    /// A streaming workload (sequential accesses with the given stride).
    #[must_use]
    pub fn streaming(name: impl Into<String>, footprint_bytes: u64, stride: u64) -> Self {
        WorkloadSpec::new(
            name,
            WorkloadParams {
                load_frac: 0.30,
                store_frac: 0.12,
                pattern: AddressPattern::Sequential { stride },
                footprint_bytes,
                ..WorkloadParams::default()
            },
        )
    }

    /// A pointer-chasing workload (dependent loads, latency bound).
    ///
    /// The traversal visits distinct nodes (a full-period walk), so —
    /// like real list/tree chasing — it produces essentially no same-address
    /// load pairs of its own; its cost is the serialised dependent misses.
    #[must_use]
    pub fn pointer_chase(name: impl Into<String>, footprint_bytes: u64) -> Self {
        WorkloadSpec::new(
            name,
            WorkloadParams {
                load_frac: 0.35,
                store_frac: 0.05,
                pattern: AddressPattern::PointerChase,
                load_dep_frac: 0.9,
                same_addr_load_frac: 0.0,
                store_load_alias_frac: 0.02,
                footprint_bytes,
                dep_chain: 0.5,
                ..WorkloadParams::default()
            },
        )
    }

    /// A random-access workload (cache-miss heavy for large footprints).
    #[must_use]
    pub fn random_access(name: impl Into<String>, footprint_bytes: u64) -> Self {
        WorkloadSpec::new(
            name,
            WorkloadParams {
                load_frac: 0.30,
                store_frac: 0.10,
                pattern: AddressPattern::Random,
                footprint_bytes,
                ..WorkloadParams::default()
            },
        )
    }

    /// A compute-bound workload with few memory operations.
    #[must_use]
    pub fn alu_heavy(name: impl Into<String>, fp_frac: f64) -> Self {
        WorkloadSpec::new(
            name,
            WorkloadParams {
                load_frac: 0.10,
                store_frac: 0.05,
                branch_frac: 0.08,
                fp_frac,
                long_latency_frac: 0.10,
                footprint_bytes: 32 * 1024,
                dep_chain: 0.45,
                ..WorkloadParams::default()
            },
        )
    }

    /// A branch-heavy workload with the given misprediction rate.
    #[must_use]
    pub fn branchy(name: impl Into<String>, mispredict_rate: f64) -> Self {
        WorkloadSpec::new(
            name,
            WorkloadParams {
                branch_frac: 0.22,
                mispredict_rate,
                load_frac: 0.20,
                store_frac: 0.08,
                footprint_bytes: 64 * 1024,
                ..WorkloadParams::default()
            },
        )
    }

    /// A store-heavy workload.
    #[must_use]
    pub fn store_heavy(name: impl Into<String>, footprint_bytes: u64) -> Self {
        WorkloadSpec::new(
            name,
            WorkloadParams {
                load_frac: 0.15,
                store_frac: 0.30,
                store_load_alias_frac: 0.15,
                footprint_bytes,
                ..WorkloadParams::default()
            },
        )
    }

    /// A workload with frequent same-address load pairs (stresses the
    /// SALdLd kill/stall machinery well beyond what SPEC exhibits). Used by
    /// the adversarial/ablation suite rather than the Figure 18 suite.
    #[must_use]
    pub fn same_addr_heavy(name: impl Into<String>, footprint_bytes: u64) -> Self {
        WorkloadSpec::new(
            name,
            WorkloadParams {
                load_frac: 0.35,
                store_frac: 0.08,
                same_addr_load_frac: 0.30,
                load_dep_frac: 0.25,
                footprint_bytes,
                ..WorkloadParams::default()
            },
        )
    }

    /// A workload with a moderate amount of same-address load reuse and some
    /// address-dependent loads — the kind of hot-structure access real codes
    /// exhibit. This is what keeps Table II non-zero without being
    /// adversarial.
    #[must_use]
    pub fn reuse(name: impl Into<String>, footprint_bytes: u64, reuse_frac: f64) -> Self {
        WorkloadSpec::new(
            name,
            WorkloadParams {
                load_frac: 0.30,
                store_frac: 0.10,
                same_addr_load_frac: reuse_frac,
                load_dep_frac: 0.10,
                footprint_bytes,
                ..WorkloadParams::default()
            },
        )
    }

    /// A mixed workload resembling integer SPEC codes.
    #[must_use]
    pub fn mixed(name: impl Into<String>, footprint_bytes: u64, mispredict_rate: f64) -> Self {
        WorkloadSpec::new(
            name,
            WorkloadParams { footprint_bytes, mispredict_rate, ..WorkloadParams::default() },
        )
    }

    /// Generates a trace of `num_ops` micro-ops with the given seed.
    ///
    /// The same `(spec, num_ops, seed)` triple always yields the same trace,
    /// so the four memory-model policies of Figure 18 are compared on
    /// identical instruction streams.
    #[must_use]
    pub fn generate(&self, num_ops: usize, seed: u64) -> Trace {
        let p = &self.params;
        let mut rng = StdRng::seed_from_u64(seed ^ hash_name(&self.name));
        let mut ops = Vec::with_capacity(num_ops);
        let footprint = p.footprint_bytes.max(64);
        let mut stream_addr: u64 = 0;
        let mut recent_loads: Vec<(usize, u64)> = Vec::new();
        let mut recent_stores: Vec<(usize, u64)> = Vec::new();

        for i in 0..num_ops {
            let roll: f64 = rng.gen();
            let mut op = if roll < p.load_frac {
                self.generate_load(
                    i,
                    &mut rng,
                    footprint,
                    &mut stream_addr,
                    &recent_loads,
                    &recent_stores,
                )
            } else if roll < p.load_frac + p.store_frac {
                self.generate_store(i, &mut rng, footprint, &mut stream_addr, &recent_loads)
            } else if roll < p.load_frac + p.store_frac + p.branch_frac {
                MicroOp::branch(rng.gen::<f64>() < p.mispredict_rate)
            } else {
                self.generate_alu(i, &mut rng)
            };
            // Dependencies can never point before the start of the trace.
            op.dep1 = op.dep1.filter(|d| *d > 0 && (*d as usize) <= i);
            op.dep2 = op.dep2.filter(|d| *d > 0 && (*d as usize) <= i);

            if op.kind == UopKind::Load {
                recent_loads.push((i, op.addr));
                if recent_loads.len() > 32 {
                    recent_loads.remove(0);
                }
            } else if op.kind == UopKind::Store {
                recent_stores.push((i, op.addr));
                if recent_stores.len() > 32 {
                    recent_stores.remove(0);
                }
            }
            ops.push(op);
        }
        Trace::new(self.name.clone(), ops)
    }

    fn next_addr(&self, rng: &mut StdRng, footprint: u64, stream_addr: &mut u64) -> u64 {
        let slots = (footprint / 8).max(1);
        let offset = match self.params.pattern {
            AddressPattern::Sequential { stride } => {
                *stream_addr = (*stream_addr + stride) % footprint;
                *stream_addr
            }
            AddressPattern::Random => rng.gen_range(0..slots) * 8,
            AddressPattern::PointerChase => {
                // A full-period affine walk over the footprint models a
                // linked-list traversal: consecutive pointer loads touch
                // distinct nodes instead of colliding at random, exactly like
                // chasing a shuffled list.
                let current = (*stream_addr / 8) % slots;
                let next = (current.wrapping_mul(5).wrapping_add(1)) % slots;
                *stream_addr = next * 8;
                *stream_addr
            }
        };
        DATA_BASE + (offset & !0x7)
    }

    fn generate_load(
        &self,
        index: usize,
        rng: &mut StdRng,
        footprint: u64,
        stream_addr: &mut u64,
        recent_loads: &[(usize, u64)],
        recent_stores: &[(usize, u64)],
    ) -> MicroOp {
        let p = &self.params;
        // Same-address reuse of a recent load (the SALdLd trigger).
        if !recent_loads.is_empty() && rng.gen::<f64>() < p.same_addr_load_frac {
            let &(_, addr) = &recent_loads[rng.gen_range(0..recent_loads.len())];
            return MicroOp::load(addr, None);
        }
        // Alias a recent store (store-to-load forwarding / squashes).
        if !recent_stores.is_empty() && rng.gen::<f64>() < p.store_load_alias_frac {
            let &(_, addr) = &recent_stores[rng.gen_range(0..recent_stores.len())];
            return MicroOp::load(addr, None);
        }
        let addr = self.next_addr(rng, footprint, stream_addr);
        // Address dependency on the previous load (pointer chasing).
        let dep = if rng.gen::<f64>() < p.load_dep_frac {
            recent_loads.last().map(|(producer, _)| (index - producer) as u32)
        } else if rng.gen::<f64>() < p.dep_chain && index > 0 {
            Some(1)
        } else {
            None
        };
        MicroOp::load(addr, dep)
    }

    fn generate_store(
        &self,
        index: usize,
        rng: &mut StdRng,
        footprint: u64,
        stream_addr: &mut u64,
        recent_loads: &[(usize, u64)],
    ) -> MicroOp {
        let p = &self.params;
        let addr = self.next_addr(rng, footprint, stream_addr);
        // Store data usually comes from something computed recently.
        let data_dep = if rng.gen::<f64>() < p.dep_chain && index > 0 {
            Some(1 + rng.gen_range(0..4.min(index as u32)))
        } else {
            recent_loads.last().map(|(producer, _)| (index - producer) as u32)
        };
        // Occasionally the store address itself is computed from a recent load
        // (indexed stores), which is what makes stores resolve late and
        // exercises the memory-order squash path.
        let addr_dep = if rng.gen::<f64>() < p.load_dep_frac {
            recent_loads.last().map(|(producer, _)| (index - producer) as u32)
        } else {
            None
        };
        MicroOp::store_with_addr_dep(
            addr,
            addr_dep.filter(|d| *d > 0 && (*d as usize) <= index),
            data_dep.filter(|d| *d > 0 && (*d as usize) <= index),
        )
    }

    fn generate_alu(&self, index: usize, rng: &mut StdRng) -> MicroOp {
        let p = &self.params;
        let kind = if rng.gen::<f64>() < p.fp_frac {
            if rng.gen::<f64>() < p.long_latency_frac {
                if rng.gen::<bool>() {
                    UopKind::FpDiv
                } else {
                    UopKind::FpMul
                }
            } else {
                UopKind::FpAlu
            }
        } else if rng.gen::<f64>() < p.long_latency_frac {
            if rng.gen::<bool>() {
                UopKind::IntDiv
            } else {
                UopKind::IntMul
            }
        } else {
            UopKind::IntAlu
        };
        let mut op = MicroOp::simple(kind);
        if index > 0 && rng.gen::<f64>() < p.dep_chain {
            op.dep1 = Some(1);
        }
        if index > 1 && rng.gen::<f64>() < p.dep_chain / 2.0 {
            op.dep2 = Some(2);
        }
        op
    }
}

fn hash_name(name: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A named collection of workloads (the x-axis of Figure 18).
#[derive(Debug, Clone)]
pub struct WorkloadSuite {
    specs: Vec<WorkloadSpec>,
}

impl WorkloadSuite {
    /// Builds a suite from explicit specs.
    #[must_use]
    pub fn new(specs: Vec<WorkloadSpec>) -> Self {
        WorkloadSuite { specs }
    }

    /// The 20-workload suite used to regenerate Figure 18 and Tables II/III.
    ///
    /// Names follow a `behaviour.variant` convention; the behaviours cover
    /// the range the SPEC reference inputs exhibit: pointer chasing
    /// (mcf/xalanc-like), streaming (libquantum/lbm-like), random access
    /// (omnetpp-like), compute-bound integer and floating point
    /// (hmmer/gamess-like), branchy codes (gobmk/sjeng-like), store-heavy
    /// phases (bzip2-like), hot-structure reuse and mixed behaviour
    /// (gcc-like). Deliberately adversarial same-address workloads live in
    /// [`WorkloadSuite::adversarial`] instead.
    #[must_use]
    pub fn paper() -> Self {
        const KIB: u64 = 1024;
        const MIB: u64 = 1024 * 1024;
        WorkloadSuite::new(vec![
            WorkloadSpec::pointer_chase("ptrchase.l1", 16 * KIB),
            WorkloadSpec::pointer_chase("ptrchase.l2", 128 * KIB),
            WorkloadSpec::pointer_chase("ptrchase.mem", 8 * MIB),
            WorkloadSpec::streaming("stream.dense", 512 * KIB, 8),
            WorkloadSpec::streaming("stream.line", 2 * MIB, 64),
            WorkloadSpec::streaming("stream.sparse", 8 * MIB, 256),
            WorkloadSpec::random_access("random.l1", 16 * KIB),
            WorkloadSpec::random_access("random.l3", 768 * KIB),
            WorkloadSpec::random_access("random.mem", 16 * MIB),
            WorkloadSpec::alu_heavy("compute.int", 0.05),
            WorkloadSpec::alu_heavy("compute.fp", 0.75),
            WorkloadSpec::branchy("branchy.predictable", 0.01),
            WorkloadSpec::branchy("branchy.hard", 0.10),
            WorkloadSpec::store_heavy("store.l2", 128 * KIB),
            WorkloadSpec::store_heavy("store.mem", 8 * MIB),
            WorkloadSpec::reuse("reuse.hot", 32 * KIB, 0.06),
            WorkloadSpec::reuse("reuse.cold", 2 * MIB, 0.03),
            WorkloadSpec::mixed("mix.small", 64 * KIB, 0.02),
            WorkloadSpec::mixed("mix.large", 4 * MIB, 0.03),
            WorkloadSpec::mixed("mix.branchy", 512 * KIB, 0.08),
        ])
    }

    /// Deliberately adversarial workloads that hammer the same-address
    /// load-load machinery far harder than any SPEC-like code: used by the
    /// ablation study (`cargo run -p gam-bench --bin ablation`), *not* by the
    /// Figure 18 suite.
    #[must_use]
    pub fn adversarial() -> Self {
        WorkloadSuite::new(vec![
            WorkloadSpec::same_addr_heavy("samereads.hot", 8 * 1024),
            WorkloadSpec::same_addr_heavy("samereads.cold", 2 * 1024 * 1024),
            WorkloadSpec::pointer_chase("ptrchase.tiny", 4 * 1024),
        ])
    }

    /// A three-workload suite for fast tests and examples.
    #[must_use]
    pub fn small() -> Self {
        WorkloadSuite::new(vec![
            WorkloadSpec::pointer_chase("ptrchase.small", 32 * 1024),
            WorkloadSpec::streaming("stream.small", 64 * 1024, 64),
            WorkloadSpec::mixed("mix.tiny", 32 * 1024, 0.03),
        ])
    }

    /// The workloads in the suite.
    #[must_use]
    pub fn specs(&self) -> &[WorkloadSpec] {
        &self.specs
    }

    /// Number of workloads.
    #[must_use]
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// Returns true if the suite has no workloads.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let spec = WorkloadSpec::mixed("repro", 64 * 1024, 0.05);
        let a = spec.generate(5_000, 7);
        let b = spec.generate(5_000, 7);
        assert_eq!(a, b);
        let c = spec.generate(5_000, 8);
        assert_ne!(a, c, "a different seed must change the trace");
    }

    #[test]
    fn fractions_roughly_match_parameters() {
        let spec = WorkloadSpec::mixed("fractions", 256 * 1024, 0.03);
        let trace = spec.generate(50_000, 1);
        let p = spec.params();
        assert!((trace.load_fraction() - p.load_frac).abs() < 0.02);
        assert!((trace.store_fraction() - p.store_frac).abs() < 0.02);
    }

    #[test]
    fn dependencies_never_point_before_the_trace_start() {
        let suite = WorkloadSuite::paper();
        for spec in suite.specs() {
            let trace = spec.generate(2_000, 3);
            for (i, op) in trace.ops().iter().enumerate() {
                for dep in [op.dep1, op.dep2].into_iter().flatten() {
                    assert!(dep as usize <= i, "{}: op {i} depends {dep} back", spec.name());
                    assert!(dep > 0, "{}: op {i} depends on itself", spec.name());
                }
            }
        }
    }

    #[test]
    fn addresses_stay_inside_the_footprint() {
        let spec = WorkloadSpec::random_access("bounds", 4096);
        let trace = spec.generate(10_000, 11);
        for op in trace.ops() {
            if op.is_memory() {
                assert!(op.addr >= DATA_BASE);
                assert!(op.addr < DATA_BASE + 4096);
                assert_eq!(op.addr % 8, 0, "addresses are 8-byte aligned");
            }
        }
    }

    #[test]
    fn pointer_chase_has_dependent_loads() {
        let spec = WorkloadSpec::pointer_chase("chase", 1024 * 1024);
        let trace = spec.generate(20_000, 5);
        let dependent_loads =
            trace.ops().iter().filter(|op| op.kind == UopKind::Load && op.dep1.is_some()).count();
        let loads = trace.ops().iter().filter(|op| op.kind == UopKind::Load).count();
        assert!(
            dependent_loads as f64 > 0.5 * loads as f64,
            "pointer chasing must make most loads dependent ({dependent_loads}/{loads})"
        );
    }

    #[test]
    fn same_addr_heavy_produces_repeated_addresses() {
        let spec = WorkloadSpec::same_addr_heavy("hot", 64 * 1024);
        let trace = spec.generate(20_000, 9);
        let mut repeats = 0usize;
        let mut window: Vec<u64> = Vec::new();
        for op in trace.ops() {
            if op.kind == UopKind::Load {
                if window.contains(&op.addr) {
                    repeats += 1;
                }
                window.push(op.addr);
                if window.len() > 32 {
                    window.remove(0);
                }
            }
        }
        assert!(repeats > 500, "expected many same-address load pairs, got {repeats}");
    }

    #[test]
    fn branchy_workload_has_mispredicts() {
        let spec = WorkloadSpec::branchy("hard", 0.10);
        let trace = spec.generate(20_000, 13);
        let branches = trace.ops().iter().filter(|o| o.kind == UopKind::Branch).count();
        let mispredicts = trace.ops().iter().filter(|o| o.mispredicted).count();
        assert!(branches > 3_000);
        let rate = mispredicts as f64 / branches as f64;
        assert!((rate - 0.10).abs() < 0.03, "misprediction rate {rate} too far from 10%");
    }

    #[test]
    fn paper_suite_has_twenty_distinct_workloads() {
        let suite = WorkloadSuite::paper();
        assert_eq!(suite.len(), 20);
        assert!(!suite.is_empty());
        let names: std::collections::BTreeSet<&str> =
            suite.specs().iter().map(WorkloadSpec::name).collect();
        assert_eq!(names.len(), 20);
    }

    #[test]
    fn small_suite_is_a_subset_in_spirit() {
        assert_eq!(WorkloadSuite::small().len(), 3);
    }
}
