//! Simulator configuration: core structure sizes, cache hierarchy and
//! memory-model policy.
//!
//! [`SimConfig::haswell_like`] reproduces Table I of the paper: a 4-wide
//! fetch/decode/rename/commit, 6-wide issue core with a 192-entry ROB,
//! 60-entry reservation station, 72-entry load queue and 42-entry store
//! queue, backed by 32 KiB L1 caches, a 256 KiB L2, a 1 MiB L3 and 200-cycle
//! main memory.

use std::fmt;

/// The memory-model enforcement policy of the simulated core (Section V-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MemoryModelPolicy {
    /// GAM: constraint SALdLd — same-address load-load *kills* (when a load
    /// resolves its address, younger same-address loads that already got
    /// their value from memory or from an older store are squashed) and
    /// *stalls* (a ready load waits for an older unissued same-address load).
    Gam,
    /// ARM: constraint SALdLdARM modelled optimistically as in the paper —
    /// the stalls of GAM but no kills.
    Arm,
    /// GAM0: no same-address load-load constraint at all.
    Gam0,
    /// Alpha\*: GAM0 plus load-load data forwarding (a ready load may take its
    /// value from an older completed same-address load instead of accessing
    /// the cache), which breaks data-dependency ordering.
    AlphaStar,
}

impl MemoryModelPolicy {
    /// All policies in the order used by Figure 18.
    pub const ALL: [MemoryModelPolicy; 4] = [
        MemoryModelPolicy::Gam,
        MemoryModelPolicy::Arm,
        MemoryModelPolicy::Gam0,
        MemoryModelPolicy::AlphaStar,
    ];

    /// Does the policy stall a ready load behind an older unissued
    /// same-address load?
    #[must_use]
    pub fn stalls_same_address_loads(self) -> bool {
        matches!(self, MemoryModelPolicy::Gam | MemoryModelPolicy::Arm)
    }

    /// Does the policy kill younger executed same-address loads when a load
    /// resolves its address?
    #[must_use]
    pub fn kills_same_address_loads(self) -> bool {
        matches!(self, MemoryModelPolicy::Gam)
    }

    /// Does the policy allow load-to-load data forwarding?
    #[must_use]
    pub fn allows_load_load_forwarding(self) -> bool {
        matches!(self, MemoryModelPolicy::AlphaStar)
    }
}

impl fmt::Display for MemoryModelPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            MemoryModelPolicy::Gam => "GAM",
            MemoryModelPolicy::Arm => "ARM",
            MemoryModelPolicy::Gam0 => "GAM0",
            MemoryModelPolicy::AlphaStar => "Alpha*",
        })
    }
}

/// Core (pipeline) parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoreConfig {
    /// Instructions fetched/decoded/renamed/dispatched per cycle.
    pub fetch_width: usize,
    /// Micro-ops issued to execution per cycle.
    pub issue_width: usize,
    /// Micro-ops committed per cycle.
    pub commit_width: usize,
    /// Reorder-buffer entries.
    pub rob_entries: usize,
    /// Reservation-station (scheduler) entries.
    pub rs_entries: usize,
    /// Load-queue entries.
    pub lq_entries: usize,
    /// Store-queue entries (speculative and committed stores).
    pub sq_entries: usize,
    /// Number of simple integer ALUs.
    pub int_alu_units: usize,
    /// Number of integer multiply units.
    pub int_mul_units: usize,
    /// Number of integer divide units.
    pub int_div_units: usize,
    /// Number of FP ALUs.
    pub fp_alu_units: usize,
    /// Number of FP multiply units.
    pub fp_mul_units: usize,
    /// Number of FP divide/sqrt units.
    pub fp_div_units: usize,
    /// Number of load/store ports.
    pub mem_ports: usize,
    /// Cycles lost re-filling the front end after a branch misprediction or a
    /// memory-order squash.
    pub redirect_penalty: u64,
}

impl CoreConfig {
    /// The core of Table I (sized to match a Haswell-class machine).
    #[must_use]
    pub fn haswell_like() -> Self {
        CoreConfig {
            fetch_width: 4,
            issue_width: 6,
            commit_width: 4,
            rob_entries: 192,
            rs_entries: 60,
            lq_entries: 72,
            sq_entries: 42,
            int_alu_units: 4,
            int_mul_units: 1,
            int_div_units: 1,
            fp_alu_units: 2,
            fp_mul_units: 1,
            fp_div_units: 1,
            mem_ports: 2,
            redirect_penalty: 8,
        }
    }

    /// A deliberately small core for fast unit tests.
    #[must_use]
    pub fn tiny() -> Self {
        CoreConfig {
            fetch_width: 2,
            issue_width: 2,
            commit_width: 2,
            rob_entries: 16,
            rs_entries: 8,
            lq_entries: 8,
            sq_entries: 6,
            int_alu_units: 2,
            int_mul_units: 1,
            int_div_units: 1,
            fp_alu_units: 1,
            fp_mul_units: 1,
            fp_div_units: 1,
            mem_ports: 1,
            redirect_penalty: 4,
        }
    }
}

/// Parameters of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Line size in bytes.
    pub line_bytes: usize,
    /// Hit latency in cycles.
    pub hit_latency: u64,
    /// Miss-status-holding registers (maximum outstanding misses).
    pub mshrs: usize,
}

impl CacheConfig {
    /// Number of sets.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide evenly.
    #[must_use]
    pub fn num_sets(&self) -> usize {
        let lines = self.size_bytes / self.line_bytes;
        assert!(lines.is_multiple_of(self.ways), "cache geometry must divide evenly");
        lines / self.ways
    }
}

/// The full cache hierarchy plus main memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheHierarchyConfig {
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// Unified L2.
    pub l2: CacheConfig,
    /// Last-level cache.
    pub l3: CacheConfig,
    /// Main-memory latency in cycles.
    pub memory_latency: u64,
}

impl CacheHierarchyConfig {
    /// The hierarchy of Table I: 32 KiB / 8-way / 4-cycle L1D,
    /// 256 KiB / 8-way / 12-cycle L2, 1 MiB / 16-way / 35-cycle L3 and
    /// 200-cycle memory, with 64-byte lines throughout.
    #[must_use]
    pub fn paper() -> Self {
        CacheHierarchyConfig {
            l1d: CacheConfig {
                size_bytes: 32 * 1024,
                ways: 8,
                line_bytes: 64,
                hit_latency: 4,
                mshrs: 8,
            },
            l2: CacheConfig {
                size_bytes: 256 * 1024,
                ways: 8,
                line_bytes: 64,
                hit_latency: 12,
                mshrs: 20,
            },
            l3: CacheConfig {
                size_bytes: 1024 * 1024,
                ways: 16,
                line_bytes: 64,
                hit_latency: 35,
                mshrs: 30,
            },
            memory_latency: 200,
        }
    }

    /// A small hierarchy for fast unit tests.
    #[must_use]
    pub fn tiny() -> Self {
        CacheHierarchyConfig {
            l1d: CacheConfig {
                size_bytes: 2 * 1024,
                ways: 2,
                line_bytes: 64,
                hit_latency: 2,
                mshrs: 4,
            },
            l2: CacheConfig {
                size_bytes: 8 * 1024,
                ways: 4,
                line_bytes: 64,
                hit_latency: 8,
                mshrs: 8,
            },
            l3: CacheConfig {
                size_bytes: 32 * 1024,
                ways: 4,
                line_bytes: 64,
                hit_latency: 20,
                mshrs: 8,
            },
            memory_latency: 100,
        }
    }
}

/// The complete simulator configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimConfig {
    /// Core parameters.
    pub core: CoreConfig,
    /// Cache hierarchy parameters.
    pub caches: CacheHierarchyConfig,
    /// Memory-model policy under evaluation.
    pub policy: MemoryModelPolicy,
}

impl SimConfig {
    /// The configuration of Table I with the given memory-model policy.
    #[must_use]
    pub fn haswell_like(policy: MemoryModelPolicy) -> Self {
        SimConfig {
            core: CoreConfig::haswell_like(),
            caches: CacheHierarchyConfig::paper(),
            policy,
        }
    }

    /// A small configuration for fast unit tests.
    #[must_use]
    pub fn tiny(policy: MemoryModelPolicy) -> Self {
        SimConfig { core: CoreConfig::tiny(), caches: CacheHierarchyConfig::tiny(), policy }
    }
}

impl fmt::Display for SimConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "memory-model policy: {}", self.policy)?;
        writeln!(
            f,
            "core: {}-wide fetch/commit, {}-wide issue, ROB {}, RS {}, LQ {}, SQ {}",
            self.core.fetch_width,
            self.core.issue_width,
            self.core.rob_entries,
            self.core.rs_entries,
            self.core.lq_entries,
            self.core.sq_entries
        )?;
        writeln!(
            f,
            "function units: {} int ALU, {} int mul, {} int div, {} FP ALU, {} FP mul, {} FP div, {} load/store ports",
            self.core.int_alu_units,
            self.core.int_mul_units,
            self.core.int_div_units,
            self.core.fp_alu_units,
            self.core.fp_mul_units,
            self.core.fp_div_units,
            self.core.mem_ports
        )?;
        writeln!(
            f,
            "L1D: {} KiB {}-way, {}-cycle hit, {} MSHRs",
            self.caches.l1d.size_bytes / 1024,
            self.caches.l1d.ways,
            self.caches.l1d.hit_latency,
            self.caches.l1d.mshrs
        )?;
        writeln!(
            f,
            "L2:  {} KiB {}-way, {}-cycle hit, {} MSHRs",
            self.caches.l2.size_bytes / 1024,
            self.caches.l2.ways,
            self.caches.l2.hit_latency,
            self.caches.l2.mshrs
        )?;
        writeln!(
            f,
            "L3:  {} KiB {}-way, {}-cycle hit, {} MSHRs",
            self.caches.l3.size_bytes / 1024,
            self.caches.l3.ways,
            self.caches.l3.hit_latency,
            self.caches.l3.mshrs
        )?;
        writeln!(f, "memory: {}-cycle latency", self.caches.memory_latency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_one_parameters() {
        let config = SimConfig::haswell_like(MemoryModelPolicy::Gam);
        assert_eq!(config.core.rob_entries, 192);
        assert_eq!(config.core.rs_entries, 60);
        assert_eq!(config.core.lq_entries, 72);
        assert_eq!(config.core.sq_entries, 42);
        assert_eq!(config.core.fetch_width, 4);
        assert_eq!(config.core.issue_width, 6);
        assert_eq!(config.caches.l1d.size_bytes, 32 * 1024);
        assert_eq!(config.caches.l2.size_bytes, 256 * 1024);
        assert_eq!(config.caches.l3.size_bytes, 1024 * 1024);
        assert_eq!(config.caches.memory_latency, 200);
    }

    #[test]
    fn cache_geometry() {
        let l1 = CacheHierarchyConfig::paper().l1d;
        assert_eq!(l1.num_sets(), 64);
        let l3 = CacheHierarchyConfig::paper().l3;
        assert_eq!(l3.num_sets(), 1024);
    }

    #[test]
    fn policy_capabilities_match_the_paper() {
        use MemoryModelPolicy as P;
        assert!(P::Gam.stalls_same_address_loads() && P::Gam.kills_same_address_loads());
        assert!(P::Arm.stalls_same_address_loads() && !P::Arm.kills_same_address_loads());
        assert!(!P::Gam0.stalls_same_address_loads() && !P::Gam0.kills_same_address_loads());
        assert!(!P::AlphaStar.stalls_same_address_loads());
        assert!(P::AlphaStar.allows_load_load_forwarding());
        assert!(!P::Gam.allows_load_load_forwarding());
        assert_eq!(P::ALL.len(), 4);
    }

    #[test]
    fn policy_display_names() {
        assert_eq!(MemoryModelPolicy::Gam.to_string(), "GAM");
        assert_eq!(MemoryModelPolicy::Arm.to_string(), "ARM");
        assert_eq!(MemoryModelPolicy::Gam0.to_string(), "GAM0");
        assert_eq!(MemoryModelPolicy::AlphaStar.to_string(), "Alpha*");
    }

    #[test]
    fn config_display_lists_table_one() {
        let text = SimConfig::haswell_like(MemoryModelPolicy::Gam).to_string();
        assert!(text.contains("ROB 192"));
        assert!(text.contains("L1D: 32 KiB"));
        assert!(text.contains("200-cycle"));
    }

    #[test]
    fn tiny_config_is_smaller() {
        let tiny = SimConfig::tiny(MemoryModelPolicy::Gam0);
        let paper = SimConfig::haswell_like(MemoryModelPolicy::Gam0);
        assert!(tiny.core.rob_entries < paper.core.rob_entries);
        assert!(tiny.caches.l1d.size_bytes < paper.caches.l1d.size_bytes);
    }
}
