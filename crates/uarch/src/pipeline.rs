//! The out-of-order core model.
//!
//! A cycle-level, trace-driven model of the processor in Table I: wide
//! in-order fetch/dispatch into a ROB, reservation-station-limited dynamic
//! issue to a pool of functional units, a load queue and a store queue with
//! store-to-load forwarding, in-order commit, branch-misprediction redirects
//! and memory-order squashes.
//!
//! The four memory-model policies of Section V hook into three places:
//!
//! * **load issue** — GAM and ARM stall a ready load while an older
//!   *unissued* load to the same address exists (unless a store between them
//!   can forward); Alpha\* may instead take the value of an older *completed*
//!   load to the same address (load-load forwarding);
//! * **address resolution of a load** — GAM kills younger same-address loads
//!   that already obtained their value from memory or from a store older
//!   than the resolving load (constraint SALdLd);
//! * **address resolution of a store** — every policy squashes younger
//!   same-address loads that executed too early (plain memory-order
//!   violation, needed for single-thread correctness).

use crate::cache::CacheHierarchy;
use crate::config::SimConfig;
use crate::stats::SimStats;
use crate::trace::{Trace, UopKind};

/// Where a completed load obtained its value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LoadValueSource {
    /// From the cache hierarchy / memory.
    Memory,
    /// Forwarded from the store at this trace index.
    Store(usize),
    /// Forwarded from the older load at this trace index (Alpha\* only).
    Load(usize),
}

/// One micro-op in flight.
#[derive(Debug, Clone)]
struct InFlight {
    trace_idx: usize,
    kind: UopKind,
    addr: u64,
    mispredicted: bool,
    dep1: Option<usize>,
    dep2: Option<usize>,
    /// Dispatched into the window (always true once in the ROB).
    issued: bool,
    done: bool,
    complete_cycle: u64,
    /// The cycle at which the memory address became known (memory ops).
    addr_resolved: bool,
    value_source: Option<LoadValueSource>,
    counted_stall: bool,
}

/// The trace-driven out-of-order core simulator.
#[derive(Debug)]
pub struct Simulator {
    config: SimConfig,
}

impl Simulator {
    /// Creates a simulator with the given configuration.
    #[must_use]
    pub fn new(config: SimConfig) -> Self {
        Simulator { config }
    }

    /// The simulator configuration.
    #[must_use]
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Runs the trace to completion and returns the collected statistics.
    ///
    /// # Panics
    ///
    /// Panics if the pipeline fails to make forward progress (a modelling
    /// bug), after a generous cycle bound.
    #[must_use]
    pub fn run(&self, trace: &Trace) -> SimStats {
        Engine::new(&self.config, trace).run()
    }
}

/// Per-run mutable simulation state.
struct Engine<'a> {
    config: &'a SimConfig,
    trace: &'a Trace,
    caches: CacheHierarchy,
    now: u64,
    rob: Vec<InFlight>,
    /// Trace index of the next micro-op to dispatch.
    next_fetch: usize,
    /// Number of micro-ops committed so far; also the trace index of the ROB head.
    committed: usize,
    /// Front end is stalled (misprediction or squash refill) until this cycle.
    fetch_stall_until: u64,
    /// Committed stores still draining to the cache: cycle at which each
    /// store-queue entry frees up.
    draining_stores: Vec<u64>,
    stats: SimStats,
}

impl<'a> Engine<'a> {
    fn new(config: &'a SimConfig, trace: &'a Trace) -> Self {
        Engine {
            config,
            trace,
            caches: CacheHierarchy::new(&config.caches),
            now: 0,
            rob: Vec::with_capacity(config.core.rob_entries),
            next_fetch: 0,
            committed: 0,
            fetch_stall_until: 0,
            draining_stores: Vec::new(),
            stats: SimStats {
                workload: trace.name().to_string(),
                policy: config.policy.to_string(),
                ..SimStats::default()
            },
        }
    }

    fn run(mut self) -> SimStats {
        let limit = 400 * self.trace.len() as u64 + 100_000;
        while self.committed < self.trace.len() {
            self.now += 1;
            assert!(self.now < limit, "pipeline failed to make forward progress");
            self.drain_stores();
            self.writeback();
            self.commit();
            self.resolve_addresses();
            self.issue();
            self.dispatch();
        }
        self.stats.cycles = self.now;
        self.stats.l1d_hits = self.caches.l1_hits();
        self.stats.l1d_misses = self.caches.l1_misses();
        self.stats.l2_misses = self.caches.l2_misses();
        self.stats.l3_misses = self.caches.l3_misses();
        self.stats
    }

    // --------------------------------------------------------------- helpers

    /// Is the producer micro-op at `trace_idx` done (committed counts as done)?
    fn producer_done(&self, trace_idx: usize) -> bool {
        if trace_idx < self.committed {
            return true;
        }
        let pos = trace_idx - self.committed;
        self.rob.get(pos).is_some_and(|entry| entry.done)
    }

    fn deps_done(&self, entry: &InFlight) -> bool {
        entry.dep1.is_none_or(|d| self.producer_done(d))
            && entry.dep2.is_none_or(|d| self.producer_done(d))
    }

    /// Memory operations compute their address from `dep1` only; `dep2` of a
    /// store is its data producer. The address can therefore resolve before
    /// the operation is ready to execute.
    fn addr_deps_done(&self, entry: &InFlight) -> bool {
        entry.dep1.is_none_or(|d| self.producer_done(d))
    }

    fn loads_in_rob(&self) -> usize {
        self.rob.iter().filter(|e| e.kind == UopKind::Load).count()
    }

    fn stores_in_rob(&self) -> usize {
        self.rob.iter().filter(|e| e.kind == UopKind::Store).count()
    }

    fn rs_occupancy(&self) -> usize {
        self.rob.iter().filter(|e| !e.issued).count()
    }

    // ----------------------------------------------------------------- stages

    /// Frees store-queue entries whose cache write has completed.
    fn drain_stores(&mut self) {
        let now = self.now;
        self.draining_stores.retain(|&free_at| free_at > now);
    }

    /// Marks issued micro-ops whose latency elapsed as done and handles
    /// branch-misprediction redirects.
    fn writeback(&mut self) {
        let mut redirect = false;
        for entry in &mut self.rob {
            if entry.issued && !entry.done && self.now >= entry.complete_cycle {
                entry.done = true;
                if entry.kind == UopKind::Branch && entry.mispredicted {
                    redirect = true;
                    self.stats.branch_mispredicts += 1;
                }
            }
        }
        if redirect {
            self.fetch_stall_until =
                self.fetch_stall_until.max(self.now + self.config.core.redirect_penalty);
        }
    }

    /// Retires completed micro-ops in order.
    fn commit(&mut self) {
        let mut retired = 0;
        while retired < self.config.core.commit_width {
            let Some(head) = self.rob.first() else { break };
            if !head.done {
                break;
            }
            if head.kind == UopKind::Store {
                // Committed stores drain to the cache asynchronously but keep
                // their store-queue entry busy until the write completes.
                let access = self.caches.access(head.addr, self.now);
                self.draining_stores.push(self.now + access.latency);
                self.stats.committed_stores += 1;
            }
            if head.kind == UopKind::Load {
                self.stats.committed_loads += 1;
            }
            self.stats.committed_uops += 1;
            self.rob.remove(0);
            self.committed += 1;
            retired += 1;
        }
    }

    /// Resolves memory addresses whose operands became available and applies
    /// the squash rules tied to address resolution.
    fn resolve_addresses(&mut self) {
        let mut pos = 0;
        // A squash truncates the ROB, so the bound must be re-read every step.
        while pos < self.rob.len() {
            let entry = &self.rob[pos];
            let resolvable =
                entry.kind.is_memory() && !entry.addr_resolved && self.addr_deps_done(entry);
            if !resolvable {
                pos += 1;
                continue;
            }
            let kind = entry.kind;
            let addr = entry.addr;
            let trace_idx = entry.trace_idx;
            self.rob[pos].addr_resolved = true;

            match kind {
                UopKind::Store => self.squash_loads_after_store(pos, addr),
                UopKind::Load => {
                    if self.config.policy.kills_same_address_loads() {
                        self.kill_loads_after_load(pos, addr, trace_idx);
                    }
                }
                _ => unreachable!("only memory ops are resolved"),
            }
            pos += 1;
        }
    }

    /// Memory-order violation: a store resolved its address and a younger
    /// same-address load already executed without forwarding from it (or from
    /// anything younger). Present under every policy.
    fn squash_loads_after_store(&mut self, store_pos: usize, addr: u64) {
        let store_trace_idx = self.rob[store_pos].trace_idx;
        let victim = self.rob[store_pos + 1..].iter().position(|e| {
            e.kind == UopKind::Load
                && e.addr == addr
                && (e.issued || e.done)
                && match e.value_source {
                    Some(LoadValueSource::Store(src)) | Some(LoadValueSource::Load(src)) => {
                        src < store_trace_idx
                    }
                    Some(LoadValueSource::Memory) | None => true,
                }
        });
        if let Some(offset) = victim {
            self.stats.store_order_squashes += 1;
            self.squash_from(store_pos + 1 + offset);
        }
    }

    /// Constraint SALdLd in the implementation (Section III-E1): when a load
    /// resolves its address, younger same-address loads that already obtained
    /// their value from memory or from a store older than this load are
    /// killed.
    fn kill_loads_after_load(&mut self, load_pos: usize, addr: u64, load_trace_idx: usize) {
        let victim = self.rob[load_pos + 1..].iter().position(|e| {
            e.kind == UopKind::Load
                && e.addr == addr
                && (e.issued || e.done)
                && match e.value_source {
                    // Forwarded from a store younger than the resolving load:
                    // per-location ordering is already satisfied.
                    Some(LoadValueSource::Store(src)) => src < load_trace_idx,
                    Some(LoadValueSource::Load(_)) | Some(LoadValueSource::Memory) | None => true,
                }
        });
        if let Some(offset) = victim {
            self.stats.same_addr_load_kills += 1;
            self.squash_from(load_pos + 1 + offset);
        }
    }

    /// Squashes the ROB from `pos` onwards and redirects the front end.
    fn squash_from(&mut self, pos: usize) {
        let restart = self.rob[pos].trace_idx;
        self.rob.truncate(pos);
        self.next_fetch = restart;
        self.fetch_stall_until =
            self.fetch_stall_until.max(self.now + self.config.core.redirect_penalty);
    }

    /// Issues ready micro-ops to the functional units.
    fn issue(&mut self) {
        let mut issued_this_cycle = 0usize;
        let mut int_alu = 0usize;
        let mut int_mul = 0usize;
        let mut int_div = 0usize;
        let mut fp_alu = 0usize;
        let mut fp_mul = 0usize;
        let mut fp_div = 0usize;
        let mut mem_ports = 0usize;

        for pos in 0..self.rob.len() {
            if issued_this_cycle >= self.config.core.issue_width {
                break;
            }
            let entry = &self.rob[pos];
            if entry.issued || !self.deps_done(entry) {
                continue;
            }
            let core = &self.config.core;
            let (unit_used, unit_limit): (&mut usize, usize) = match entry.kind {
                UopKind::IntAlu | UopKind::Branch => (&mut int_alu, core.int_alu_units),
                UopKind::IntMul => (&mut int_mul, core.int_mul_units),
                UopKind::IntDiv => (&mut int_div, core.int_div_units),
                UopKind::FpAlu => (&mut fp_alu, core.fp_alu_units),
                UopKind::FpMul => (&mut fp_mul, core.fp_mul_units),
                UopKind::FpDiv => (&mut fp_div, core.fp_div_units),
                UopKind::Load | UopKind::Store => (&mut mem_ports, core.mem_ports),
            };
            if *unit_used >= unit_limit {
                continue;
            }

            let latency = match entry.kind {
                UopKind::Load => match self.try_issue_load(pos) {
                    Some(latency) => latency,
                    None => continue,
                },
                UopKind::Store => entry.kind.latency(),
                _ => entry.kind.latency(),
            };

            let entry = &mut self.rob[pos];
            entry.issued = true;
            entry.complete_cycle = self.now + latency;
            *unit_used += 1;
            issued_this_cycle += 1;
        }
    }

    /// Decides how a ready load obtains its value, applying the memory-model
    /// policy. Returns the execution latency, or `None` if the load must wait.
    fn try_issue_load(&mut self, pos: usize) -> Option<u64> {
        let addr = self.rob[pos].addr;
        let trace_idx = self.rob[pos].trace_idx;

        // Youngest older same-address store in the window (its position and
        // readiness), used both for forwarding and for the stall exemption.
        let forwarding_store = self.rob[..pos]
            .iter()
            .rposition(|e| e.kind == UopKind::Store && e.addr_resolved && e.addr == addr);

        // GAM / ARM: stall behind an older unissued same-address load unless a
        // store younger than that load can forward.
        if self.config.policy.stalls_same_address_loads() {
            let older_unissued_load = self.rob[..pos].iter().position(|e| {
                e.kind == UopKind::Load && !e.issued && e.addr_resolved && e.addr == addr
            });
            if let Some(older_pos) = older_unissued_load {
                let exempted = forwarding_store.is_some_and(|store_pos| store_pos > older_pos);
                if !exempted {
                    if !self.rob[pos].counted_stall {
                        self.stats.same_addr_load_stalls += 1;
                        self.rob[pos].counted_stall = true;
                    }
                    return None;
                }
            }
        }

        // Store-to-load forwarding from the youngest older same-address store.
        if let Some(store_pos) = forwarding_store {
            let store = &self.rob[store_pos];
            if self.deps_done(store) {
                let store_idx = store.trace_idx;
                self.stats.store_to_load_forwardings += 1;
                self.rob[pos].value_source = Some(LoadValueSource::Store(store_idx));
                return Some(2);
            }
            // The producing store's data is not ready: wait for it rather than
            // reading a stale value from the cache.
            return None;
        }

        // Alpha*: load-load forwarding from an older completed same-address load.
        if self.config.policy.allows_load_load_forwarding() {
            let older_done_load = self.rob[..pos]
                .iter()
                .rposition(|e| e.kind == UopKind::Load && e.done && e.addr == addr);
            if let Some(older_pos) = older_done_load {
                let source_idx = self.rob[older_pos].trace_idx;
                self.stats.load_load_forwardings += 1;
                if !self.caches.peek_l1(addr) {
                    self.stats.forwardings_that_hid_l1_misses += 1;
                }
                self.rob[pos].value_source = Some(LoadValueSource::Load(source_idx));
                return Some(2);
            }
        }

        // Regular cache access.
        let access = self.caches.access(addr, self.now);
        self.rob[pos].value_source = Some(LoadValueSource::Memory);
        let _ = trace_idx;
        Some(access.latency)
    }

    /// Fetches and dispatches micro-ops into the window.
    fn dispatch(&mut self) {
        if self.now < self.fetch_stall_until {
            return;
        }
        for _ in 0..self.config.core.fetch_width {
            if self.next_fetch >= self.trace.len() {
                return;
            }
            if self.rob.len() >= self.config.core.rob_entries {
                return;
            }
            if self.rs_occupancy() >= self.config.core.rs_entries {
                return;
            }
            let op = &self.trace.ops()[self.next_fetch];
            match op.kind {
                UopKind::Load if self.loads_in_rob() >= self.config.core.lq_entries => {
                    return;
                }
                UopKind::Store
                    if self.stores_in_rob() + self.draining_stores.len()
                        >= self.config.core.sq_entries =>
                {
                    return;
                }
                _ => {}
            }
            let trace_idx = self.next_fetch;
            let to_abs = |d: Option<u32>| d.map(|dist| trace_idx - dist as usize);
            // The address of a memory operation comes from dep1 only; a store
            // with a constant address but late data resolves immediately.
            let addr_resolved = op.is_memory() && op.dep1.is_none();
            self.rob.push(InFlight {
                trace_idx,
                kind: op.kind,
                addr: op.addr,
                mispredicted: op.mispredicted,
                dep1: to_abs(op.dep1),
                dep2: to_abs(op.dep2),
                issued: false,
                done: false,
                complete_cycle: 0,
                addr_resolved,
                value_source: None,
                counted_stall: false,
            });
            self.next_fetch += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{MemoryModelPolicy, SimConfig};
    use crate::trace::MicroOp;
    use crate::workload::{WorkloadSpec, WorkloadSuite};

    fn run(policy: MemoryModelPolicy, trace: &Trace) -> SimStats {
        Simulator::new(SimConfig::haswell_like(policy)).run(trace)
    }

    #[test]
    fn empty_trace_terminates_immediately() {
        let trace = Trace::new("empty", vec![]);
        let stats = run(MemoryModelPolicy::Gam, &trace);
        assert_eq!(stats.committed_uops, 0);
    }

    #[test]
    fn independent_alu_ops_reach_high_upc() {
        let ops = vec![MicroOp::simple(UopKind::IntAlu); 20_000];
        let trace = Trace::new("alu", ops);
        let stats = run(MemoryModelPolicy::Gam, &trace);
        assert_eq!(stats.committed_uops, 20_000);
        assert!(
            stats.upc() > 3.0,
            "independent ALU ops should sustain close to 4 uPC, got {}",
            stats.upc()
        );
    }

    #[test]
    fn dependent_chain_is_serialised() {
        let mut ops = vec![MicroOp::simple(UopKind::IntAlu)];
        for _ in 1..10_000 {
            let mut op = MicroOp::simple(UopKind::IntAlu);
            op.dep1 = Some(1);
            ops.push(op);
        }
        let trace = Trace::new("chain", ops);
        let stats = run(MemoryModelPolicy::Gam, &trace);
        assert!(
            stats.upc() < 1.2,
            "a serial dependence chain cannot exceed 1 uPC, got {}",
            stats.upc()
        );
    }

    #[test]
    fn all_uops_commit_exactly_once_despite_squashes() {
        let spec = WorkloadSpec::same_addr_heavy("squashy", 16 * 1024);
        let trace = spec.generate(30_000, 3);
        for policy in MemoryModelPolicy::ALL {
            let stats = run(policy, &trace);
            assert_eq!(stats.committed_uops as usize, trace.len(), "{policy}");
            assert!(stats.cycles > 0);
        }
    }

    #[test]
    fn pointer_chase_is_slower_than_streaming() {
        let chase = WorkloadSpec::pointer_chase("chase", 8 * 1024 * 1024).generate(30_000, 5);
        let stream = WorkloadSpec::streaming("stream", 64 * 1024, 8).generate(30_000, 5);
        let chase_stats = run(MemoryModelPolicy::Gam, &chase);
        let stream_stats = run(MemoryModelPolicy::Gam, &stream);
        assert!(
            chase_stats.upc() < stream_stats.upc(),
            "dependent misses must hurt throughput ({} vs {})",
            chase_stats.upc(),
            stream_stats.upc()
        );
    }

    #[test]
    fn mispredictions_cost_cycles() {
        let clean = WorkloadSpec::branchy("clean", 0.0).generate(30_000, 7);
        let dirty = WorkloadSpec::branchy("dirty", 0.15).generate(30_000, 7);
        let clean_stats = run(MemoryModelPolicy::Gam, &clean);
        let dirty_stats = run(MemoryModelPolicy::Gam, &dirty);
        assert!(dirty_stats.branch_mispredicts > 500);
        assert_eq!(clean_stats.branch_mispredicts, 0);
        assert!(dirty_stats.upc() < clean_stats.upc());
    }

    /// A store whose data arrives late, followed by two loads of its address:
    /// the first load waits for the store data, the second hits the
    /// same-address load-load *stall* of GAM/ARM.
    fn stall_trace() -> Trace {
        let mut ops = vec![MicroOp::simple(UopKind::IntDiv)];
        // Constant-address store whose data comes from the slow divide.
        ops.push(MicroOp::store(0x100, Some(1)));
        ops.push(MicroOp::load(0x100, None));
        ops.push(MicroOp::load(0x100, None));
        ops.extend(std::iter::repeat_n(MicroOp::simple(UopKind::IntAlu), 50));
        Trace::new("stall-shape", ops)
    }

    /// A load whose address resolves late, while a younger same-address load
    /// already executed from memory: the GAM *kill* of constraint SALdLd.
    fn kill_trace() -> Trace {
        let mut ops = vec![MicroOp::simple(UopKind::IntDiv)];
        ops.push(MicroOp::load(0x200, Some(1)));
        ops.push(MicroOp::load(0x200, None));
        ops.extend(std::iter::repeat_n(MicroOp::simple(UopKind::IntAlu), 50));
        Trace::new("kill-shape", ops)
    }

    /// Two loads of the same address: the older one completes early but stays
    /// in the window behind a long divide chain; the younger only becomes
    /// ready once the chain retires, at which point Alpha\* forwards
    /// load-to-load while the other policies access the cache again.
    fn load_forward_trace() -> Trace {
        let mut ops = vec![MicroOp::simple(UopKind::IntDiv)];
        for _ in 0..13 {
            let mut op = MicroOp::simple(UopKind::IntDiv);
            op.dep1 = Some(1);
            ops.push(op);
        }
        ops.push(MicroOp::load(0x300, None));
        // Ready once the *second to last* divide finishes: the older load is
        // done by then but still sits in the window behind the last divide.
        ops.push(MicroOp::load(0x300, Some(3)));
        ops.extend(std::iter::repeat_n(MicroOp::simple(UopKind::IntAlu), 20));
        Trace::new("load-forward-shape", ops)
    }

    #[test]
    fn same_address_stalls_only_under_gam_and_arm() {
        let trace = stall_trace();
        let gam = run(MemoryModelPolicy::Gam, &trace);
        let arm = run(MemoryModelPolicy::Arm, &trace);
        let gam0 = run(MemoryModelPolicy::Gam0, &trace);
        let alpha = run(MemoryModelPolicy::AlphaStar, &trace);
        assert!(gam.same_addr_load_stalls >= 1, "GAM must stall the younger load");
        assert!(arm.same_addr_load_stalls >= 1, "ARM keeps the stall behaviour");
        assert_eq!(gam0.same_addr_load_stalls, 0, "GAM0 never stalls on same-address loads");
        assert_eq!(alpha.same_addr_load_stalls, 0);
    }

    #[test]
    fn same_address_kills_only_under_gam() {
        let trace = kill_trace();
        let gam = run(MemoryModelPolicy::Gam, &trace);
        let arm = run(MemoryModelPolicy::Arm, &trace);
        let gam0 = run(MemoryModelPolicy::Gam0, &trace);
        let alpha = run(MemoryModelPolicy::AlphaStar, &trace);
        assert!(gam.same_addr_load_kills >= 1, "GAM must squash the early younger load");
        assert_eq!(arm.same_addr_load_kills, 0, "ARM is modelled without kills");
        assert_eq!(gam0.same_addr_load_kills, 0);
        assert_eq!(alpha.same_addr_load_kills, 0);
        // All policies still retire the whole trace.
        assert_eq!(gam.committed_uops as usize, trace.len());
    }

    #[test]
    fn load_load_forwarding_only_under_alpha_star() {
        let trace = load_forward_trace();
        let gam = run(MemoryModelPolicy::Gam, &trace);
        let alpha = run(MemoryModelPolicy::AlphaStar, &trace);
        assert!(alpha.load_load_forwardings >= 1, "Alpha* must forward load-to-load");
        assert_eq!(gam.load_load_forwardings, 0);
        assert_eq!(run(MemoryModelPolicy::Arm, &trace).load_load_forwardings, 0);
        assert_eq!(run(MemoryModelPolicy::Gam0, &trace).load_load_forwardings, 0);
    }

    #[test]
    fn suite_workloads_keep_same_address_events_rare() {
        // The paper's headline statistic (Table II): kills and stalls are rare
        // even though they do occur. On an ordinary mixed workload both rates
        // must stay below a handful per thousand micro-ops.
        let trace = WorkloadSpec::mixed("rare-events", 256 * 1024, 0.03).generate(40_000, 11);
        let gam = run(MemoryModelPolicy::Gam, &trace);
        assert!(gam.kills_per_kilo_uop() < 5.0, "kills/1K = {}", gam.kills_per_kilo_uop());
        assert!(gam.stalls_per_kilo_uop() < 5.0, "stalls/1K = {}", gam.stalls_per_kilo_uop());
        let gam0 = run(MemoryModelPolicy::Gam0, &trace);
        assert_eq!(gam0.same_addr_load_kills, 0);
        assert_eq!(gam0.same_addr_load_stalls, 0);
    }

    #[test]
    fn policy_upc_differences_are_small_on_regular_workloads() {
        // The headline claim of Figure 18: the four policies are within a few
        // per-cent of each other on ordinary workloads.
        let trace = WorkloadSpec::mixed("figure18-smoke", 256 * 1024, 0.03).generate(40_000, 13);
        let upcs: Vec<f64> = MemoryModelPolicy::ALL.iter().map(|&p| run(p, &trace).upc()).collect();
        let max = upcs.iter().cloned().fold(f64::MIN, f64::max);
        let min = upcs.iter().cloned().fold(f64::MAX, f64::min);
        assert!(
            (max - min) / max < 0.05,
            "policies should be within 5% on a mixed workload: {upcs:?}"
        );
    }

    #[test]
    fn store_to_load_forwarding_happens() {
        let trace = WorkloadSpec::store_heavy("fwd", 64 * 1024).generate(30_000, 17);
        let stats = run(MemoryModelPolicy::Gam, &trace);
        assert!(stats.store_to_load_forwardings > 0);
    }

    #[test]
    fn cache_statistics_are_populated() {
        let trace = WorkloadSpec::random_access("misses", 16 * 1024 * 1024).generate(30_000, 19);
        let stats = run(MemoryModelPolicy::Gam, &trace);
        assert!(stats.l1d_misses > 1_000, "a 16 MiB random footprint must miss a lot");
        assert!(stats.l1d_hits > 0);
        assert!(stats.l3_misses > 0);
    }

    #[test]
    fn whole_suite_runs_under_every_policy() {
        for spec in WorkloadSuite::small().specs() {
            let trace = spec.generate(10_000, 23);
            for policy in MemoryModelPolicy::ALL {
                let stats = Simulator::new(SimConfig::tiny(policy)).run(&trace);
                assert_eq!(stats.committed_uops as usize, trace.len());
                assert!(stats.upc() > 0.05);
            }
        }
    }
}
