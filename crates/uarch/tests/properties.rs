//! Property-based tests of the workload generators, the cache hierarchy and
//! the pipeline simulator.

use gam_uarch::cache::CacheHierarchy;
use gam_uarch::config::{CacheHierarchyConfig, MemoryModelPolicy, SimConfig};
use gam_uarch::workload::{WorkloadParams, WorkloadSpec};
use gam_uarch::{MicroOp, Simulator, Trace, UopKind};
use proptest::prelude::*;

/// Strategy: a small random trace with well-formed dependencies.
fn arbitrary_trace() -> impl Strategy<Value = Trace> {
    let op = (0u8..6, 0u64..4, 0u32..4, any::<bool>()).prop_map(|(kind, addr, dep, misp)| {
        let address = 0x2000 + addr * 8;
        match kind {
            0 => MicroOp::load(address, (dep > 0).then_some(dep)),
            1 => MicroOp::store(address, (dep > 0).then_some(dep)),
            2 => MicroOp::branch(misp),
            3 => MicroOp::simple(UopKind::IntMul),
            4 => {
                let mut alu = MicroOp::simple(UopKind::IntAlu);
                alu.dep1 = (dep > 0).then_some(dep);
                alu
            }
            _ => MicroOp::simple(UopKind::FpAlu),
        }
    });
    proptest::collection::vec(op, 0..120).prop_map(|mut ops| {
        for (i, op) in ops.iter_mut().enumerate() {
            op.dep1 = op.dep1.filter(|d| (*d as usize) <= i);
            op.dep2 = op.dep2.filter(|d| (*d as usize) <= i);
        }
        Trace::new("proptest", ops)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every policy retires exactly the trace, never more, never fewer.
    #[test]
    fn simulation_retires_the_whole_trace(trace in arbitrary_trace()) {
        for policy in MemoryModelPolicy::ALL {
            let stats = Simulator::new(SimConfig::tiny(policy)).run(&trace);
            prop_assert_eq!(stats.committed_uops as usize, trace.len());
            prop_assert_eq!(
                stats.committed_loads as usize,
                trace.ops().iter().filter(|o| o.kind == UopKind::Load).count()
            );
            prop_assert_eq!(
                stats.committed_stores as usize,
                trace.ops().iter().filter(|o| o.kind == UopKind::Store).count()
            );
            // uPC can never exceed the commit width.
            if stats.cycles > 0 {
                prop_assert!(stats.upc() <= SimConfig::tiny(policy).core.commit_width as f64 + 1e-9);
            }
        }
    }

    /// Policy capabilities are respected: only GAM kills, only GAM/ARM stall,
    /// only Alpha* forwards load-to-load.
    #[test]
    fn policy_capabilities_hold_on_random_traces(trace in arbitrary_trace()) {
        for policy in MemoryModelPolicy::ALL {
            let stats = Simulator::new(SimConfig::tiny(policy)).run(&trace);
            if !policy.kills_same_address_loads() {
                prop_assert_eq!(stats.same_addr_load_kills, 0);
            }
            if !policy.stalls_same_address_loads() {
                prop_assert_eq!(stats.same_addr_load_stalls, 0);
            }
            if !policy.allows_load_load_forwarding() {
                prop_assert_eq!(stats.load_load_forwardings, 0);
            }
            prop_assert!(stats.forwardings_that_hid_l1_misses <= stats.load_load_forwardings);
        }
    }

    /// The same (spec, ops, seed) triple always generates the same trace, and
    /// memory addresses stay inside the configured footprint.
    #[test]
    fn workload_generation_is_deterministic_and_bounded(
        footprint_kib in 1u64..64,
        ops in 100usize..800,
        seed in any::<u64>(),
    ) {
        let spec = WorkloadSpec::new(
            "prop",
            WorkloadParams { footprint_bytes: footprint_kib * 1024, ..WorkloadParams::default() },
        );
        let a = spec.generate(ops, seed);
        let b = spec.generate(ops, seed);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.len(), ops);
        for op in a.ops() {
            if op.is_memory() {
                prop_assert!(op.addr >= 0x1000_0000);
                prop_assert!(op.addr < 0x1000_0000 + footprint_kib * 1024);
            }
        }
    }

    /// Cache accesses are coherent with the hierarchy's latencies: an L1 hit
    /// costs exactly the L1 latency, anything else costs strictly more, and
    /// repeating an access immediately always hits.
    #[test]
    fn cache_latencies_are_ordered(addrs in proptest::collection::vec(0u64..0x8000, 1..100)) {
        let config = CacheHierarchyConfig::paper();
        let mut caches = CacheHierarchy::new(&config);
        let mut now = 0;
        let count = addrs.len() as u64;
        for addr in addrs {
            let first = caches.access(addr, now);
            now += first.latency;
            if first.l1_hit() {
                prop_assert_eq!(first.latency, config.l1d.hit_latency);
            } else {
                prop_assert!(first.latency > config.l1d.hit_latency);
            }
            let second = caches.access(addr, now);
            now += second.latency;
            prop_assert!(second.l1_hit());
        }
        prop_assert_eq!(caches.l1_hits() + caches.l1_misses(), 2 * count);
    }
}
