//! A minimal, dependency-free stand-in for the `rustc-hash` crate: the Fx
//! hash function (as used by the Rust compiler) plus the usual `FxHashMap` /
//! `FxHashSet` aliases.
//!
//! The build environment has no access to crates.io, so the real crate cannot
//! be vendored; this crate keeps the same import paths working. Fx is a
//! non-cryptographic multiply-rotate hash: for the small, trusted keys of a
//! state-space search (fixed-size machine configurations, integers) it is
//! several times faster than the standard library's SipHash-1-3 default and,
//! unlike SipHash, it is *deterministic across processes and runs* — a
//! property the exploration sharding relies on.
//!
//! Not DoS-resistant; never use it on attacker-controlled keys.

#![forbid(unsafe_code)]

use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` keyed by [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed by [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

/// The zero-seed build-hasher of [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// The multiplicative constant of the Fx hash (64-bit variant): a prime close
/// to `2^64 / phi`, giving good avalanche on the high bits after rotation.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx hash state: one 64-bit accumulator mixed word-by-word.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let tail = chunks.remainder();
        if !tail.is_empty() {
            let mut word = [0u8; 8];
            word[..tail.len()].copy_from_slice(tail);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_u128(&mut self, n: u128) {
        self.add_to_hash(n as u64);
        self.add_to_hash((n >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(value: &T) -> u64 {
        FxBuildHasher::default().hash_one(value)
    }

    #[test]
    fn deterministic_across_hasher_instances() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_eq!(hash_of(&"state"), hash_of(&"state"));
        assert_eq!(hash_of(&(1u8, vec![2u32, 3])), hash_of(&(1u8, vec![2u32, 3])));
    }

    #[test]
    fn distinguishes_nearby_keys() {
        assert_ne!(hash_of(&0u64), hash_of(&1u64));
        assert_ne!(hash_of(&"ab"), hash_of(&"ba"));
    }

    #[test]
    fn tail_bytes_affect_the_hash() {
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 4]);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut map: FxHashMap<&str, u32> = FxHashMap::default();
        map.insert("a", 1);
        assert_eq!(map.get("a"), Some(&1));
        let mut set: FxHashSet<u64> = FxHashSet::default();
        assert!(set.insert(7));
        assert!(!set.insert(7));
    }
}
