//! A minimal, dependency-free stand-in for the parts of the `proptest` crate
//! this workspace uses.
//!
//! The build environment has no access to crates.io, so the real `proptest`
//! cannot be vendored. This crate keeps the same import paths and test syntax
//! working: the `proptest!` macro, `prop_assert*`/`prop_assume!`/`prop_oneof!`,
//! `Strategy` + `prop_map`, integer-range / tuple / string-pattern / `any`
//! strategies and `collection::vec`.
//!
//! Differences from the real crate: no shrinking of failing inputs and no
//! persisted failure seeds — each test runs a fixed number of deterministic
//! cases seeded from the test's name, so failures are reproducible run to run.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Deterministic case generation and run configuration.

    /// The run configuration (`ProptestConfig` in the real crate).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Config {
        /// Number of accepted cases to run per property.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` accepted cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// Marker returned by `prop_assume!` when a case is rejected.
    #[derive(Debug, Clone, Copy)]
    pub struct Rejected;

    /// The deterministic generator handed to strategies (SplitMix64 core).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator from a test name (FNV-1a), so every property
        /// has its own reproducible stream.
        #[must_use]
        pub fn from_name(name: &str) -> Self {
            let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
            for byte in name.bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: hash ^ 0x9E37_79B9_7F4A_7C15 }
        }

        /// The next raw 64-bit draw.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// A draw in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            (((self.next_u64() as u128) * (bound as u128)) >> 64) as u64
        }
    }
}

pub mod strategy {
    //! The `Strategy` trait and its combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through a function.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        /// Type-erases the strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// The result of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    /// Always generates a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// A uniform choice between type-erased alternatives (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union; `arms` must be non-empty.
        #[must_use]
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> std::fmt::Debug for Union<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("Union").field("arms", &self.arms.len()).finish()
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let arm = rng.below(self.arms.len() as u64) as usize;
            self.arms[arm].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(
                        self.start < self.end,
                        "strategy range {}..{} is empty", self.start, self.end
                    );
                    let span = (self.end as u128 - self.start as u128) as u64;
                    self.start + rng.below(span) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident / $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A/0)
        (A/0, B/1)
        (A/0, B/1, C/2)
        (A/0, B/1, C/2, D/3)
        (A/0, B/1, C/2, D/3, E/4)
        (A/0, B/1, C/2, D/3, E/4, F/5)
    }

    /// Full-domain strategy selected by `any::<T>()`.
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    /// A strategy over the full domain of `T`.
    #[must_use]
    pub fn any<T>() -> Any<T>
    where
        Any<T>: Strategy<Value = T>,
    {
        Any(std::marker::PhantomData)
    }

    macro_rules! impl_any_uint {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_any_uint!(u8, u16, u32, u64, usize);

    impl Strategy for Any<bool> {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    // String-pattern strategies: a small subset of regex sufficient for the
    // patterns this workspace uses (sequences of literals and character
    // classes like `[a-z]`, each with an optional `{m}` / `{m,n}` repetition).
    impl Strategy for &'static str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            generate_from_pattern(self, rng)
        }
    }

    fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        let mut chars = pattern.chars().peekable();
        while let Some(c) = chars.next() {
            let choices: Vec<char> = if c == '[' {
                let mut class = Vec::new();
                let mut prev: Option<char> = None;
                loop {
                    match chars.next() {
                        None => panic!("unterminated character class in pattern `{pattern}`"),
                        Some(']') => break,
                        Some('-') => {
                            let lo = prev
                                .take()
                                .unwrap_or_else(|| panic!("dangling `-` in pattern `{pattern}`"));
                            let hi = chars
                                .next()
                                .unwrap_or_else(|| panic!("dangling `-` in pattern `{pattern}`"));
                            class.pop();
                            for ch in lo..=hi {
                                class.push(ch);
                            }
                        }
                        Some(ch) => {
                            class.push(ch);
                            prev = Some(ch);
                        }
                    }
                }
                class
            } else {
                vec![c]
            };
            assert!(!choices.is_empty(), "empty character class in pattern `{pattern}`");
            let (min, max) = if chars.peek() == Some(&'{') {
                chars.next();
                let mut spec = String::new();
                for ch in chars.by_ref() {
                    if ch == '}' {
                        break;
                    }
                    spec.push(ch);
                }
                match spec.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse::<usize>().expect("repetition lower bound"),
                        n.trim().parse::<usize>().expect("repetition upper bound"),
                    ),
                    None => {
                        let n = spec.trim().parse::<usize>().expect("repetition count");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            let count = min + rng.below((max - min + 1) as u64) as usize;
            for _ in 0..count {
                out.push(choices[rng.below(choices.len() as u64) as usize]);
            }
        }
        out
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The result of [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// A strategy for vectors whose length lies in `size` and whose elements
    /// come from `element`.
    #[must_use]
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "vec strategy size range is empty");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The usual glob import, mirroring `proptest::prelude::*`.

    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Runs a block of property tests (see the crate docs for the differences
/// from the real `proptest!`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($config) $($rest)*);
    };
    (@impl ($config:expr)
        $($(#[$meta:meta])* fn $name:ident ($($arg:ident in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            #[allow(clippy::redundant_closure_call)]
            fn $name() {
                let prop_config: $crate::test_runner::Config = $config;
                let mut prop_rng = $crate::test_runner::TestRng::from_name(stringify!($name));
                let mut prop_accepted: u32 = 0;
                let mut prop_rejected: u32 = 0;
                while prop_accepted < prop_config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut prop_rng);)+
                    let prop_outcome: ::std::result::Result<(), $crate::test_runner::Rejected> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match prop_outcome {
                        ::std::result::Result::Ok(()) => prop_accepted += 1,
                        ::std::result::Result::Err(_) => {
                            prop_rejected += 1;
                            assert!(
                                prop_rejected < prop_config.cases.saturating_mul(64).max(1024),
                                "too many prop_assume! rejections in {}",
                                stringify!($name)
                            );
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// Asserts a condition inside a property (no shrinking in this stand-in).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Rejects the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::Rejected);
        }
    };
}

/// A uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::Strategy::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_tuples_and_vecs_generate_in_bounds() {
        let mut rng = crate::test_runner::TestRng::from_name("bounds");
        let strat = (0u8..3, 10usize..20);
        for _ in 0..200 {
            let (a, b) = strat.generate(&mut rng);
            assert!(a < 3);
            assert!((10..20).contains(&b));
        }
        let vecs = crate::collection::vec(0u32..5, 1..4);
        for _ in 0..200 {
            let v = vecs.generate(&mut rng);
            assert!((1..4).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn string_patterns_generate_matching_strings() {
        let mut rng = crate::test_runner::TestRng::from_name("strings");
        for _ in 0..200 {
            let s = "[a-z]{1,6}".generate(&mut rng);
            assert!((1..=6).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
        let s = "ab[0-1]{2}".generate(&mut rng);
        assert_eq!(&s[..2], "ab");
        assert_eq!(s.len(), 4);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn the_macro_itself_works(x in 0u64..100, v in crate::collection::vec(0u8..4, 0..5)) {
            prop_assume!(x != 13);
            prop_assert!(x < 100);
            prop_assert_eq!(v.len(), v.len());
            prop_assert_ne!(x, 13);
        }
    }

    proptest! {
        #[test]
        fn oneof_and_any(choice in prop_oneof![Just(1u8), Just(2u8)], y in any::<bool>()) {
            prop_assert!(choice == 1 || choice == 2);
            let _ = y;
        }
    }
}
