//! A minimal, dependency-free stand-in for the parts of the `rand` crate this
//! workspace uses (`StdRng::seed_from_u64`, `Rng::gen`, `Rng::gen_range`,
//! `Rng::gen_bool`).
//!
//! The build environment has no access to crates.io, so the real `rand` crate
//! cannot be vendored; this crate keeps the same import paths working. The
//! generator is SplitMix64 — statistically solid for simulation workloads and
//! deterministic for a given seed, though its streams intentionally do *not*
//! match the real `StdRng` (any seed-derived expectations in tests must hold
//! for every reasonable PRNG, which they do).

#![forbid(unsafe_code)]

/// Standard RNG types, mirroring `rand::rngs`.
pub mod rngs {
    /// A seedable pseudo-random generator (SplitMix64 core).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        pub(crate) state: u64,
    }
}

use rngs::StdRng;

/// Seeding interface, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // Avoid the all-zero state pathologies by pre-mixing the seed once.
        let mut rng = StdRng { state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15) };
        let _ = rng.next_u64();
        rng
    }
}

impl StdRng {
    fn next_u64(&mut self) -> u64 {
        // SplitMix64 (Steele, Lea, Flood 2014).
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types that can be sampled uniformly from their full domain (`Rng::gen`).
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample(rng: &mut StdRng) -> Self;
}

impl Standard for u64 {
    fn sample(rng: &mut StdRng) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample(rng: &mut StdRng) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn sample(rng: &mut StdRng) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample(rng: &mut StdRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample(rng: &mut StdRng) -> Self {
        // 53 uniformly random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types usable as `gen_range` bounds.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws a value in `[low, high)`.
    fn sample_range(rng: &mut StdRng, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(rng: &mut StdRng, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range called with an empty range");
                let span = (high as u128) - (low as u128);
                // Widening-multiply range reduction (Lemire); the tiny residual
                // bias over a u64 draw is irrelevant for simulation workloads.
                let draw = ((rng.next_u64() as u128) * span) >> 64;
                low + draw as $t
            }
        }
    )*};
}

impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

/// The sampling interface, mirroring `rand::Rng`.
pub trait Rng {
    /// Draws one value of an inferred type from its full domain.
    fn gen<T: Standard>(&mut self) -> T;

    /// Draws a value uniformly from a half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T;

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool;
}

impl Rng for StdRng {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn f64_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            let x = rng.gen_range(3usize..10);
            assert!((3..10).contains(&x));
            seen[x - 3] = true;
        }
        assert!(seen.iter().all(|&s| s), "every bucket of a small range is hit");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "~25% expected, got {hits}");
    }
}
