//! A minimal, dependency-free stand-in for the parts of the `criterion`
//! benchmark framework this workspace uses.
//!
//! The build environment has no access to crates.io, so the real `criterion`
//! cannot be vendored. This crate keeps `cargo bench` working with the same
//! bench sources: it runs each benchmark for a fixed number of timed samples
//! (after a short warm-up) and prints the mean, minimum and maximum sample
//! time. There are no statistical refinements, HTML reports or baselines.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque hint that stops the optimiser from deleting a value (best-effort
/// safe-Rust version: a volatile-free identity through `std::hint::black_box`).
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// A benchmark identifier: `group/function/parameter`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId { label: format!("{function}/{parameter}") }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Times closures; handed to the benchmark body.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    iterations_per_sample: u32,
    sample_count: u32,
}

impl Bencher {
    fn with_samples(sample_count: u32) -> Self {
        Bencher { samples: Vec::new(), iterations_per_sample: 1, sample_count }
    }

    /// Runs the routine repeatedly and records per-sample wall time.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up, and calibration of iterations per sample for fast routines.
        let calibration = Instant::now();
        black_box(routine());
        let once = calibration.elapsed();
        let target = Duration::from_millis(2);
        self.iterations_per_sample = if once < target && !once.is_zero() {
            (target.as_nanos() / once.as_nanos().max(1)).clamp(1, 10_000) as u32
        } else {
            1
        };

        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..self.iterations_per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / self.iterations_per_sample);
        }
    }

    fn report(&self, label: &str) {
        if self.samples.is_empty() {
            println!("{label:<48} (no samples)");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = self.samples.iter().min().expect("non-empty");
        let max = self.samples.iter().max().expect("non-empty");
        println!(
            "{label:<48} mean {:>12?}   min {:>12?}   max {:>12?}   ({} samples x {} iters)",
            mean,
            min,
            max,
            self.samples.len(),
            self.iterations_per_sample
        );
    }
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u32,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark. The
    /// `GAM_BENCH_SAMPLES` environment variable overrides every configured
    /// size (CI sets it to 1 for a smoke run that only proves the benches
    /// still execute).
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = sample_override().unwrap_or(samples.max(1) as u32);
        self
    }

    /// Benchmarks a routine that borrows a prepared input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        routine: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        let mut bencher = Bencher::with_samples(self.sample_size);
        routine(&mut bencher, input);
        bencher.report(&format!("{}/{id}", self.name));
        self
    }

    /// Benchmarks a routine without a prepared input.
    pub fn bench_function(
        &mut self,
        id: impl fmt::Display,
        routine: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        let mut bencher = Bencher::with_samples(self.sample_size);
        routine(&mut bencher);
        bencher.report(&format!("{}/{id}", self.name));
        self
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(&mut self) {}
}

/// The sample-count override from `GAM_BENCH_SAMPLES`, if set and parsable.
fn sample_override() -> Option<u32> {
    std::env::var("GAM_BENCH_SAMPLES").ok()?.parse().ok().map(|n: u32| n.max(1))
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== bench group `{name}`");
        BenchmarkGroup { name, sample_size: sample_override().unwrap_or(20), _criterion: self }
    }

    /// Kept for API compatibility with the real `criterion_group!` expansion.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// Declares a benchmark group runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_full_group_runs_and_reports() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("smoke");
        group.sample_size(3);
        group.bench_function("sum", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
        });
        group.bench_with_input(BenchmarkId::new("sum_to", 50u64), &50u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
        });
        group.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("p").to_string(), "p");
    }
}
