//! Structured, serializable suite results.

use std::collections::BTreeSet;
use std::fmt;
use std::time::Duration;

use gam_axiomatic::Verdict;
use gam_core::ModelKind;
use gam_isa::litmus::Outcome;

use crate::engine::Backend;
use crate::json::{Json, ToJson};

/// The result of checking one litmus test.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestReport {
    /// Litmus-test name.
    pub test: String,
    /// The verdict on the test's condition of interest, or `None` if the
    /// backend failed on this test.
    pub verdict: Option<Verdict>,
    /// The complete allowed-outcome set (empty on error).
    pub outcomes: BTreeSet<Outcome>,
    /// The backend error, if any.
    pub error: Option<String>,
    /// Wall time spent checking this test.
    pub wall: Duration,
}

impl TestReport {
    /// Returns true if the backend produced a verdict (no error).
    #[must_use]
    pub fn is_ok(&self) -> bool {
        self.error.is_none()
    }
}

impl ToJson for TestReport {
    fn to_json(&self) -> Json {
        Json::object([
            ("test", Json::from(self.test.as_str())),
            ("verdict", self.verdict.to_json()),
            ("outcomes", Json::array(self.outcomes.iter().map(ToJson::to_json))),
            ("error", self.error.as_deref().map_or(Json::Null, Json::from)),
            ("wall_us", Json::from(self.wall.as_micros().min(u128::from(u64::MAX)) as u64)),
        ])
    }
}

/// The result of running a whole litmus suite through one `(model, backend)`
/// engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuiteReport {
    /// Name of the suite (e.g. a corpus directory), if the caller gave one.
    pub suite: Option<String>,
    /// The backend that ran the suite.
    pub backend: Backend,
    /// The model that was checked.
    pub model: ModelKind,
    /// Worker threads actually used.
    pub parallelism: usize,
    /// Wall time of the whole suite run.
    pub wall: Duration,
    /// Per-test results, in the suite's input order.
    pub reports: Vec<TestReport>,
}

impl SuiteReport {
    /// Names the suite (builder-style), e.g. after the corpus it ran.
    #[must_use]
    pub fn named(mut self, suite: impl Into<String>) -> Self {
        self.suite = Some(suite.into());
        self
    }

    /// The report of one test, by name.
    #[must_use]
    pub fn report_for(&self, test: &str) -> Option<&TestReport> {
        self.reports.iter().find(|report| report.test == test)
    }

    /// Returns true if every test produced a verdict.
    #[must_use]
    pub fn all_ok(&self) -> bool {
        self.reports.iter().all(TestReport::is_ok)
    }

    /// `(test, verdict)` pairs in input order (`None` where a test errored).
    pub fn verdicts(&self) -> impl Iterator<Item = (&str, Option<Verdict>)> {
        self.reports.iter().map(|report| (report.test.as_str(), report.verdict))
    }

    /// Returns true if `other` reports exactly the same tests with exactly
    /// the same verdicts and allowed-outcome sets (backend, parallelism and
    /// timings are ignored). This is the suite-level equivalence check.
    #[must_use]
    pub fn agrees_with(&self, other: &SuiteReport) -> bool {
        self.reports.len() == other.reports.len()
            && self.reports.iter().zip(&other.reports).all(|(mine, theirs)| {
                mine.test == theirs.test
                    && mine.verdict == theirs.verdict
                    && mine.outcomes == theirs.outcomes
            })
    }

    /// Serializes the whole report as a JSON string.
    #[must_use]
    pub fn to_json_string(&self) -> String {
        self.to_json().to_string()
    }
}

impl ToJson for SuiteReport {
    fn to_json(&self) -> Json {
        Json::object([
            ("suite", self.suite.as_deref().map_or(Json::Null, Json::from)),
            ("backend", Json::from(self.backend.name())),
            ("model", Json::from(self.model.to_string())),
            ("parallelism", Json::from(self.parallelism as u64)),
            ("wall_us", Json::from(self.wall.as_micros().min(u128::from(u64::MAX)) as u64)),
            ("tests", Json::array(self.reports.iter().map(ToJson::to_json))),
        ])
    }
}

impl fmt::Display for SuiteReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "suite{}: {} tests under {} ({} backend, {} workers, {:.1} ms)",
            self.suite.as_deref().map(|name| format!(" `{name}`")).unwrap_or_default(),
            self.reports.len(),
            self.model,
            self.backend,
            self.parallelism,
            self.wall.as_secs_f64() * 1e3,
        )?;
        for report in &self.reports {
            match (&report.verdict, &report.error) {
                (Some(verdict), _) => writeln!(
                    f,
                    "  {:<24} {:>9}  {} outcomes",
                    report.test,
                    verdict.to_string(),
                    report.outcomes.len()
                )?,
                (None, Some(error)) => writeln!(f, "  {:<24} ERROR: {error}", report.test)?,
                (None, None) => writeln!(f, "  {:<24} (no result)", report.test)?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use gam_isa::litmus::library;

    fn sample_report() -> SuiteReport {
        Engine::builder()
            .model(ModelKind::Gam)
            .parallelism(2)
            .build()
            .unwrap()
            .run_suite(&[library::dekker(), library::corr()])
    }

    #[test]
    fn accessors_and_display() {
        let report = sample_report();
        assert!(report.all_ok());
        assert_eq!(report.report_for("dekker").unwrap().verdict, Some(Verdict::Allowed));
        assert_eq!(report.report_for("corr").unwrap().verdict, Some(Verdict::Forbidden));
        assert!(report.report_for("nope").is_none());
        let verdicts: Vec<_> = report.verdicts().collect();
        assert_eq!(verdicts[0], ("dekker", Some(Verdict::Allowed)));
        let text = report.to_string();
        assert!(text.contains("dekker"));
        assert!(text.contains("allowed"));
        assert!(text.contains("axiomatic"));
    }

    #[test]
    fn agreement_ignores_backend_and_timing() {
        let axiomatic = sample_report();
        let operational = Engine::operational(ModelKind::Gam)
            .unwrap()
            .run_suite(&[library::dekker(), library::corr()]);
        assert!(axiomatic.agrees_with(&operational));
        assert!(operational.agrees_with(&axiomatic));
        let shorter = Engine::axiomatic(ModelKind::Gam).run_suite(&[library::dekker()]);
        assert!(!axiomatic.agrees_with(&shorter));
    }

    #[test]
    fn suite_names_flow_into_display_and_json() {
        let anonymous = sample_report();
        assert_eq!(anonymous.suite, None);
        assert!(anonymous.to_json_string().contains("\"suite\":null"));
        let named = sample_report().named("tests/corpus");
        assert_eq!(named.suite.as_deref(), Some("tests/corpus"));
        assert!(named.to_string().contains("suite `tests/corpus`:"));
        assert!(named.to_json_string().contains("\"suite\":\"tests/corpus\""));
        // Naming does not affect suite-level agreement.
        assert!(named.agrees_with(&anonymous));
    }

    #[test]
    fn json_round_trips_the_interesting_fields() {
        let json = sample_report().to_json_string();
        assert!(json.starts_with('{'));
        assert!(json.contains("\"backend\":\"axiomatic\""));
        assert!(json.contains("\"model\":\"GAM\""));
        assert!(json.contains("\"test\":\"dekker\""));
        assert!(json.contains("\"verdict\":\"allowed\""));
        assert!(json.contains("\"wall_us\":"));
        assert!(json.contains("\"outcomes\":["));
    }
}
