//! The [`Engine`] facade: backend selection, configuration and parallel
//! litmus-suite execution.

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use gam_axiomatic::{AxiomaticChecker, CheckerConfig, Verdict};
use gam_core::{model, CancelToken, ModelKind};
use gam_isa::litmus::LitmusTest;
use gam_operational::{ExplorerConfig, MemoryConfig, OperationalChecker, Reduction};

use crate::checker::Checker;
use crate::error::EngineError;
use crate::report::{SuiteReport, TestReport};
use crate::session::{check_job, CheckBudget, CheckHandle, SessionOutcome, SessionPool};

/// The two formal backends of the reproduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Backend {
    /// The axiomatic execution enumerator (`gam-axiomatic`).
    Axiomatic,
    /// The abstract-machine explorer (`gam-operational`).
    Operational,
}

impl Backend {
    /// Both backends, in a fixed order.
    pub const ALL: [Backend; 2] = [Backend::Axiomatic, Backend::Operational];

    /// A short lowercase name (`"axiomatic"` / `"operational"`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Backend::Axiomatic => "axiomatic",
            Backend::Operational => "operational",
        }
    }

    /// Returns true if this backend has semantics for `model`.
    ///
    /// Every model has an axiomatic definition; the operational machines
    /// exist for SC, TSO, GAM and GAM0 but not for GAM-ARM (the paper defines
    /// the ARM-style same-address variant only axiomatically).
    #[must_use]
    pub fn supports(self, model: ModelKind) -> bool {
        match self {
            Backend::Axiomatic => true,
            Backend::Operational => OperationalChecker::supports(model),
        }
    }
}

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Configures and constructs an [`Engine`].
///
/// Defaults: GAM model, axiomatic backend, parallelism of 1.
#[derive(Debug, Clone)]
pub struct EngineBuilder {
    model: ModelKind,
    backend: Backend,
    parallelism: usize,
    axiomatic_config: CheckerConfig,
    explorer_config: ExplorerConfig,
    explorer_memory: MemoryConfig,
}

impl Default for EngineBuilder {
    fn default() -> Self {
        EngineBuilder {
            model: ModelKind::Gam,
            backend: Backend::Axiomatic,
            parallelism: 1,
            axiomatic_config: CheckerConfig::default(),
            explorer_config: ExplorerConfig::default(),
            explorer_memory: MemoryConfig::default(),
        }
    }
}

impl EngineBuilder {
    /// Selects the memory model.
    #[must_use]
    pub fn model(mut self, model: ModelKind) -> Self {
        self.model = model;
        self
    }

    /// Selects the backend.
    #[must_use]
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Sets the number of worker threads used by [`Engine::run_suite`].
    /// Values are clamped to at least 1.
    #[must_use]
    pub fn parallelism(mut self, parallelism: usize) -> Self {
        self.parallelism = parallelism.max(1);
        self
    }

    /// Sets the parallelism to the machine's available hardware parallelism.
    #[must_use]
    pub fn parallelism_available(self) -> Self {
        let n = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        self.parallelism(n)
    }

    /// Overrides the axiomatic checker limits (axiomatic backend only).
    #[must_use]
    pub fn axiomatic_config(mut self, config: CheckerConfig) -> Self {
        self.axiomatic_config = config;
        self
    }

    /// Overrides the operational explorer limits (operational backend only).
    #[must_use]
    pub fn explorer_config(mut self, config: ExplorerConfig) -> Self {
        self.explorer_config = config;
        self
    }

    /// Sets the operational explorer's memory-pressure configuration:
    /// byte budget, spill directory and/or intra-exploration checkpoint
    /// plan (operational backend only). A [`CheckBudget::max_bytes`] on an
    /// individual check overrides the budget set here; the spill directory
    /// and checkpoint plan always carry over into budgeted checks.
    #[must_use]
    pub fn explorer_memory(mut self, memory: MemoryConfig) -> Self {
        self.explorer_memory = memory;
        self
    }

    /// Sets the directory the operational explorer may spill cold arena
    /// segments into when a memory budget nears exhaustion (operational
    /// backend only; spilling stays off without a byte budget).
    #[must_use]
    pub fn explorer_spill_dir(mut self, dir: std::path::PathBuf) -> Self {
        self.explorer_memory.spill_dir = Some(dir);
        self
    }

    /// Caps the operational explorer's accounted memory footprint
    /// (operational backend only). See [`CheckBudget::max_bytes`] for the
    /// per-check override.
    #[must_use]
    pub fn explorer_mem_budget(mut self, max_bytes: usize) -> Self {
        self.explorer_memory.max_bytes = Some(max_bytes);
        self
    }

    /// Sets the number of worker threads the operational explorer shards
    /// each test's state-space frontier across (operational backend only;
    /// clamped to at least 1). This composes with
    /// [`EngineBuilder::parallelism`]: the suite fans tests out over the
    /// engine's workers (cross-test work-stealing is the primary
    /// parallelism axis — litmus-scale tests are far cheaper to run
    /// whole-test-per-worker than to shard), and each exploration *can*
    /// itself go parallel — adaptively: sharding only kicks in once a
    /// test's running state count passes
    /// [`EngineBuilder::explorer_parallel_threshold`], so small state
    /// spaces never pay thread overhead.
    #[must_use]
    pub fn explorer_parallelism(mut self, parallelism: usize) -> Self {
        self.explorer_config.parallelism = parallelism.max(1);
        self
    }

    /// Sets the adaptive-sharding trigger of the per-test explorer: with
    /// [`EngineBuilder::explorer_parallelism`] above 1, an exploration
    /// still starts sequentially and escalates to the sharded parallel
    /// driver only after interning this many states with frontier work
    /// remaining. `0` shards immediately (the pre-adaptive behaviour).
    #[must_use]
    pub fn explorer_parallel_threshold(mut self, threshold: usize) -> Self {
        self.explorer_config.parallel_threshold = threshold;
        self
    }

    /// Selects the operational explorer's partial-order/symmetry reduction
    /// mode (operational backend only). Reduced exploration produces the
    /// same outcome sets while visiting a fraction of the interleavings —
    /// the agreement is pinned by the reduction test-suite for the whole
    /// litmus library.
    #[must_use]
    pub fn reduction(mut self, reduction: Reduction) -> Self {
        self.explorer_config.reduction = reduction;
        self
    }

    /// Builds the engine.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::UnsupportedModel`] if the selected backend has
    /// no semantics for the selected model (e.g. operational GAM-ARM).
    pub fn build(self) -> Result<Engine, EngineError> {
        if !self.backend.supports(self.model) {
            return Err(EngineError::UnsupportedModel { backend: self.backend, model: self.model });
        }
        let checker: Arc<dyn Checker> = match self.backend {
            Backend::Axiomatic => Arc::new(AxiomaticChecker::with_config(
                model::by_kind(self.model),
                self.axiomatic_config,
            )),
            Backend::Operational => Arc::new(
                OperationalChecker::with_config(self.model, self.explorer_config)
                    .with_memory(self.explorer_memory),
            ),
        };
        Ok(Engine { checker, parallelism: self.parallelism, sessions: OnceLock::new() })
    }
}

/// A polymorphic checking facade over one `(model, backend)` pair.
///
/// The engine answers single-test queries through the [`Checker`] trait and
/// runs whole litmus suites in parallel across a thread pool, producing a
/// structured [`SuiteReport`].
///
/// # Example
///
/// ```
/// use gam_engine::{Backend, Engine};
/// use gam_core::ModelKind;
/// use gam_isa::litmus::library;
///
/// let engine = Engine::builder()
///     .model(ModelKind::Gam)
///     .backend(Backend::Axiomatic)
///     .parallelism(4)
///     .build()
///     .unwrap();
/// let report = engine.run_suite(&library::paper_tests());
/// assert!(report.all_ok());
/// ```
pub struct Engine {
    checker: Arc<dyn Checker>,
    parallelism: usize,
    /// The session worker pool behind [`Engine::submit`], started lazily on
    /// first submission so blocking-only engines never spawn threads.
    /// Dropping the engine drains the queue and joins the workers.
    sessions: OnceLock<SessionPool>,
}

impl fmt::Debug for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Engine")
            .field("backend", &self.backend())
            .field("model", &self.model())
            .field("parallelism", &self.parallelism)
            .finish()
    }
}

impl Engine {
    /// Starts configuring an engine.
    #[must_use]
    pub fn builder() -> EngineBuilder {
        EngineBuilder::default()
    }

    /// An axiomatic engine for `model` with default limits (never fails: the
    /// axiomatic backend covers every model).
    #[must_use]
    pub fn axiomatic(model: ModelKind) -> Engine {
        Engine::builder()
            .model(model)
            .backend(Backend::Axiomatic)
            .build()
            .expect("the axiomatic backend supports every model")
    }

    /// An operational engine for `model` with default limits.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::UnsupportedModel`] for models without an
    /// abstract machine (GAM-ARM).
    pub fn operational(model: ModelKind) -> Result<Engine, EngineError> {
        Engine::builder().model(model).backend(Backend::Operational).build()
    }

    /// The underlying checker as a trait object.
    #[must_use]
    pub fn checker(&self) -> &dyn Checker {
        &*self.checker
    }

    /// The engine's backend.
    #[must_use]
    pub fn backend(&self) -> Backend {
        self.checker.backend()
    }

    /// The engine's model.
    #[must_use]
    pub fn model(&self) -> ModelKind {
        self.checker.model()
    }

    /// The worker-thread count used by [`Engine::run_suite`].
    #[must_use]
    pub fn parallelism(&self) -> usize {
        self.parallelism
    }

    /// Decides whether the test's condition of interest is allowed.
    ///
    /// # Errors
    ///
    /// Propagates the backend's [`EngineError`].
    pub fn check(&self, test: &LitmusTest) -> Result<Verdict, EngineError> {
        let mut span = gam_obs::trace::span("engine.check");
        span.arg("test", test.name());
        span.arg("backend", self.backend());
        self.checker.check(test)
    }

    /// The complete allowed-outcome set of the test.
    ///
    /// # Errors
    ///
    /// Propagates the backend's [`EngineError`].
    pub fn allowed_outcomes(
        &self,
        test: &LitmusTest,
    ) -> Result<std::collections::BTreeSet<gam_isa::litmus::Outcome>, EngineError> {
        let mut span = gam_obs::trace::span("engine.allowed_outcomes");
        span.arg("test", test.name());
        self.checker.allowed_outcomes(test)
    }

    /// A witness outcome for the test's condition of interest, if allowed.
    ///
    /// # Errors
    ///
    /// Propagates the backend's [`EngineError`].
    pub fn find_witness(
        &self,
        test: &LitmusTest,
    ) -> Result<Option<gam_isa::litmus::Outcome>, EngineError> {
        self.checker.find_witness(test)
    }

    /// Decides the test under a [`CheckBudget`], blocking until the check
    /// finishes, is cancelled from another thread, or exhausts the budget —
    /// whichever comes first. Budget exhaustion answers with
    /// [`crate::SessionVerdict::Inconclusive`] carrying the partial
    /// outcomes; a panicking checker answers with
    /// [`EngineError::Panicked`] instead of unwinding into the caller.
    ///
    /// # Errors
    ///
    /// Propagates backend errors other than interruption and state-limit
    /// exhaustion, plus [`EngineError::Panicked`].
    pub fn check_budgeted(
        &self,
        test: &LitmusTest,
        budget: &CheckBudget,
    ) -> Result<SessionOutcome, EngineError> {
        let start = Instant::now();
        let mut span = gam_obs::trace::span("engine.check");
        span.arg("test", test.name());
        span.arg("backend", self.backend());
        let cancel = CancelToken::new();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.checker.check_budgeted(test, budget, cancel)
        }));
        match result {
            Ok(Ok(verdict)) => Ok(SessionOutcome { verdict, wall: start.elapsed() }),
            Ok(Err(err)) => Err(err),
            Err(payload) => Err(EngineError::panicked(&*payload)),
        }
    }

    /// Submits an unbudgeted (but cancellable, panic-isolated) check to the
    /// engine's session worker pool and returns immediately with a
    /// [`CheckHandle`].
    #[must_use]
    pub fn submit(&self, test: &LitmusTest) -> CheckHandle {
        self.submit_budgeted(test, CheckBudget::none())
    }

    /// Submits a budgeted check to the engine's session worker pool and
    /// returns immediately with a [`CheckHandle`]. The pool has
    /// [`Engine::parallelism`] workers and is started on first use; checks
    /// queue FIFO behind busy workers. The budget's wall clock starts when
    /// the check starts executing, not when it is submitted.
    #[must_use]
    pub fn submit_budgeted(&self, test: &LitmusTest, budget: CheckBudget) -> CheckHandle {
        let (job, handle) = check_job(Arc::clone(&self.checker), test, budget);
        self.sessions.get_or_init(|| SessionPool::new(self.parallelism)).submit(job);
        handle
    }

    /// Runs a whole litmus suite, fanning tests out over the configured
    /// worker threads, and returns a structured per-test report with the
    /// complete allowed-outcome set of every test.
    ///
    /// Results are reported in input order regardless of parallelism, and
    /// per-test backend errors are captured in the report rather than
    /// aborting the run.
    #[must_use]
    pub fn run_suite(&self, tests: &[LitmusTest]) -> SuiteReport {
        self.run_suite_mode(tests, SuiteMode::Full)
    }

    /// Like [`Engine::run_suite`], but only decides each test's verdict,
    /// letting the backend stop at the first witness instead of enumerating
    /// every execution. The reports' `outcomes` sets are left empty.
    ///
    /// Use this when only allowed/forbidden answers are needed (e.g. verdict
    /// matrices); it is substantially cheaper on tests with many executions.
    #[must_use]
    pub fn run_suite_verdicts(&self, tests: &[LitmusTest]) -> SuiteReport {
        self.run_suite_mode(tests, SuiteMode::VerdictsOnly)
    }

    fn run_suite_mode(&self, tests: &[LitmusTest], mode: SuiteMode) -> SuiteReport {
        let start = Instant::now();
        let total = tests.len();
        let workers = self.parallelism.min(total.max(1));
        let mut slots: Vec<Option<TestReport>> = Vec::with_capacity(total);
        slots.resize_with(total, || None);
        let slots = Mutex::new(slots);
        let next = AtomicUsize::new(0);
        let checker: &dyn Checker = &*self.checker;

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    if index >= total {
                        break;
                    }
                    let report = run_one(checker, &tests[index], mode);
                    slots.lock().expect("suite slot lock")[index] = Some(report);
                });
            }
        });

        let reports = slots
            .into_inner()
            .expect("suite slot lock")
            .into_iter()
            .map(|slot| slot.expect("every test produced a report"))
            .collect();
        SuiteReport {
            suite: None,
            backend: self.backend(),
            model: self.model(),
            parallelism: workers,
            wall: start.elapsed(),
            reports,
        }
    }
}

/// How much work a suite run does per test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SuiteMode {
    /// Enumerate the complete allowed-outcome set.
    Full,
    /// Decide the verdict only (first-witness early exit); outcomes stay empty.
    VerdictsOnly,
}

/// Checks one test, capturing errors (including caught panics) and wall
/// time. The `catch_unwind` fence is what lets a suite run survive a
/// panicking checker: the panic becomes the report's `error` field and the
/// suite worker moves on to the next test.
fn run_one(checker: &dyn Checker, test: &LitmusTest, mode: SuiteMode) -> TestReport {
    let start = Instant::now();
    let mut span = gam_obs::trace::span("engine.check");
    span.arg("test", test.name());
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match mode {
        SuiteMode::Full => checker.allowed_outcomes(test).map(|outcomes| {
            let allowed = outcomes.iter().any(|outcome| test.condition().matched_by(outcome));
            (if allowed { Verdict::Allowed } else { Verdict::Forbidden }, outcomes)
        }),
        SuiteMode::VerdictsOnly => {
            checker.check(test).map(|verdict| (verdict, std::collections::BTreeSet::new()))
        }
    }));
    let result = match result {
        Ok(result) => result,
        Err(payload) => Err(EngineError::panicked(&*payload)),
    };
    match result {
        Ok((verdict, outcomes)) => TestReport {
            test: test.name().to_string(),
            verdict: Some(verdict),
            outcomes,
            error: None,
            wall: start.elapsed(),
        },
        Err(err) => TestReport {
            test: test.name().to_string(),
            verdict: None,
            outcomes: std::collections::BTreeSet::new(),
            error: Some(err.to_string()),
            wall: start.elapsed(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gam_isa::litmus::library;

    #[test]
    fn builder_defaults_and_accessors() {
        let engine = Engine::builder().build().unwrap();
        assert_eq!(engine.model(), ModelKind::Gam);
        assert_eq!(engine.backend(), Backend::Axiomatic);
        assert_eq!(engine.parallelism(), 1);
        assert_eq!(engine.checker().name(), "axiomatic");
    }

    #[test]
    fn operational_gam_arm_is_rejected_at_build_time() {
        let err = Engine::operational(ModelKind::GamArm).unwrap_err();
        assert!(matches!(
            err,
            EngineError::UnsupportedModel {
                backend: Backend::Operational,
                model: ModelKind::GamArm
            }
        ));
    }

    #[test]
    fn single_test_queries_agree_across_backends() {
        let test = library::dekker();
        for backend in Backend::ALL {
            let engine = Engine::builder().model(ModelKind::Gam).backend(backend).build().unwrap();
            assert_eq!(engine.check(&test).unwrap(), Verdict::Allowed);
            assert!(engine.find_witness(&test).unwrap().is_some());
        }
    }

    #[test]
    fn suite_reports_are_in_input_order_and_capture_errors() {
        let tests = vec![library::dekker(), library::corr(), library::mp()];
        let engine = Engine::builder()
            .model(ModelKind::Gam)
            .axiomatic_config(CheckerConfig { max_events: 3 })
            .parallelism(4)
            .build()
            .unwrap();
        let report = engine.run_suite(&tests);
        assert_eq!(report.reports.len(), 3);
        assert_eq!(report.reports[0].test, "dekker");
        assert_eq!(report.reports[1].test, "corr");
        assert_eq!(report.reports[2].test, "mp");
        // dekker has 4 memory events > limit 3 => captured error, not a panic.
        assert!(!report.reports[0].is_ok());
        assert!(report.reports[0].error.as_deref().unwrap().contains("memory events"));
        assert!(report.reports[1].is_ok());
        assert!(!report.all_ok());
    }

    #[test]
    fn verdict_only_suite_matches_the_full_suite() {
        let tests = vec![library::dekker(), library::corr(), library::mp()];
        for backend in Backend::ALL {
            let engine = Engine::builder()
                .model(ModelKind::Gam)
                .backend(backend)
                .parallelism(4)
                .build()
                .unwrap();
            let full = engine.run_suite(&tests);
            let verdicts = engine.run_suite_verdicts(&tests);
            assert!(verdicts.all_ok());
            let full_v: Vec<_> = full.verdicts().collect();
            let fast_v: Vec<_> = verdicts.verdicts().collect();
            assert_eq!(full_v, fast_v, "{backend}: verdict-only mode disagrees");
            assert!(verdicts.reports.iter().all(|r| r.outcomes.is_empty()));
        }
    }

    #[test]
    fn reduced_operational_engine_agrees_with_unreduced() {
        let tests = vec![library::dekker(), library::corr(), library::mp_addr(), library::wrc()];
        let baseline = Engine::builder()
            .model(ModelKind::Gam)
            .backend(Backend::Operational)
            .build()
            .unwrap()
            .run_suite(&tests);
        for reduction in [Reduction::Sleep, Reduction::SleepPlusCanon] {
            let reduced = Engine::builder()
                .model(ModelKind::Gam)
                .backend(Backend::Operational)
                .reduction(reduction)
                .build()
                .unwrap()
                .run_suite(&tests);
            assert!(reduced.all_ok());
            for (full, fast) in baseline.reports.iter().zip(&reduced.reports) {
                assert_eq!(full.verdict, fast.verdict, "{reduction}/{}", full.test);
                assert_eq!(full.outcomes, fast.outcomes, "{reduction}/{}", full.test);
            }
        }
    }

    #[test]
    fn explorer_parallelism_and_threshold_plumb_through() {
        let tests = vec![library::dekker(), library::iriw()];
        let baseline = Engine::builder()
            .model(ModelKind::Gam)
            .backend(Backend::Operational)
            .build()
            .unwrap()
            .run_suite(&tests);
        // Forced sharding (threshold 0) and adaptive sharding (default
        // threshold, never reached at litmus scale) both reproduce the
        // sequential verdicts and outcome sets.
        for threshold in [Some(0), None] {
            let mut builder = Engine::builder()
                .model(ModelKind::Gam)
                .backend(Backend::Operational)
                .explorer_parallelism(4);
            if let Some(threshold) = threshold {
                builder = builder.explorer_parallel_threshold(threshold);
            }
            let report = builder.build().unwrap().run_suite(&tests);
            assert!(report.all_ok());
            for (seq, par) in baseline.reports.iter().zip(&report.reports) {
                assert_eq!(seq.verdict, par.verdict, "{:?}/{}", threshold, seq.test);
                assert_eq!(seq.outcomes, par.outcomes, "{:?}/{}", threshold, seq.test);
            }
        }
    }

    #[test]
    fn parallelism_is_clamped_to_suite_size() {
        let engine = Engine::builder().parallelism(64).build().unwrap();
        let report = engine.run_suite(&[library::dekker()]);
        assert_eq!(report.parallelism, 1);
        assert!(report.all_ok());
    }
}
