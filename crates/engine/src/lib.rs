//! # gam-engine
//!
//! The unified checking facade of the GAM reproduction.
//!
//! The paper's central claim is that the axiomatic and the operational
//! definitions of GAM are *equivalent* — so the two backends deserve one API.
//! This crate provides it:
//!
//! * [`Checker`] — an object-safe trait implemented by both
//!   [`gam_axiomatic::AxiomaticChecker`] and
//!   [`gam_operational::OperationalChecker`]: verdicts, complete
//!   allowed-outcome sets, witnesses and capability queries through one
//!   interface;
//! * [`EngineError`] — the unified error type both backends convert into;
//! * [`Engine`] / [`EngineBuilder`] — backend and model selection plus a
//!   parallel suite runner that fans litmus tests out over a thread pool and
//!   returns a structured, JSON-serializable [`SuiteReport`];
//! * [`json`] — a dependency-free JSON tree ([`Json`], [`ToJson`]) used for
//!   machine-readable result export;
//! * [`session`] — budgeted, cancellable, panic-isolated check sessions:
//!   [`Engine::submit`] returns a [`CheckHandle`] whose check runs on a
//!   worker pool under a [`CheckBudget`], answers with a three-valued
//!   [`SessionVerdict`] (budget exhaustion is an *inconclusive verdict with
//!   partial outcomes*, not an error) and survives panicking checkers via
//!   [`EngineError::Panicked`];
//! * [`checkpoint`] — crash-durable run checkpoints ([`RunCheckpoint`]): an
//!   append-only CRC-framed log of completed work units that lets
//!   `gam check --checkpoint` / `gam bench --resume` continue a killed run,
//!   skipping every unit that already finished.
//!
//! # Quick start
//!
//! ```
//! use gam_engine::{Backend, Engine};
//! use gam_core::ModelKind;
//! use gam_isa::litmus::library;
//!
//! // Check one test through each backend — same trait, same answers.
//! let test = library::dekker();
//! for backend in Backend::ALL {
//!     let engine = Engine::builder()
//!         .model(ModelKind::Gam)
//!         .backend(backend)
//!         .build()
//!         .unwrap();
//!     assert!(engine.check(&test).unwrap().is_allowed());
//! }
//!
//! // Run a whole suite in parallel and inspect the structured report.
//! let engine = Engine::builder().model(ModelKind::Gam).parallelism(4).build().unwrap();
//! let report = engine.run_suite(&library::paper_tests());
//! assert!(report.all_ok());
//! let json = report.to_json_string();
//! assert!(json.contains("\"model\":\"GAM\""));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checker;
pub mod checkpoint;
pub mod engine;
pub mod error;
pub mod json;
pub mod report;
pub mod session;

pub use checker::Checker;
pub use checkpoint::{RunCheckpoint, CHECKPOINT_SCHEMA, EXPLORE_CHECKPOINT_SCHEMA};
pub use engine::{Backend, Engine, EngineBuilder};
pub use error::EngineError;
pub use json::{Json, JsonParseError, ToJson};
pub use report::{SuiteReport, TestReport};
pub use session::{CheckBudget, CheckHandle, SessionOutcome, SessionVerdict};

// Re-exported so facade users can name verdicts and configs without
// depending on the backend crates directly.
pub use gam_axiomatic::{CheckerConfig, Verdict};
pub use gam_core::{CancelToken, Interrupt, StopReason};
pub use gam_operational::{
    ArenaOccupancy, CheckpointPlan, ExplorerConfig, MemoryConfig, MemoryStats, Reduction,
};
