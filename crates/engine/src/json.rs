//! A tiny dependency-free JSON tree and the [`ToJson`] trait.
//!
//! The build environment has no registry access, so `serde` cannot be used;
//! this module is the machine-readable export path for suite results (the
//! `--json` flag of the `litmus_tables` binary and any perf-trajectory
//! tooling). The emitted JSON is plain and stable: objects keep insertion
//! order, strings are escaped per RFC 8259.

use std::fmt;

use gam_axiomatic::Verdict;
use gam_isa::litmus::Outcome;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (suite reports never need floats or negatives).
    UInt(u64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    #[must_use]
    pub fn object<'a>(pairs: impl IntoIterator<Item = (&'a str, Json)>) -> Json {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Builds an array from values.
    #[must_use]
    pub fn array(values: impl IntoIterator<Item = Json>) -> Json {
        Json::Array(values.into_iter().collect())
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::UInt(n)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::UInt(n) => write!(f, "{n}"),
            Json::Str(s) => write_escaped(f, s),
            Json::Array(values) => {
                f.write_str("[")?;
                for (i, value) in values.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{value}")?;
                }
                f.write_str("]")
            }
            Json::Object(pairs) => {
                f.write_str("{")?;
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, key)?;
                    f.write_str(":")?;
                    write!(f, "{value}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Conversion into the JSON tree — the serialization hook of the engine's
/// report types (a hand-rolled stand-in for `serde::Serialize`, which is
/// unavailable in this offline build).
pub trait ToJson {
    /// Converts `self` into a [`Json`] value.
    fn to_json(&self) -> Json;
}

impl ToJson for Verdict {
    fn to_json(&self) -> Json {
        Json::from(self.to_string())
    }
}

impl ToJson for Outcome {
    fn to_json(&self) -> Json {
        Json::Object(
            self.iter()
                .map(|(observation, value)| (observation.to_string(), Json::UInt(value.raw())))
                .collect(),
        )
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        self.as_ref().map_or(Json::Null, ToJson::to_json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gam_isa::litmus::Observation;
    use gam_isa::{Loc, ProcId, Reg};

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.to_string(), "null");
        assert_eq!(Json::from(true).to_string(), "true");
        assert_eq!(Json::from(42u64).to_string(), "42");
        assert_eq!(Json::from("hi").to_string(), "\"hi\"");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(Json::from("a\"b\\c\nd").to_string(), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(Json::from("\u{1}").to_string(), "\"\\u0001\"");
    }

    #[test]
    fn containers_render_in_order() {
        let json = Json::object([
            ("b", Json::from(1u64)),
            ("a", Json::array([Json::Null, Json::from(false)])),
        ]);
        assert_eq!(json.to_string(), "{\"b\":1,\"a\":[null,false]}");
    }

    #[test]
    fn verdict_and_outcome_serialize() {
        assert_eq!(Verdict::Allowed.to_json().to_string(), "\"allowed\"");
        assert_eq!(Verdict::Forbidden.to_json().to_string(), "\"forbidden\"");
        let outcome = Outcome::new()
            .with_reg(ProcId::new(1), Reg::new(2), 7u64)
            .with_mem(Loc::new("a"), 3u64);
        let json = outcome.to_json().to_string();
        assert!(json.contains(":7"));
        assert!(json.contains(":3"));
        let observation = Observation::Register(ProcId::new(1), Reg::new(2));
        assert!(json.contains(&format!("\"{observation}\"")));
    }

    #[test]
    fn option_serializes_to_null_or_value() {
        assert_eq!(None::<Verdict>.to_json().to_string(), "null");
        assert_eq!(Some(Verdict::Allowed).to_json().to_string(), "\"allowed\"");
    }
}
