//! A tiny dependency-free JSON tree and the [`ToJson`] trait.
//!
//! The build environment has no registry access, so `serde` cannot be used;
//! this module is the machine-readable export path for suite results (the
//! `--json` flag of the `litmus_tables` binary and any perf-trajectory
//! tooling). The emitted JSON is plain and stable: objects keep insertion
//! order, strings are escaped per RFC 8259.

use std::fmt;

use gam_axiomatic::Verdict;
use gam_isa::litmus::Outcome;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (suite reports never need floats or negatives).
    UInt(u64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    #[must_use]
    pub fn object<'a>(pairs: impl IntoIterator<Item = (&'a str, Json)>) -> Json {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Builds an array from values.
    #[must_use]
    pub fn array(values: impl IntoIterator<Item = Json>) -> Json {
        Json::Array(values.into_iter().collect())
    }

    /// Parses a JSON document produced by this module (RFC 8259 with one
    /// restriction: numbers must be unsigned integers, which is all the
    /// suite reports and perf snapshots ever emit).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonParseError`] with a byte offset on malformed input,
    /// trailing garbage, or an unsupported (negative/fractional) number.
    pub fn parse(input: &str) -> Result<Json, JsonParseError> {
        let mut parser = Parser { text: input, bytes: input.as_bytes(), offset: 0 };
        parser.skip_whitespace();
        let value = parser.value()?;
        parser.skip_whitespace();
        if parser.offset != parser.bytes.len() {
            return Err(parser.error("trailing characters after the document"));
        }
        Ok(value)
    }

    /// Looks up a field of an object (`None` for non-objects and missing
    /// keys).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The integer value (`None` for other variants).
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value (`None` for other variants).
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array elements (`None` for other variants).
    #[must_use]
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(values) => Some(values),
            _ => None,
        }
    }
}

/// A parse failure with the byte offset it happened at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonParseError {}

/// A minimal recursive-descent parser over the input bytes.
struct Parser<'a> {
    /// The original input (for O(1) char decoding at a known boundary).
    text: &'a str,
    bytes: &'a [u8],
    offset: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> JsonParseError {
        JsonParseError { offset: self.offset, message: message.to_string() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.offset).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.offset += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonParseError> {
        if self.peek() == Some(byte) {
            self.offset += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonParseError> {
        if self.bytes[self.offset..].starts_with(text.as_bytes()) {
            self.offset += text.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected '{text}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'0'..=b'9') => self.number(),
            Some(b'-') => Err(self.error("negative numbers are not part of the schema")),
            _ => Err(self.error("expected a value")),
        }
    }

    fn number(&mut self) -> Result<Json, JsonParseError> {
        let start = self.offset;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.offset += 1;
        }
        if matches!(self.peek(), Some(b'.' | b'e' | b'E')) {
            return Err(self.error("fractional numbers are not part of the schema"));
        }
        let digits = std::str::from_utf8(&self.bytes[start..self.offset]).expect("digits");
        digits.parse::<u64>().map(Json::UInt).map_err(|_| self.error("integer overflows u64"))
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.offset += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.offset += 1;
                    let escape = self.peek().ok_or_else(|| self.error("unterminated escape"))?;
                    self.offset += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let code = self.unicode_escape_code()?;
                            let c = match code {
                                // A high surrogate must be followed by an
                                // escaped low surrogate (RFC 8259 §7); the
                                // pair decodes to one supplementary-plane
                                // scalar. External tools (herd wrappers,
                                // jq pipelines) emit these freely, so the
                                // frontend must accept them.
                                0xD800..=0xDBFF => {
                                    if self.peek() != Some(b'\\') {
                                        return Err(self.error("unpaired high surrogate"));
                                    }
                                    self.offset += 1;
                                    if self.peek() != Some(b'u') {
                                        return Err(self.error("unpaired high surrogate"));
                                    }
                                    self.offset += 1;
                                    let low = self.unicode_escape_code()?;
                                    if !(0xDC00..=0xDFFF).contains(&low) {
                                        return Err(self.error(
                                            "high surrogate not followed by a low surrogate",
                                        ));
                                    }
                                    let scalar = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                    char::from_u32(scalar)
                                        .ok_or_else(|| self.error("invalid surrogate pair"))?
                                }
                                0xDC00..=0xDFFF => return Err(self.error("unpaired low surrogate")),
                                _ => char::from_u32(code).ok_or_else(|| {
                                    self.error("\\u escape is not a scalar value")
                                })?,
                            };
                            out.push(c);
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                }
                Some(byte) if byte < 0x20 => return Err(self.error("raw control character")),
                Some(byte) if byte < 0x80 => {
                    out.push(byte as char);
                    self.offset += 1;
                }
                Some(_) => {
                    // Advance over one multi-byte UTF-8 scalar; `offset` is
                    // always a char boundary of the original `&str`, so the
                    // slice-and-decode is O(1).
                    let c = self.text[self.offset..].chars().next().expect("non-empty");
                    out.push(c);
                    self.offset += c.len_utf8();
                }
            }
        }
    }

    /// Reads the four hex digits of a `\u` escape (the `\u` itself already
    /// consumed) and returns the code unit.
    fn unicode_escape_code(&mut self) -> Result<u32, JsonParseError> {
        let hex = self
            .bytes
            .get(self.offset..self.offset + 4)
            .and_then(|hex| std::str::from_utf8(hex).ok())
            .ok_or_else(|| self.error("truncated \\u escape"))?;
        // `from_str_radix` alone would accept a leading '+'; require exactly
        // four hex digits.
        if !hex.bytes().all(|b| b.is_ascii_hexdigit()) {
            return Err(self.error("invalid \\u escape"));
        }
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.error("invalid \\u escape"))?;
        self.offset += 4;
        Ok(code)
    }

    fn array(&mut self) -> Result<Json, JsonParseError> {
        self.expect(b'[')?;
        let mut values = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.offset += 1;
            return Ok(Json::Array(values));
        }
        loop {
            self.skip_whitespace();
            values.push(self.value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.offset += 1,
                Some(b']') => {
                    self.offset += 1;
                    return Ok(Json::Array(values));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.offset += 1;
            return Ok(Json::Object(pairs));
        }
        loop {
            self.skip_whitespace();
            let key = self.string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.offset += 1,
                Some(b'}') => {
                    self.offset += 1;
                    return Ok(Json::Object(pairs));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::UInt(n)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::UInt(n) => write!(f, "{n}"),
            Json::Str(s) => write_escaped(f, s),
            Json::Array(values) => {
                f.write_str("[")?;
                for (i, value) in values.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{value}")?;
                }
                f.write_str("]")
            }
            Json::Object(pairs) => {
                f.write_str("{")?;
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, key)?;
                    f.write_str(":")?;
                    write!(f, "{value}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Conversion into the JSON tree — the serialization hook of the engine's
/// report types (a hand-rolled stand-in for `serde::Serialize`, which is
/// unavailable in this offline build).
pub trait ToJson {
    /// Converts `self` into a [`Json`] value.
    fn to_json(&self) -> Json;
}

impl ToJson for Verdict {
    fn to_json(&self) -> Json {
        Json::from(self.to_string())
    }
}

impl ToJson for Outcome {
    fn to_json(&self) -> Json {
        Json::Object(
            self.iter()
                .map(|(observation, value)| (observation.to_string(), Json::UInt(value.raw())))
                .collect(),
        )
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        self.as_ref().map_or(Json::Null, ToJson::to_json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gam_isa::litmus::Observation;
    use gam_isa::{Loc, ProcId, Reg};

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.to_string(), "null");
        assert_eq!(Json::from(true).to_string(), "true");
        assert_eq!(Json::from(42u64).to_string(), "42");
        assert_eq!(Json::from("hi").to_string(), "\"hi\"");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(Json::from("a\"b\\c\nd").to_string(), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(Json::from("\u{1}").to_string(), "\"\\u0001\"");
    }

    #[test]
    fn containers_render_in_order() {
        let json = Json::object([
            ("b", Json::from(1u64)),
            ("a", Json::array([Json::Null, Json::from(false)])),
        ]);
        assert_eq!(json.to_string(), "{\"b\":1,\"a\":[null,false]}");
    }

    #[test]
    fn verdict_and_outcome_serialize() {
        assert_eq!(Verdict::Allowed.to_json().to_string(), "\"allowed\"");
        assert_eq!(Verdict::Forbidden.to_json().to_string(), "\"forbidden\"");
        let outcome = Outcome::new()
            .with_reg(ProcId::new(1), Reg::new(2), 7u64)
            .with_mem(Loc::new("a"), 3u64);
        let json = outcome.to_json().to_string();
        assert!(json.contains(":7"));
        assert!(json.contains(":3"));
        let observation = Observation::Register(ProcId::new(1), Reg::new(2));
        assert!(json.contains(&format!("\"{observation}\"")));
    }

    #[test]
    fn option_serializes_to_null_or_value() {
        assert_eq!(None::<Verdict>.to_json().to_string(), "null");
        assert_eq!(Some(Verdict::Allowed).to_json().to_string(), "\"allowed\"");
    }

    #[test]
    fn parse_round_trips_rendered_documents() {
        let document = Json::object([
            ("schema", Json::from("gam-perf-snapshot/v2")),
            ("quick", Json::from(false)),
            ("count", Json::from(29u64)),
            ("none", Json::Null),
            (
                "rows",
                Json::array([
                    Json::object([("a\"b\n", Json::from(1u64))]),
                    Json::array([]),
                    Json::object([]),
                ]),
            ),
        ]);
        let rendered = document.to_string();
        assert_eq!(Json::parse(&rendered).unwrap(), document);
        // Whitespace-tolerant.
        let spaced = "{ \"a\" : [ 1 , 2 ] ,\n\t\"b\" : \"x\\u0041\" }";
        let parsed = Json::parse(spaced).unwrap();
        assert_eq!(parsed.get("a").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(parsed.get("b").unwrap().as_str(), Some("xA"));
        assert_eq!(parsed.get("a").unwrap().as_array().unwrap()[1].as_u64(), Some(2));
        assert_eq!(parsed.get("missing"), None);
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for (input, needle) in [
            ("", "expected a value"),
            ("{\"a\":1", "expected ',' or '}'"),
            ("[1 2]", "expected ',' or ']'"),
            ("-4", "negative"),
            ("1.5", "fractional"),
            ("\"abc", "unterminated"),
            ("\"\\u+041\"", "invalid \\u escape"),
            ("nul", "expected 'null'"),
            ("{}1", "trailing"),
            ("99999999999999999999999", "overflows"),
        ] {
            let err = Json::parse(input).unwrap_err();
            assert!(err.to_string().contains(needle), "{input:?}: expected {needle:?} in {err}");
        }
    }

    #[test]
    fn parse_decodes_escaped_unicode_including_surrogate_pairs() {
        // BMP escapes, raw multi-byte UTF-8, and an astral-plane surrogate
        // pair (U+1D11E MUSICAL SYMBOL G CLEF) — the input classes a CLI
        // frontend sees from external JSON producers.
        assert_eq!(Json::parse("\"\\u0041\\u00e9\"").unwrap().as_str(), Some("Aé"));
        assert_eq!(Json::parse("\"caf\u{e9}\"").unwrap().as_str(), Some("café"));
        assert_eq!(Json::parse("\"\\uD834\\uDD1E\"").unwrap().as_str(), Some("\u{1D11E}"));
        assert_eq!(Json::parse("\"x\\uD83D\\uDE00y\"").unwrap().as_str(), Some("x\u{1F600}y"));
    }

    #[test]
    fn parse_rejects_malformed_unicode_escapes() {
        for (input, needle) in [
            ("\"\\uD834\"", "unpaired high surrogate"),
            ("\"\\uD834x\"", "unpaired high surrogate"),
            ("\"\\uD834\\n\"", "unpaired high surrogate"),
            ("\"\\uD834\\u0041\"", "not followed by a low surrogate"),
            ("\"\\uDC00\"", "unpaired low surrogate"),
            ("\"\\u12\"", "truncated"),
            ("\"\\u12g4\"", "invalid \\u escape"),
        ] {
            let err = Json::parse(input).unwrap_err();
            assert!(err.to_string().contains(needle), "{input:?}: {err}");
        }
    }

    #[test]
    fn parse_rejects_trailing_garbage_after_any_top_level_value() {
        // The frontend feeds untrusted CLI input through `parse`; a document
        // followed by junk must never silently truncate.
        for input in ["{} {}", "[1] 2", "\"a\" \"b\"", "1 1", "null,", "true[]", "{\"a\":1}x"] {
            let err = Json::parse(input).unwrap_err();
            assert!(err.to_string().contains("trailing"), "{input:?}: {err}");
        }
    }

    #[test]
    fn parse_accepts_the_committed_baseline_shape() {
        // A fragment in the exact shape of BENCH_<date>.json.
        let fragment = "{\"schema\":\"gam-perf-snapshot/v1\",\"totals\":{\"states_visited\":5579},\
                        \"per_model\":[{\"model\":\"SC\",\"tests\":[{\"test\":\"dekker\",\
                        \"operational\":{\"states_visited\":13}}]}]}";
        let parsed = Json::parse(fragment).unwrap();
        assert_eq!(parsed.get("schema").unwrap().as_str(), Some("gam-perf-snapshot/v1"));
        let models = parsed.get("per_model").unwrap().as_array().unwrap();
        assert_eq!(models[0].get("model").unwrap().as_str(), Some("SC"));
    }
}
