//! The unified error type of the engine facade.

use std::fmt;

use gam_axiomatic::CheckError;
use gam_core::ModelKind;
use gam_operational::OperationalError;

use crate::engine::Backend;

/// Errors produced by any backend behind the [`crate::Checker`] trait.
///
/// Both backend error types convert into this one, so consumers no longer
/// need per-backend error handling.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EngineError {
    /// The axiomatic enumerator rejected the test (branches or event limit).
    Axiomatic(CheckError),
    /// The operational explorer failed (state limit, deadlock, or a model
    /// without an abstract machine).
    Operational(OperationalError),
    /// The requested backend has no semantics for the requested model.
    UnsupportedModel {
        /// The backend that was asked.
        backend: Backend,
        /// The model it cannot run.
        model: ModelKind,
    },
    /// The checker panicked while running a test. The panic was caught at
    /// the engine boundary — the worker that ran the check is still alive —
    /// and the payload is preserved for diagnosis.
    Panicked {
        /// The panic payload, rendered as a string (`"opaque panic payload"`
        /// when the payload was neither `&str` nor `String`).
        payload: String,
    },
}

impl EngineError {
    /// Builds [`EngineError::Panicked`] from a payload caught by
    /// [`std::panic::catch_unwind`], rendering `&str` and `String` payloads
    /// verbatim.
    #[must_use]
    pub fn panicked(payload: &(dyn std::any::Any + Send)) -> EngineError {
        let payload = if let Some(message) = payload.downcast_ref::<&'static str>() {
            (*message).to_string()
        } else if let Some(message) = payload.downcast_ref::<String>() {
            message.clone()
        } else {
            "opaque panic payload".to_string()
        };
        EngineError::Panicked { payload }
    }
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Axiomatic(err) => write!(f, "axiomatic backend: {err}"),
            EngineError::Operational(err) => write!(f, "operational backend: {err}"),
            EngineError::UnsupportedModel { backend, model } => {
                write!(f, "the {backend} backend does not support {model} (no semantics defined)")
            }
            EngineError::Panicked { payload } => {
                write!(f, "the checker panicked: {payload}")
            }
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Axiomatic(err) => Some(err),
            EngineError::Operational(err) => Some(err),
            EngineError::UnsupportedModel { .. } | EngineError::Panicked { .. } => None,
        }
    }
}

impl From<CheckError> for EngineError {
    fn from(err: CheckError) -> Self {
        EngineError::Axiomatic(err)
    }
}

impl From<OperationalError> for EngineError {
    fn from(err: OperationalError) -> Self {
        EngineError::Operational(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let err: EngineError = CheckError::BranchesUnsupported { test: "t".into() }.into();
        assert!(err.to_string().contains("axiomatic backend"));
        let err: EngineError =
            OperationalError::UnsupportedModel { model: ModelKind::GamArm }.into();
        assert!(err.to_string().contains("operational backend"));
        let err = EngineError::UnsupportedModel {
            backend: Backend::Operational,
            model: ModelKind::GamArm,
        };
        assert!(err.to_string().contains("GAM-ARM"));
        assert!(err.to_string().contains("operational"));
        let err = EngineError::Panicked { payload: "boom".into() };
        assert_eq!(err.to_string(), "the checker panicked: boom");
    }

    #[test]
    fn panic_payloads_are_rendered() {
        let caught = std::panic::catch_unwind(|| panic!("static payload")).expect_err("must panic");
        assert_eq!(
            EngineError::panicked(&*caught),
            EngineError::Panicked { payload: "static payload".into() }
        );
        let caught = std::panic::catch_unwind(|| panic!("formatted {}", 42)).expect_err("panics");
        assert_eq!(
            EngineError::panicked(&*caught),
            EngineError::Panicked { payload: "formatted 42".into() }
        );
        let caught = std::panic::catch_unwind(|| std::panic::panic_any(7u32)).expect_err("panics");
        assert_eq!(
            EngineError::panicked(&*caught),
            EngineError::Panicked { payload: "opaque panic payload".into() }
        );
    }

    #[test]
    fn error_is_std_error_with_source() {
        let err: EngineError = CheckError::BranchesUnsupported { test: "t".into() }.into();
        assert!(std::error::Error::source(&err).is_some());
        let err =
            EngineError::UnsupportedModel { backend: Backend::Axiomatic, model: ModelKind::Gam };
        assert!(std::error::Error::source(&err).is_none());
    }
}
