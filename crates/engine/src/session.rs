//! Budgeted, cancellable, panic-isolated check sessions.
//!
//! The blocking [`crate::Engine`] API answers exactly or not at all: a check
//! either exhausts its search space or fails with an error. Real deployments
//! (the batch CLI, `gam serve`) need a third shape of answer — *"here is what
//! I know so far, and why I stopped"*. This module provides it:
//!
//! * [`CheckBudget`] — per-check resource limits: a wall-clock budget and/or
//!   an explored-state cap;
//! * [`SessionVerdict`] — the three-valued verdict: `Allowed`, `Forbidden`,
//!   or [`SessionVerdict::Inconclusive`] carrying the partial outcome set
//!   accumulated before the stop and the [`StopReason`];
//! * [`CheckHandle`] — the future-like handle returned by
//!   [`crate::Engine::submit`]: cancel it, poll it, or block on the result;
//! * a lazily-started session worker pool inside the engine whose workers
//!   wrap every check in [`std::panic::catch_unwind`], so a panicking
//!   checker surfaces as [`crate::EngineError::Panicked`] instead of killing
//!   the worker.
//!
//! Soundness of partial verdicts: both backends enumerate *consistent*
//! executions only, so an interrupted search's partial outcome set is an
//! under-approximation of the true allowed set. If a partial outcome already
//! matches the test's condition of interest the verdict is promoted to a
//! full `Allowed` — a witness is a witness no matter when the search stopped.
//! The absence of a witness in a partial set proves nothing, hence
//! `Inconclusive`.
//!
//! # Example
//!
//! ```
//! use std::time::Duration;
//! use gam_engine::{CheckBudget, Engine, SessionVerdict};
//! use gam_isa::litmus::library;
//!
//! let engine = Engine::axiomatic(gam_core::ModelKind::Gam);
//! // A generous budget completes and agrees with the blocking API.
//! let budget = CheckBudget::none().with_max_wall(Duration::from_secs(60));
//! let outcome = engine.submit_budgeted(&library::dekker(), budget).wait().unwrap();
//! assert_eq!(outcome.verdict, SessionVerdict::Allowed);
//! // A zero budget stops at the first poll with a partial verdict.
//! let budget = CheckBudget::none().with_max_wall(Duration::ZERO);
//! let outcome = engine.submit_budgeted(&library::dekker(), budget).wait().unwrap();
//! assert!(!outcome.verdict.is_conclusive());
//! ```

use std::collections::{BTreeSet, VecDeque};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use gam_core::{CancelToken, Interrupt, StopReason};
use gam_isa::litmus::{LitmusTest, Outcome};

use crate::error::EngineError;

/// Per-check resource limits.
///
/// The default ([`CheckBudget::none`]) is unlimited: a budgeted check with no
/// budget behaves like the blocking API, except that it can still be
/// cancelled and that a state-limit abort is reported as an inconclusive
/// verdict instead of an error.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckBudget {
    /// Cap on distinct explored states (operational backend only; the
    /// axiomatic enumerator has no state count and ignores it).
    pub max_states: Option<usize>,
    /// Wall-clock budget, measured from the moment the check starts
    /// executing (queue time does not count).
    pub max_wall: Option<Duration>,
    /// Cap on the explorer's accounted memory footprint in bytes
    /// (operational backend only). Nearing the cap first degrades the
    /// search (sleep-cache flushes, then arena spilling when a spill
    /// directory is configured); crossing it stops the check with
    /// [`StopReason::MemoryBudget`].
    pub max_bytes: Option<usize>,
}

impl CheckBudget {
    /// An unlimited budget.
    #[must_use]
    pub fn none() -> Self {
        CheckBudget::default()
    }

    /// Caps the number of distinct explored states.
    #[must_use]
    pub fn with_max_states(mut self, max_states: usize) -> Self {
        self.max_states = Some(max_states);
        self
    }

    /// Caps the wall-clock time.
    #[must_use]
    pub fn with_max_wall(mut self, max_wall: Duration) -> Self {
        self.max_wall = Some(max_wall);
        self
    }

    /// Caps the explorer's accounted memory footprint.
    #[must_use]
    pub fn with_max_bytes(mut self, max_bytes: usize) -> Self {
        self.max_bytes = Some(max_bytes);
        self
    }

    /// Builds the [`Interrupt`] a backend should poll for this budget: the
    /// given cancel token plus the wall deadline (armed now).
    #[must_use]
    pub fn interrupt(&self, cancel: CancelToken) -> Interrupt {
        let interrupt = Interrupt::none().with_cancel(cancel);
        match self.max_wall {
            Some(budget) => interrupt.with_wall_budget(budget),
            None => interrupt,
        }
    }
}

/// The three-valued verdict of a budgeted check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionVerdict {
    /// The condition of interest is allowed — a witness outcome was found
    /// (possibly inside a partial outcome set; a witness is conclusive no
    /// matter when the search stopped).
    Allowed,
    /// The search exhausted the (reduced) space without a witness.
    Forbidden,
    /// The search stopped before exhaustion and found no witness. The
    /// partial outcome set is a sound under-approximation of the allowed
    /// set.
    Inconclusive {
        /// Outcomes of the executions visited before the stop.
        partial_outcomes: BTreeSet<Outcome>,
        /// Backend progress counter: distinct states visited (operational
        /// backend; the axiomatic enumerator reports 0).
        states_visited: usize,
        /// Why the search stopped.
        reason: StopReason,
    },
}

impl SessionVerdict {
    /// Derives the verdict from a *complete* outcome set.
    #[must_use]
    pub fn conclusive(test: &LitmusTest, outcomes: &BTreeSet<Outcome>) -> SessionVerdict {
        if outcomes.iter().any(|outcome| test.condition().matched_by(outcome)) {
            SessionVerdict::Allowed
        } else {
            SessionVerdict::Forbidden
        }
    }

    /// Derives the verdict from a *partial* outcome set: `Allowed` if it
    /// already contains a witness, `Inconclusive` otherwise.
    #[must_use]
    pub fn from_partial(
        test: &LitmusTest,
        partial_outcomes: BTreeSet<Outcome>,
        states_visited: usize,
        reason: StopReason,
    ) -> SessionVerdict {
        if partial_outcomes.iter().any(|outcome| test.condition().matched_by(outcome)) {
            SessionVerdict::Allowed
        } else {
            SessionVerdict::Inconclusive { partial_outcomes, states_visited, reason }
        }
    }

    /// True for `Allowed` and `Forbidden`.
    #[must_use]
    pub fn is_conclusive(&self) -> bool {
        !matches!(self, SessionVerdict::Inconclusive { .. })
    }

    /// The two-valued verdict, when conclusive.
    #[must_use]
    pub fn as_verdict(&self) -> Option<gam_axiomatic::Verdict> {
        match self {
            SessionVerdict::Allowed => Some(gam_axiomatic::Verdict::Allowed),
            SessionVerdict::Forbidden => Some(gam_axiomatic::Verdict::Forbidden),
            SessionVerdict::Inconclusive { .. } => None,
        }
    }
}

impl fmt::Display for SessionVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionVerdict::Allowed => f.write_str("allowed"),
            SessionVerdict::Forbidden => f.write_str("forbidden"),
            SessionVerdict::Inconclusive { partial_outcomes, states_visited, reason } => write!(
                f,
                "inconclusive: {reason} ({states_visited} states visited, \
                 {} partial outcomes)",
                partial_outcomes.len()
            ),
        }
    }
}

/// The result of a finished budgeted check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionOutcome {
    /// The (possibly partial) verdict.
    pub verdict: SessionVerdict,
    /// Wall-clock time the check spent executing (excludes queue time).
    pub wall: Duration,
}

/// Locks a mutex, tolerating poison.
///
/// Session state is only ever mutated under short critical sections that
/// cannot panic; tolerating poison means one aborted worker can never wedge
/// every later caller.
fn lock_tolerant<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Shared completion state between a [`CheckHandle`] and its worker job.
#[derive(Debug, Default)]
struct HandleShared {
    slot: Mutex<Option<Result<SessionOutcome, EngineError>>>,
    done: Condvar,
}

impl HandleShared {
    fn complete(&self, result: Result<SessionOutcome, EngineError>) {
        *lock_tolerant(&self.slot) = Some(result);
        self.done.notify_all();
    }
}

/// A handle to a check submitted with [`crate::Engine::submit`] or
/// [`crate::Engine::submit_budgeted`].
///
/// The handle owns the check's [`CancelToken`]: call [`CheckHandle::cancel`]
/// (from any thread — [`CheckHandle::cancel_token`] clones the shared token)
/// and the running check stops at its next interrupt poll with an
/// inconclusive verdict. Dropping the handle does *not* cancel the check.
#[derive(Debug)]
pub struct CheckHandle {
    cancel: CancelToken,
    shared: Arc<HandleShared>,
}

impl CheckHandle {
    /// Requests cancellation. Idempotent; never blocks. The check reports
    /// [`StopReason::Cancelled`] at its next poll (checks cancelled before
    /// they start stop at their very first poll).
    pub fn cancel(&self) {
        self.cancel.cancel();
    }

    /// A clone of the check's cancel token, for cancelling from elsewhere.
    #[must_use]
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Whether the check has produced its result.
    #[must_use]
    pub fn is_finished(&self) -> bool {
        lock_tolerant(&self.shared.slot).is_some()
    }

    /// Blocks until the check finishes and returns its result.
    pub fn wait(self) -> Result<SessionOutcome, EngineError> {
        let mut slot = lock_tolerant(&self.shared.slot);
        loop {
            if let Some(result) = slot.take() {
                return result;
            }
            slot = self.shared.done.wait(slot).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Blocks until the check finishes or the timeout elapses. Returns
    /// `None` on timeout (the check keeps running; the handle stays usable).
    #[must_use]
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<SessionOutcome, EngineError>> {
        let deadline = Instant::now().checked_add(timeout);
        let mut slot = lock_tolerant(&self.shared.slot);
        loop {
            if slot.is_some() {
                return slot.clone();
            }
            let remaining = match deadline {
                Some(deadline) => deadline.checked_duration_since(Instant::now())?,
                None => Duration::MAX,
            };
            let (guard, _timed_out) = self
                .shared
                .done
                .wait_timeout(slot, remaining)
                .unwrap_or_else(PoisonError::into_inner);
            slot = guard;
        }
    }
}

type Job = Box<dyn FnOnce() + Send + 'static>;

#[derive(Default)]
struct PoolState {
    queue: VecDeque<Job>,
    shutdown: bool,
}

#[derive(Default)]
struct PoolShared {
    state: Mutex<PoolState>,
    work: Condvar,
}

/// The engine's session worker pool: a fixed set of threads draining a FIFO
/// job queue. Workers run every job under [`catch_unwind`], so they survive
/// panicking checkers. Dropping the pool drains the remaining queue, then
/// joins every worker.
pub(crate) struct SessionPool {
    shared: Arc<PoolShared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl fmt::Debug for SessionPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SessionPool").field("workers", &self.workers.len()).finish()
    }
}

impl SessionPool {
    pub(crate) fn new(workers: usize) -> SessionPool {
        let shared = Arc::new(PoolShared::default());
        let workers = (0..workers.max(1))
            .map(|index| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("gam-session-{index}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn session worker")
            })
            .collect();
        SessionPool { shared, workers }
    }

    pub(crate) fn submit(&self, job: Job) {
        lock_tolerant(&self.shared.state).queue.push_back(job);
        self.shared.work.notify_one();
    }
}

impl Drop for SessionPool {
    fn drop(&mut self) {
        lock_tolerant(&self.shared.state).shutdown = true;
        self.shared.work.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let job = {
            let mut state = lock_tolerant(&shared.state);
            loop {
                if let Some(job) = state.queue.pop_front() {
                    break job;
                }
                if state.shutdown {
                    return;
                }
                state = shared.work.wait(state).unwrap_or_else(PoisonError::into_inner);
            }
        };
        // Jobs convert checker panics to `EngineError::Panicked` themselves;
        // this outer guard is the belt-and-braces that keeps the worker
        // alive even if the completion plumbing itself were to panic.
        let _ = catch_unwind(AssertUnwindSafe(job));
    }
}

/// Builds the job a session worker runs for one submitted check, and the
/// handle that observes it.
pub(crate) fn check_job(
    checker: Arc<dyn crate::Checker>,
    test: &LitmusTest,
    budget: CheckBudget,
) -> (Job, CheckHandle) {
    let cancel = CancelToken::new();
    let shared = Arc::new(HandleShared::default());
    let handle = CheckHandle { cancel: cancel.clone(), shared: Arc::clone(&shared) };
    let test = test.clone();
    // The submitter's trace id travels with the job: the worker re-installs
    // it, so the check's spans correlate with the request that queued it.
    let trace_id = gam_obs::trace::current_trace_id();
    let job: Job = Box::new(move || {
        gam_obs::trace::set_trace_id(trace_id);
        let start = Instant::now();
        let mut span = gam_obs::trace::span("engine.session");
        span.arg("test", test.name());
        let result = catch_unwind(AssertUnwindSafe(|| {
            checker.check_budgeted(&test, &budget, cancel.clone())
        }));
        drop(span);
        let result = match result {
            Ok(Ok(verdict)) => Ok(SessionOutcome { verdict, wall: start.elapsed() }),
            Ok(Err(err)) => Err(err),
            Err(payload) => Err(EngineError::panicked(&*payload)),
        };
        shared.complete(result);
    });
    (job, handle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gam_core::ModelKind;
    use gam_isa::litmus::library;

    use crate::engine::{Backend, Engine};

    #[test]
    fn budget_builders_compose() {
        let budget = CheckBudget::none();
        assert_eq!(budget, CheckBudget { max_states: None, max_wall: None, max_bytes: None });
        let budget = budget
            .with_max_states(10)
            .with_max_wall(Duration::from_millis(5))
            .with_max_bytes(1 << 20);
        assert_eq!(budget.max_states, Some(10));
        assert_eq!(budget.max_wall, Some(Duration::from_millis(5)));
        assert_eq!(budget.max_bytes, Some(1 << 20));
        assert!(budget.interrupt(CancelToken::new()).is_armed());
        // Even an unlimited budget arms the interrupt: the cancel token.
        assert!(CheckBudget::none().interrupt(CancelToken::new()).is_armed());
    }

    #[test]
    fn session_verdict_helpers_and_display() {
        let test = library::dekker();
        let witness = Engine::axiomatic(ModelKind::Gam)
            .find_witness(&test)
            .unwrap()
            .expect("dekker is allowed under GAM");
        let mut outcomes = BTreeSet::new();
        assert_eq!(SessionVerdict::conclusive(&test, &outcomes), SessionVerdict::Forbidden);
        outcomes.insert(witness.clone());
        assert_eq!(SessionVerdict::conclusive(&test, &outcomes), SessionVerdict::Allowed);
        // A witness inside a *partial* set is still conclusive.
        assert_eq!(
            SessionVerdict::from_partial(&test, outcomes, 7, StopReason::Cancelled),
            SessionVerdict::Allowed
        );
        let inconclusive =
            SessionVerdict::from_partial(&test, BTreeSet::new(), 7, StopReason::Cancelled);
        assert!(!inconclusive.is_conclusive());
        assert_eq!(inconclusive.as_verdict(), None);
        assert_eq!(
            inconclusive.to_string(),
            "inconclusive: cancelled (7 states visited, 0 partial outcomes)"
        );
        assert_eq!(SessionVerdict::Allowed.as_verdict(), Some(gam_axiomatic::Verdict::Allowed));
        assert_eq!(SessionVerdict::Allowed.to_string(), "allowed");
        assert_eq!(SessionVerdict::Forbidden.to_string(), "forbidden");
    }

    #[test]
    fn generous_budget_agrees_with_the_blocking_api() {
        let test = library::dekker();
        let budget = CheckBudget::none().with_max_wall(Duration::from_secs(120));
        for backend in Backend::ALL {
            let engine = Engine::builder().model(ModelKind::Gam).backend(backend).build().unwrap();
            let blocking = engine.check(&test).unwrap();
            let outcome = engine.check_budgeted(&test, &budget).unwrap();
            assert_eq!(outcome.verdict.as_verdict(), Some(blocking), "{backend}");
        }
    }

    #[test]
    fn zero_wall_budget_is_inconclusive_on_both_backends() {
        // `corr` is forbidden under GAM, so no early witness can rescue the
        // verdict: a zero budget must stop at the first poll, inconclusive.
        let test = library::corr();
        let budget = CheckBudget::none().with_max_wall(Duration::ZERO);
        for backend in Backend::ALL {
            let engine = Engine::builder().model(ModelKind::Gam).backend(backend).build().unwrap();
            let outcome = engine.check_budgeted(&test, &budget).unwrap();
            match outcome.verdict {
                SessionVerdict::Inconclusive { reason, .. } => {
                    assert_eq!(reason, StopReason::WallBudget { budget: Duration::ZERO })
                }
                other => panic!("{backend}: expected inconclusive, got {other:?}"),
            }
        }
    }

    #[test]
    fn state_budget_is_inconclusive_with_partial_outcomes() {
        // Large-ish state space: a tiny state cap trips before exhaustion
        // (and before the deep interleaving that witnesses the condition).
        let test = library::iriw();
        let engine = Engine::operational(ModelKind::Gam).unwrap();
        let outcome =
            engine.check_budgeted(&test, &CheckBudget::none().with_max_states(16)).unwrap();
        match outcome.verdict {
            SessionVerdict::Inconclusive { reason, states_visited, .. } => {
                assert_eq!(reason, StopReason::StateBudget { limit: 16 });
                assert!(states_visited >= 16);
            }
            other => panic!("expected inconclusive, got {other:?}"),
        }
        // The blocking engine with its default (huge) state limit still
        // answers conclusively: the budget override was check-local.
        assert!(engine.check(&test).is_ok());
    }

    #[test]
    fn submitted_checks_complete_and_cancel() {
        let engine = Engine::operational(ModelKind::Gam).unwrap();
        // Occupy the single session worker with a briefly-budgeted check, so
        // the second submission is still queued when we cancel it.
        let blocker = engine.submit_budgeted(
            &library::iriw(),
            CheckBudget::none().with_max_wall(Duration::from_millis(100)),
        );
        let cancelled = engine.submit(&library::iriw());
        cancelled.cancel();
        let blocked = blocker.wait().unwrap();
        assert!(blocked.wall >= Duration::from_millis(1) || blocked.verdict.is_conclusive());
        match cancelled.wait().unwrap().verdict {
            SessionVerdict::Inconclusive { reason: StopReason::Cancelled, .. } => {}
            other => panic!("expected cancellation, got {other:?}"),
        }
        // The pool survives and keeps answering.
        let after = engine.submit(&library::corr()).wait().unwrap();
        assert_eq!(after.verdict, SessionVerdict::Forbidden);
    }

    #[test]
    fn handles_poll_and_time_out() {
        let engine = Engine::axiomatic(ModelKind::Gam);
        let handle = engine.submit(&library::corr());
        let result = handle.wait_timeout(Duration::from_secs(120)).expect("finishes");
        assert_eq!(result.unwrap().verdict, SessionVerdict::Forbidden);
        assert!(handle.is_finished());
        // A second timed wait returns the cached result again.
        assert!(handle.wait_timeout(Duration::ZERO).is_some());
    }

    #[test]
    fn submitted_errors_are_reported_not_thrown() {
        let engine = Engine::axiomatic(ModelKind::GamArm);
        // GAM-ARM is axiomatic-only; an operational engine cannot even be
        // built, so provoke a backend error instead: an over-limit test.
        let engine_small = Engine::builder()
            .model(ModelKind::Gam)
            .axiomatic_config(gam_axiomatic::CheckerConfig { max_events: 2 })
            .build()
            .unwrap();
        let err = engine_small.submit(&library::dekker()).wait().unwrap_err();
        assert!(err.to_string().contains("memory events"));
        // The GAM-ARM engine still answers fine.
        let outcome = engine.submit(&library::dekker()).wait().unwrap();
        assert_eq!(outcome.verdict, SessionVerdict::Allowed);
    }
}
