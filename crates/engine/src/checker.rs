//! The unified, object-safe [`Checker`] trait.
//!
//! Both formal backends — the axiomatic enumerator and the operational
//! explorer — implement this trait, so every consumer (the [`crate::Engine`]
//! facade, the verification layer, benches and examples) can drive either
//! semantics through one polymorphic API. This is the code-level counterpart
//! of the paper's Theorem 1: the two definitions answer exactly the same
//! questions, so they deserve exactly the same interface.

use std::collections::BTreeSet;

use gam_axiomatic::{AxiomaticChecker, CheckError, Verdict};
use gam_core::{CancelToken, ModelKind, StopReason};
use gam_isa::litmus::{LitmusTest, Outcome};
use gam_operational::{ExploreError, OperationalChecker, OperationalError};

use crate::engine::Backend;
use crate::error::EngineError;
use crate::session::{CheckBudget, SessionVerdict};

/// A memory-model checker for one model, behind one of the two backends.
///
/// The trait is object-safe: the engine stores `dyn Checker` and suite
/// runners fan work out over `&dyn Checker` across threads (hence the
/// `Send + Sync` supertraits).
pub trait Checker: Send + Sync {
    /// A short human-readable backend name (`"axiomatic"` / `"operational"`).
    fn name(&self) -> &'static str;

    /// The backend this checker belongs to.
    fn backend(&self) -> Backend;

    /// The model this checker runs.
    fn model(&self) -> ModelKind;

    /// Returns true if this checker's backend has semantics for `model`.
    ///
    /// Backend gaps (e.g. GAM-ARM, which the paper defines only
    /// axiomatically) are queried uniformly through this method instead of
    /// ad-hoc per-backend capability functions.
    fn supports(&self, model: ModelKind) -> bool;

    /// The complete set of outcomes the model allows for the test.
    fn allowed_outcomes(&self, test: &LitmusTest) -> Result<BTreeSet<Outcome>, EngineError>;

    /// Decides whether the test's condition of interest is allowed.
    fn check(&self, test: &LitmusTest) -> Result<Verdict, EngineError>;

    /// Searches for an outcome matching the test's condition of interest and
    /// returns it as a witness, or `None` when the condition is forbidden.
    fn find_witness(&self, test: &LitmusTest) -> Result<Option<Outcome>, EngineError>;

    /// Decides the test's condition of interest under a [`CheckBudget`] and
    /// a [`CancelToken`], answering with a three-valued [`SessionVerdict`]:
    /// budget exhaustion and cancellation surface as
    /// [`SessionVerdict::Inconclusive`] carrying the partial outcome set,
    /// not as errors.
    ///
    /// Budgeted checks enumerate the full outcome set (no first-witness
    /// early exit) so that an interrupted run has meaningful partial
    /// outcomes to report; if the partial set already contains a witness
    /// the verdict is promoted to `Allowed`, which is sound because both
    /// backends only ever emit outcomes of consistent executions.
    ///
    /// # Errors
    ///
    /// Propagates backend errors other than interruption and state-limit
    /// exhaustion (e.g. unsupported models, over-limit event counts).
    fn check_budgeted(
        &self,
        test: &LitmusTest,
        budget: &CheckBudget,
        cancel: CancelToken,
    ) -> Result<SessionVerdict, EngineError>;
}

impl Checker for AxiomaticChecker {
    fn name(&self) -> &'static str {
        "axiomatic"
    }

    fn backend(&self) -> Backend {
        Backend::Axiomatic
    }

    fn model(&self) -> ModelKind {
        AxiomaticChecker::model(self).kind()
    }

    fn supports(&self, _model: ModelKind) -> bool {
        // Every model in the catalogue has an axiomatic definition.
        true
    }

    fn allowed_outcomes(&self, test: &LitmusTest) -> Result<BTreeSet<Outcome>, EngineError> {
        Ok(AxiomaticChecker::allowed_outcomes(self, test)?)
    }

    fn check(&self, test: &LitmusTest) -> Result<Verdict, EngineError> {
        Ok(AxiomaticChecker::check(self, test)?)
    }

    fn find_witness(&self, test: &LitmusTest) -> Result<Option<Outcome>, EngineError> {
        Ok(AxiomaticChecker::find_witness(self, test)?.map(|witness| witness.outcome))
    }

    fn check_budgeted(
        &self,
        test: &LitmusTest,
        budget: &CheckBudget,
        cancel: CancelToken,
    ) -> Result<SessionVerdict, EngineError> {
        // Rebuild the checker with the budget's interrupt attached; the
        // axiomatic enumerator has no state count, so `max_states` is
        // ignored here (see [`CheckBudget::max_states`]).
        let checker =
            AxiomaticChecker::with_config(AxiomaticChecker::model(self).clone(), self.config())
                .with_interrupt(budget.interrupt(cancel));
        match checker.allowed_outcomes(test) {
            Ok(outcomes) => Ok(SessionVerdict::conclusive(test, &outcomes)),
            Err(CheckError::Interrupted { reason, partial_outcomes, .. }) => {
                Ok(SessionVerdict::from_partial(test, partial_outcomes, 0, reason))
            }
            Err(err) => Err(err.into()),
        }
    }
}

impl Checker for OperationalChecker {
    fn name(&self) -> &'static str {
        "operational"
    }

    fn backend(&self) -> Backend {
        Backend::Operational
    }

    fn model(&self) -> ModelKind {
        OperationalChecker::model(self)
    }

    fn supports(&self, model: ModelKind) -> bool {
        OperationalChecker::supports(model)
    }

    fn allowed_outcomes(&self, test: &LitmusTest) -> Result<BTreeSet<Outcome>, EngineError> {
        Ok(OperationalChecker::allowed_outcomes(self, test)?)
    }

    fn check(&self, test: &LitmusTest) -> Result<Verdict, EngineError> {
        // `is_allowed` decides through the explorer's early-exit witness
        // search: an allowed verdict stops at the first matching final state.
        Ok(if OperationalChecker::is_allowed(self, test)? {
            Verdict::Allowed
        } else {
            Verdict::Forbidden
        })
    }

    fn find_witness(&self, test: &LitmusTest) -> Result<Option<Outcome>, EngineError> {
        Ok(OperationalChecker::find_witness(self, test)?)
    }

    fn check_budgeted(
        &self,
        test: &LitmusTest,
        budget: &CheckBudget,
        cancel: CancelToken,
    ) -> Result<SessionVerdict, EngineError> {
        // Rebuild the explorer with the budget's state cap, memory cap and
        // interrupt. The checker's own memory config (spill directory,
        // checkpoint plan) carries over; the budget's byte cap overrides.
        let mut config = self.config();
        if let Some(max_states) = budget.max_states {
            config.max_states = max_states;
        }
        let mut memory = self.memory();
        if budget.max_bytes.is_some() {
            memory.max_bytes = budget.max_bytes;
        }
        let checker = OperationalChecker::with_config(OperationalChecker::model(self), config)
            .with_interrupt(budget.interrupt(cancel))
            .with_memory(memory);
        match checker.allowed_outcomes(test) {
            Ok(outcomes) => Ok(SessionVerdict::conclusive(test, &outcomes)),
            Err(OperationalError::Explore(ExploreError::Interrupted {
                reason,
                states_visited,
                partial_outcomes,
            })) => Ok(SessionVerdict::from_partial(test, partial_outcomes, states_visited, reason)),
            Err(OperationalError::Explore(ExploreError::StateLimitExceeded {
                limit,
                states_visited,
                partial_outcomes,
            })) => Ok(SessionVerdict::from_partial(
                test,
                partial_outcomes,
                states_visited,
                StopReason::StateBudget { limit },
            )),
            Err(err) => Err(err.into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gam_core::model;
    use gam_isa::litmus::library;

    fn checkers(kind: ModelKind) -> Vec<Box<dyn Checker>> {
        vec![
            Box::new(AxiomaticChecker::new(model::by_kind(kind))),
            Box::new(OperationalChecker::new(kind)),
        ]
    }

    #[test]
    fn both_backends_answer_identically_through_the_trait() {
        let test = library::dekker();
        for checker in checkers(ModelKind::Gam) {
            assert_eq!(checker.model(), ModelKind::Gam);
            assert_eq!(checker.check(&test).unwrap(), Verdict::Allowed);
            let witness = checker.find_witness(&test).unwrap().expect("allowed => witness");
            assert!(test.condition().matched_by(&witness));
            assert!(checker.allowed_outcomes(&test).unwrap().contains(&witness));
        }
    }

    #[test]
    fn supports_reports_the_operational_gap_uniformly() {
        for checker in checkers(ModelKind::Gam) {
            assert!(checker.supports(ModelKind::Sc));
            assert!(checker.supports(ModelKind::Gam));
            assert_eq!(
                checker.supports(ModelKind::GamArm),
                checker.backend() == Backend::Axiomatic,
                "only the axiomatic backend defines GAM-ARM"
            );
        }
    }

    #[test]
    fn forbidden_conditions_have_no_witness() {
        let test = library::corr();
        for checker in checkers(ModelKind::Gam) {
            assert_eq!(checker.check(&test).unwrap(), Verdict::Forbidden);
            assert!(checker.find_witness(&test).unwrap().is_none());
        }
    }

    #[test]
    fn names_distinguish_backends() {
        let names: Vec<&str> = checkers(ModelKind::Sc).iter().map(|c| c.name()).collect();
        assert_eq!(names, ["axiomatic", "operational"]);
    }
}
