//! Crash-durable run checkpoints: resume a killed `gam check`/`gam bench`.
//!
//! A corpus run is a sequence of independent *work units* — one
//! (test, model) exploration for `gam bench`, one (model, backend) pair for
//! `gam check`. Each unit is deterministic: the sequential explorer visits
//! the same states and produces the same outcome set every time. That makes
//! the right checkpoint granularity the *unit*, not the explorer frontier:
//! a resumed run skips every completed unit and recomputes only the one the
//! crash interrupted, which by determinism yields outcome sets and
//! visited-state counts identical to an uninterrupted run.
//!
//! The file is an append-only log built on [`gam_core::wal`] (magic line
//! [`CHECKPOINT_SCHEMA`], one CRC-framed JSON record per completed unit), so
//! it inherits the journal's crash contract: a `kill -9` mid-append loses at
//! most the record being written, and [`RunCheckpoint::open`] recovers the
//! longest valid prefix of whatever survived, warning instead of failing.
//!
//! Records are keyed by caller-chosen strings that embed the unit's
//! identity *and* its content fingerprint (the CLI uses the canonical test
//! hash), so a checkpoint accidentally pointed at a different corpus simply
//! matches nothing rather than poisoning the run. Duplicate keys are
//! last-writer-wins, which makes re-recording after a resume harmless.
//!
//! The fault-injection point `checkpoint.write` arms record appends:
//! `kill` leaves a genuinely torn half-record (what a real mid-`write(2)`
//! death leaves) and surfaces as an `Err` the CLI warns about — checkpoint
//! loss must never fail the run it exists to protect.

use std::collections::BTreeMap;
use std::io;
use std::path::Path;

use gam_core::{fault, wal::Wal};

use crate::json::Json;

/// Magic line of the checkpoint file; bump on incompatible record changes.
pub const CHECKPOINT_SCHEMA: &str = "gam-checkpoint/v1";

/// An open checkpoint: the completed-unit map recovered from disk plus the
/// log handle for appending new completions.
#[derive(Debug)]
pub struct RunCheckpoint {
    wal: Wal,
    completed: BTreeMap<String, Json>,
    resumed: usize,
}

impl RunCheckpoint {
    /// Opens (or creates) the checkpoint at `path`, recovering the longest
    /// valid record prefix. Returns the checkpoint and an optional warning
    /// describing tolerated damage (torn tail, wrong magic, unparseable
    /// record).
    ///
    /// # Errors
    ///
    /// Only genuine I/O failures; damaged content is recovered, not fatal.
    pub fn open(path: &Path) -> io::Result<(RunCheckpoint, Option<String>)> {
        let (wal, frames, mut warning) = Wal::open(path, CHECKPOINT_SCHEMA)?;
        let mut completed = BTreeMap::new();
        for (index, frame) in frames.iter().enumerate() {
            let record = std::str::from_utf8(frame)
                .ok()
                .and_then(|text| Json::parse(text).ok())
                .and_then(|json| {
                    let key = json.get("key")?.as_str()?.to_string();
                    let result = json.get("result")?.clone();
                    Some((key, result))
                });
            match record {
                Some((key, result)) => {
                    completed.insert(key, result);
                }
                None => {
                    // CRC-valid but unparseable: writer bug or version skew.
                    // Keep the prefix before it, ignore the rest.
                    warning.get_or_insert_with(|| {
                        format!(
                            "checkpoint {}: record {index} unparseable; \
                             ignoring it and {} later records",
                            path.display(),
                            frames.len() - index - 1,
                        )
                    });
                    break;
                }
            }
        }
        let resumed = completed.len();
        Ok((RunCheckpoint { wal, completed, resumed }, warning))
    }

    /// Number of completed units currently recorded.
    #[must_use]
    pub fn len(&self) -> usize {
        self.completed.len()
    }

    /// True when no units are recorded yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.completed.is_empty()
    }

    /// How many completed units were recovered from disk at open — the
    /// units a resumed run gets to skip.
    #[must_use]
    pub fn resumed(&self) -> usize {
        self.resumed
    }

    /// The recorded result of a completed unit, if any.
    #[must_use]
    pub fn completed(&self, key: &str) -> Option<&Json> {
        self.completed.get(key)
    }

    /// Records a completed unit: one appended CRC frame, durable against
    /// `kill -9` the moment this returns. Duplicate keys overwrite (last
    /// writer wins on replay).
    ///
    /// # Errors
    ///
    /// Propagates append I/O errors, including the injected
    /// `checkpoint.write` kill (which first leaves a genuinely torn record
    /// on disk, as a real crash would). The in-memory map is updated either
    /// way, so the running process keeps its own progress.
    pub fn record(&mut self, key: &str, result: Json) -> io::Result<()> {
        let payload =
            Json::object([("key", Json::Str(key.to_string())), ("result", result.clone())])
                .to_string();
        self.completed.insert(key.to_string(), result);
        // Fault-injection point: `checkpoint.write` — a kill dies mid-append.
        if fault::hit("checkpoint.write") {
            self.wal.append_torn(payload.as_bytes())?;
            return Err(io::Error::new(
                io::ErrorKind::Interrupted,
                "injected fault: checkpoint.write killed mid-append",
            ));
        }
        self.wal.append(payload.as_bytes())
    }

    /// The path of the underlying log file.
    #[must_use]
    pub fn path(&self) -> &Path {
        self.wal.path()
    }
}
