//! Crash-durable run checkpoints: resume a killed `gam check`/`gam bench`.
//!
//! A corpus run is a sequence of independent *work units* — one
//! (test, model) exploration for `gam bench`, one (model, backend) pair for
//! `gam check`. Each unit is deterministic: the sequential explorer visits
//! the same states and produces the same outcome set every time. That makes
//! the right checkpoint granularity the *unit*, not the explorer frontier:
//! a resumed run skips every completed unit and recomputes only the one the
//! crash interrupted, which by determinism yields outcome sets and
//! visited-state counts identical to an uninterrupted run.
//!
//! The file is an append-only log built on [`gam_core::wal`] (magic line
//! [`CHECKPOINT_SCHEMA`], one CRC-framed JSON record per completed unit), so
//! it inherits the journal's crash contract: a `kill -9` mid-append loses at
//! most the record being written, and [`RunCheckpoint::open`] recovers the
//! longest valid prefix of whatever survived, warning instead of failing.
//!
//! Records are keyed by caller-chosen strings that embed the unit's
//! identity *and* its content fingerprint (the CLI uses the canonical test
//! hash), so a checkpoint accidentally pointed at a different corpus simply
//! matches nothing rather than poisoning the run. Duplicate keys are
//! last-writer-wins, which makes re-recording after a resume harmless.
//!
//! The fault-injection point `checkpoint.write` arms record appends:
//! `kill` leaves a genuinely torn half-record (what a real mid-`write(2)`
//! death leaves) and surfaces as an `Err` the CLI warns about — checkpoint
//! loss must never fail the run it exists to protect.

use std::collections::BTreeMap;
use std::io;
use std::path::Path;

use gam_core::{fault, wal::Wal};

use crate::json::Json;

/// Magic line of the checkpoint file; bump on incompatible record changes.
pub const CHECKPOINT_SCHEMA: &str = "gam-checkpoint/v1";

/// Schema tag of intra-exploration snapshot records: the explorer's
/// frontier, visited-set and spill-manifest snapshot of one *in-flight*
/// test, so a killed run resumes mid-exploration instead of restarting
/// the test.
pub const EXPLORE_CHECKPOINT_SCHEMA: &str = "gam-explore-checkpoint/v1";

/// An open checkpoint: the completed-unit map recovered from disk plus the
/// log handle for appending new completions.
#[derive(Debug)]
pub struct RunCheckpoint {
    wal: Wal,
    completed: BTreeMap<String, Json>,
    resumed: usize,
}

impl RunCheckpoint {
    /// Opens (or creates) the checkpoint at `path`, recovering the longest
    /// valid record prefix. Returns the checkpoint and an optional warning
    /// describing tolerated damage (torn tail, wrong magic, unparseable
    /// record).
    ///
    /// # Errors
    ///
    /// Only genuine I/O failures; damaged content is recovered, not fatal.
    pub fn open(path: &Path) -> io::Result<(RunCheckpoint, Option<String>)> {
        let (wal, frames, mut warning) = Wal::open(path, CHECKPOINT_SCHEMA)?;
        let mut completed = BTreeMap::new();
        for (index, frame) in frames.iter().enumerate() {
            let record = std::str::from_utf8(frame)
                .ok()
                .and_then(|text| Json::parse(text).ok())
                .and_then(|json| {
                    let key = json.get("key")?.as_str()?.to_string();
                    let result = json.get("result")?.clone();
                    Some((key, result))
                });
            match record {
                Some((key, result)) => {
                    completed.insert(key, result);
                }
                None => {
                    // CRC-valid but unparseable: writer bug or version skew.
                    // Keep the prefix before it, ignore the rest.
                    warning.get_or_insert_with(|| {
                        format!(
                            "checkpoint {}: record {index} unparseable; \
                             ignoring it and {} later records",
                            path.display(),
                            frames.len() - index - 1,
                        )
                    });
                    break;
                }
            }
        }
        let resumed = completed.len();
        Ok((RunCheckpoint { wal, completed, resumed }, warning))
    }

    /// Number of completed units currently recorded.
    #[must_use]
    pub fn len(&self) -> usize {
        self.completed.len()
    }

    /// True when no units are recorded yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.completed.is_empty()
    }

    /// How many completed units were recovered from disk at open — the
    /// units a resumed run gets to skip.
    #[must_use]
    pub fn resumed(&self) -> usize {
        self.resumed
    }

    /// The recorded result of a completed unit, if any.
    #[must_use]
    pub fn completed(&self, key: &str) -> Option<&Json> {
        self.completed.get(key)
    }

    /// Records a completed unit: one appended CRC frame, durable against
    /// `kill -9` the moment this returns. Duplicate keys overwrite (last
    /// writer wins on replay).
    ///
    /// # Errors
    ///
    /// Propagates append I/O errors, including the injected
    /// `checkpoint.write` kill (which first leaves a genuinely torn record
    /// on disk, as a real crash would). The in-memory map is updated either
    /// way, so the running process keeps its own progress.
    pub fn record(&mut self, key: &str, result: Json) -> io::Result<()> {
        let payload =
            Json::object([("key", Json::Str(key.to_string())), ("result", result.clone())])
                .to_string();
        self.completed.insert(key.to_string(), result);
        // Fault-injection point: `checkpoint.write` — a kill dies mid-append.
        if fault::hit("checkpoint.write") {
            self.wal.append_torn(payload.as_bytes())?;
            return Err(io::Error::new(
                io::ErrorKind::Interrupted,
                "injected fault: checkpoint.write killed mid-append",
            ));
        }
        self.wal.append(payload.as_bytes())
    }

    /// The path of the underlying log file.
    #[must_use]
    pub fn path(&self) -> &Path {
        self.wal.path()
    }

    /// Records the in-flight exploration snapshot of the unit `key` (an
    /// [`EXPLORE_CHECKPOINT_SCHEMA`] record under a derived key, so it never
    /// collides with the unit's completion record). Re-recording overwrites:
    /// only the newest snapshot matters on replay.
    ///
    /// # Errors
    ///
    /// Same contract as [`RunCheckpoint::record`].
    pub fn record_explore_snapshot(&mut self, key: &str, snapshot: &[u8]) -> io::Result<()> {
        let record = Json::object([
            ("schema", Json::Str(EXPLORE_CHECKPOINT_SCHEMA.to_string())),
            ("snapshot", Json::Str(base64_encode(snapshot))),
        ]);
        self.record(&explore_key(key), record)
    }

    /// The recovered in-flight exploration snapshot of the unit `key`, if a
    /// valid one was recorded. Schema skew or corrupt base64 yields `None`
    /// (the caller restarts the test from scratch, which is always sound).
    #[must_use]
    pub fn explore_snapshot(&self, key: &str) -> Option<Vec<u8>> {
        let record = self.completed(&explore_key(key))?;
        if record.get("schema")?.as_str()? != EXPLORE_CHECKPOINT_SCHEMA {
            return None;
        }
        base64_decode(record.get("snapshot")?.as_str()?)
    }
}

fn explore_key(key: &str) -> String {
    format!("explore-snapshot:{key}")
}

const BASE64_ALPHABET: &[u8; 64] =
    b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Standard base64 with padding (snapshots are binary; JSON strings are not).
fn base64_encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len().div_ceil(3) * 4);
    for chunk in bytes.chunks(3) {
        let b = [chunk[0], chunk.get(1).copied().unwrap_or(0), chunk.get(2).copied().unwrap_or(0)];
        let group = (u32::from(b[0]) << 16) | (u32::from(b[1]) << 8) | u32::from(b[2]);
        for position in 0..4 {
            if position <= chunk.len() {
                let index = (group >> (18 - 6 * position)) & 0x3f;
                out.push(BASE64_ALPHABET[index as usize] as char);
            } else {
                out.push('=');
            }
        }
    }
    out
}

/// Inverse of [`base64_encode`]; `None` on any malformed input.
fn base64_decode(text: &str) -> Option<Vec<u8>> {
    let text = text.as_bytes();
    if !text.len().is_multiple_of(4) {
        return None;
    }
    let mut out = Vec::with_capacity(text.len() / 4 * 3);
    for chunk in text.chunks(4) {
        let pad = chunk.iter().rev().take_while(|&&c| c == b'=').count();
        if pad > 2 || chunk[..4 - pad].contains(&b'=') {
            return None;
        }
        let mut group: u32 = 0;
        for &c in &chunk[..4 - pad] {
            let value = BASE64_ALPHABET.iter().position(|&a| a == c)?;
            group = (group << 6) | value as u32;
        }
        group <<= 6 * pad as u32;
        let bytes = group.to_be_bytes();
        out.extend_from_slice(&bytes[1..4 - pad]);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base64_round_trips_all_lengths() {
        for len in 0..64usize {
            let bytes: Vec<u8> = (0..len).map(|i| (i * 37 + 11) as u8).collect();
            let encoded = base64_encode(&bytes);
            assert_eq!(encoded.len() % 4, 0);
            assert_eq!(base64_decode(&encoded).as_deref(), Some(bytes.as_slice()), "len {len}");
        }
        assert_eq!(base64_encode(b"any carnal pleasure."), "YW55IGNhcm5hbCBwbGVhc3VyZS4=");
        assert!(base64_decode("a===").is_none());
        assert!(base64_decode("abc").is_none());
        assert!(base64_decode("ab=c").is_none());
        assert!(base64_decode("ab!d").is_none());
    }

    #[test]
    fn explore_snapshots_record_and_recover() {
        let dir = std::env::temp_dir().join(format!("gam-ckpt-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.ckpt");
        let snapshot: Vec<u8> = (0..=255u8).collect();
        {
            let (mut ckpt, warning) = RunCheckpoint::open(&path).unwrap();
            assert!(warning.is_none());
            ckpt.record_explore_snapshot("unit-a", b"stale").unwrap();
            ckpt.record_explore_snapshot("unit-a", &snapshot).unwrap();
            // Snapshot keys never shadow completion records.
            assert!(ckpt.completed("unit-a").is_none());
        }
        let (ckpt, warning) = RunCheckpoint::open(&path).unwrap();
        assert!(warning.is_none());
        // Last writer wins on replay.
        assert_eq!(ckpt.explore_snapshot("unit-a").as_deref(), Some(snapshot.as_slice()));
        assert!(ckpt.explore_snapshot("unit-b").is_none());
        std::fs::remove_dir_all(&dir).ok();
    }
}
