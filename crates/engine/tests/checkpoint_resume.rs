//! The run checkpoint's crash contract: everything `record` returned `Ok`
//! for is visible after reopening, damage only ever costs the torn tail,
//! and duplicate keys resolve last-writer-wins.

use std::fs;
use std::path::PathBuf;

use gam_core::fault;
use gam_engine::{Json, RunCheckpoint};

struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        let mut path = std::env::temp_dir();
        path.push(format!("gam-checkpoint-{}-{tag}.log", std::process::id()));
        let _ = fs::remove_file(&path);
        Scratch(path)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.0);
    }
}

fn unit(value: u64) -> Json {
    Json::object([("states_visited", Json::UInt(value)), ("agree", Json::Bool(true))])
}

#[test]
fn recorded_units_survive_reopen_and_duplicates_take_the_last_writer() {
    let scratch = Scratch::new("roundtrip");
    let (mut checkpoint, warning) = RunCheckpoint::open(&scratch.0).expect("open fresh");
    assert!(warning.is_none());
    assert!(checkpoint.is_empty());
    assert_eq!(checkpoint.resumed(), 0);

    checkpoint.record("bench/GAM/mp/abc", unit(10)).expect("record");
    checkpoint.record("bench/GAM/sb/abc", unit(20)).expect("record");
    // Re-recording a key (a resumed run finishing the interrupted unit
    // again) overwrites: last writer wins on replay.
    checkpoint.record("bench/GAM/mp/abc", unit(11)).expect("record");
    assert_eq!(checkpoint.len(), 2);
    drop(checkpoint);

    let (reopened, warning) = RunCheckpoint::open(&scratch.0).expect("reopen");
    assert!(warning.is_none());
    assert_eq!(reopened.resumed(), 2);
    assert_eq!(
        reopened
            .completed("bench/GAM/mp/abc")
            .and_then(|r| r.get("states_visited"))
            .and_then(Json::as_u64),
        Some(11),
        "duplicate key must resolve to the later record"
    );
    assert_eq!(
        reopened
            .completed("bench/GAM/sb/abc")
            .and_then(|r| r.get("states_visited"))
            .and_then(Json::as_u64),
        Some(20)
    );
    assert!(reopened.completed("bench/GAM/mp/DIFFERENT-HASH").is_none());
}

#[test]
fn a_torn_tail_costs_only_the_record_being_written() {
    let scratch = Scratch::new("torn");
    let (mut checkpoint, _) = RunCheckpoint::open(&scratch.0).expect("open");
    checkpoint.record("unit/1", unit(1)).expect("record");
    checkpoint.record("unit/2", unit(2)).expect("record");
    drop(checkpoint);

    // Simulate a crash mid-append: garbage where the third record's frame
    // would start.
    let mut bytes = fs::read(&scratch.0).expect("checkpoint bytes");
    bytes.extend_from_slice(&[0x2A, 0x00, 0x00]);
    fs::write(&scratch.0, &bytes).expect("write damaged");

    let (recovered, warning) = RunCheckpoint::open(&scratch.0).expect("damage is not an error");
    assert_eq!(recovered.resumed(), 2, "the committed prefix survives");
    assert!(recovered.completed("unit/1").is_some());
    assert!(recovered.completed("unit/2").is_some());
    assert!(warning.expect("damage is reported").contains("torn"));
}

#[test]
fn checkpoint_write_kill_errs_but_keeps_in_memory_progress() {
    let _guard = fault::exclusive();
    let scratch = Scratch::new("fault");
    let (mut checkpoint, _) = RunCheckpoint::open(&scratch.0).expect("open");
    checkpoint.record("unit/1", unit(1)).expect("record");

    fault::install("checkpoint.write=kill").expect("valid plan");
    let err = checkpoint.record("unit/2", unit(2)).expect_err("injected kill surfaces");
    assert_eq!(err.kind(), std::io::ErrorKind::Interrupted);
    fault::reset();
    // The running process keeps its own progress even though durability for
    // that unit was lost...
    assert_eq!(checkpoint.len(), 2);
    drop(checkpoint);

    // ...and a restart sees the committed record plus a genuinely torn tail
    // where the killed append stopped.
    let (recovered, warning) = RunCheckpoint::open(&scratch.0).expect("reopen");
    assert_eq!(recovered.resumed(), 1);
    assert!(recovered.completed("unit/1").is_some());
    assert!(recovered.completed("unit/2").is_none());
    assert!(warning.expect("torn tail is reported").contains("torn"));
}

#[test]
fn a_foreign_file_is_abandoned_not_trusted() {
    let scratch = Scratch::new("magic");
    fs::write(&scratch.0, "some-other-format/v9\npayload\n").expect("write foreign file");
    let (checkpoint, warning) = RunCheckpoint::open(&scratch.0).expect("open");
    assert!(checkpoint.is_empty(), "foreign content must not masquerade as completed units");
    assert!(warning.expect("abandonment is reported").contains("magic"));
}
