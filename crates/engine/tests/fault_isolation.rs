//! Panic isolation under deterministic fault injection.
//!
//! These tests arm `gam_core::fault` plans that make the backends panic
//! mid-check and assert the engine's robustness contract: a panicking
//! checker surfaces as a typed [`EngineError::Panicked`], the session
//! worker pool survives and keeps answering, and suite runs report the
//! panic as a per-test error instead of dying.
//!
//! The fault plan is process-global, so every test takes
//! [`fault::exclusive`] for its whole `install`..`reset` span.

use std::panic;

use gam_core::{fault, ModelKind};
use gam_engine::{Backend, CheckBudget, Engine, EngineError};
use gam_isa::litmus::library;

/// Runs `body` with panic backtraces suppressed (injected panics are the
/// point of these tests; their default reports would spam the output).
fn quiet_panics<T>(body: impl FnOnce() -> T) -> T {
    let hook = panic::take_hook();
    panic::set_hook(Box::new(|_| {}));
    let result = body();
    panic::set_hook(hook);
    result
}

#[test]
fn injected_explorer_panic_is_a_typed_error_and_the_engine_survives() {
    let _guard = fault::exclusive();
    fault::install("explore=panic").expect("valid fault spec");
    let engine = Engine::operational(ModelKind::Gam).expect("operational engine");
    let test = library::mp();

    let err = quiet_panics(|| engine.check_budgeted(&test, &CheckBudget::none()))
        .expect_err("armed explorer must panic");
    match &err {
        EngineError::Panicked { payload } => {
            assert!(payload.contains("injected fault: explore"), "payload: {payload}");
        }
        other => panic!("expected Panicked, got {other}"),
    }
    assert!(err.to_string().starts_with("the checker panicked"), "{err}");

    // Disarm: the same engine answers normally — nothing was poisoned.
    fault::reset();
    let outcome = engine.check_budgeted(&test, &CheckBudget::none()).expect("clean recheck");
    assert!(outcome.verdict.is_conclusive());
}

#[test]
fn injected_axiomatic_panic_is_a_typed_error() {
    let _guard = fault::exclusive();
    fault::install("axiomatic=panic").expect("valid fault spec");
    let engine = Engine::axiomatic(ModelKind::Gam);
    let test = library::corr();

    let err = quiet_panics(|| engine.check_budgeted(&test, &CheckBudget::none()))
        .expect_err("armed axiomatic enumeration must panic");
    assert!(matches!(err, EngineError::Panicked { .. }), "got {err}");

    fault::reset();
    assert!(engine.check_budgeted(&test, &CheckBudget::none()).is_ok());
}

#[test]
fn session_pool_workers_survive_panicking_jobs() {
    let _guard = fault::exclusive();
    let engine = Engine::builder()
        .model(ModelKind::Gam)
        .backend(Backend::Operational)
        .parallelism(1)
        .build()
        .expect("single-worker engine");
    let test = library::corr();

    // Three panicking submissions in a row onto the single worker thread —
    // each must come back as a typed error, never as a dead worker or a
    // hung handle.
    fault::install("explore=panic").expect("valid fault spec");
    quiet_panics(|| {
        for _ in 0..3 {
            let handle = engine.submit(&test);
            let err = handle.wait().expect_err("armed submission must fail");
            assert!(matches!(err, EngineError::Panicked { .. }), "got {err}");
        }
    });

    // The same worker (parallelism 1) then answers a clean submission.
    fault::reset();
    let outcome = engine.submit(&test).wait().expect("worker survived the panics");
    assert_eq!(outcome.verdict.to_string(), "forbidden", "corr is forbidden under GAM");
}

#[test]
fn suite_runs_report_panics_per_test_and_finish() {
    let _guard = fault::exclusive();
    // Every 2nd exploration panics: a suite over 4 tests gets a mix of
    // verdicts and typed per-test errors, and the run itself completes.
    fault::install("explore=panic@2").expect("valid fault spec");
    let engine = Engine::builder()
        .model(ModelKind::Gam)
        .backend(Backend::Operational)
        .parallelism(1)
        .build()
        .expect("operational engine");
    let tests = [library::corr(), library::mp(), library::dekker(), library::iriw()];
    let report = quiet_panics(|| engine.run_suite(&tests));
    fault::reset();

    assert_eq!(report.reports.len(), tests.len());
    let panicked: Vec<_> = report
        .reports
        .iter()
        .filter(|r| r.error.as_deref().is_some_and(|e| e.starts_with("the checker panicked")))
        .collect();
    let clean = report.reports.iter().filter(|r| r.verdict.is_some()).count();
    assert!(!panicked.is_empty(), "the armed plan must catch some tests");
    assert!(clean > 0, "the plan must spare some tests");
    assert_eq!(panicked.len() + clean, tests.len());

    // A disarmed rerun is fully clean.
    assert!(engine.run_suite(&tests).all_ok());
}

#[test]
fn injected_delay_exhausts_a_wall_budget() {
    let _guard = fault::exclusive();
    // A 50 ms injected stall against a 10 ms budget: the check must come
    // back inconclusive (wall budget), not hang and not error.
    fault::install("explore=delay:50").expect("valid fault spec");
    let engine = Engine::operational(ModelKind::Gam).expect("operational engine");
    let budget = CheckBudget::none().with_max_wall(std::time::Duration::from_millis(10));
    let outcome = engine.check_budgeted(&library::iriw(), &budget).expect("typed result");
    fault::reset();
    match outcome.verdict {
        gam_engine::SessionVerdict::Inconclusive { reason, .. } => {
            assert!(reason.to_string().contains("wall budget"), "reason: {reason}");
        }
        other => panic!("expected an inconclusive verdict, got {other}"),
    }
}
