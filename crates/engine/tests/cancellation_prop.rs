//! Property: cancellation is sound at any point in a check's life.
//!
//! Each case submits a check to the session pool, cancels it after a
//! randomized delay (from "before the worker even picks it up" to "long
//! after it finished"), and asserts the robustness contract:
//!
//! * the handle always resolves — no deadlock, whatever the timing race;
//! * the result is either the true conclusive verdict (cancel arrived too
//!   late) or `Inconclusive` with the `cancelled` stop reason — never an
//!   error, never a partial value masquerading as conclusive;
//! * a re-submission on the same (single-worker) engine yields the exact
//!   blocking-API verdict — cancellation poisons nothing.

use std::time::Duration;

use gam_core::{ModelKind, StopReason};
use gam_engine::{Backend, Engine, SessionVerdict};
use gam_isa::litmus::{library, LitmusTest};
use proptest::prelude::*;

fn test_by_index(index: usize) -> LitmusTest {
    match index % 4 {
        0 => library::corr(),
        1 => library::mp(),
        2 => library::dekker(),
        _ => library::iriw(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn cancellation_at_random_times_is_sound(test_index in 0usize..4, delay_us in 0u64..1500) {
        let test = test_by_index(test_index);
        let engine = Engine::builder()
            .model(ModelKind::Gam)
            .backend(Backend::Operational)
            .parallelism(1)
            .build()
            .expect("single-worker operational engine");
        let expected = engine.check(&test).expect("blocking verdict");

        let handle = engine.submit(&test);
        std::thread::sleep(Duration::from_micros(delay_us));
        handle.cancel();

        // The handle must resolve promptly — a cancelled check cannot hang.
        let resolved = handle.wait_timeout(Duration::from_secs(60));
        prop_assert!(resolved.is_some(), "cancelled handle deadlocked");
        match resolved.unwrap() {
            Ok(outcome) => match outcome.verdict {
                SessionVerdict::Inconclusive { reason, .. } => {
                    prop_assert_eq!(reason, StopReason::Cancelled);
                }
                conclusive => {
                    // The cancel lost the race: the verdict must be the truth.
                    prop_assert_eq!(conclusive.as_verdict(), Some(expected));
                }
            },
            Err(err) => prop_assert!(false, "cancellation must not error: {}", err),
        }

        // Same worker, same test, no cancel: the exact blocking verdict.
        let retry = engine.submit(&test).wait().expect("post-cancel resubmission");
        prop_assert_eq!(retry.verdict.as_verdict(), Some(expected));
    }
}
