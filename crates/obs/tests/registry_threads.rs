//! Concurrency property test for the metrics registry: 8 threads hammer the
//! same named metrics and every total must reconcile exactly — counters are
//! never lossy and histograms count exactly their observations.

use std::sync::Barrier;

use gam_obs::metrics::Registry;

const THREADS: usize = 8;
const ROUNDS: usize = 64;

/// A tiny deterministic PRNG (xorshift64*), so each thread's increments are
/// irregular but reproducible.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

#[test]
fn eight_threads_hammering_reconcile_exactly() {
    let registry = Registry::new();
    let barrier = Barrier::new(THREADS);
    let totals: Vec<(u64, u64, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let registry = registry.clone();
                let barrier = &barrier;
                scope.spawn(move || {
                    // Every thread resolves the same names itself: the
                    // registration race is part of what's under test.
                    let counter = registry.counter("hammer.count");
                    let gauge = registry.gauge("hammer.level");
                    let histogram = registry.histogram("hammer.lat_us");
                    let mut rng = Rng(0x9E37_79B9 + t as u64);
                    let mut added = 0u64;
                    let mut observed = 0u64;
                    let mut observed_sum = 0u64;
                    barrier.wait();
                    for _ in 0..ROUNDS {
                        let n = rng.next() % 7 + 1;
                        counter.add(n);
                        added += n;
                        let v = rng.next() % 100_000;
                        histogram.observe(v);
                        observed += 1;
                        observed_sum += v;
                        gauge.add(1);
                        gauge.add(-1);
                    }
                    (added, observed, observed_sum)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("hammer thread")).collect()
    });

    let expected_count: u64 = totals.iter().map(|t| t.0).sum();
    let expected_observations: u64 = totals.iter().map(|t| t.1).sum();
    let expected_sum: u64 = totals.iter().map(|t| t.2).sum();

    assert_eq!(registry.counter("hammer.count").get(), expected_count);
    assert_eq!(registry.gauge("hammer.level").get(), 0);
    let snapshot = registry.histogram("hammer.lat_us").snapshot();
    assert_eq!(snapshot.count, expected_observations);
    assert_eq!(snapshot.count, (THREADS * ROUNDS) as u64);
    assert_eq!(snapshot.sum, expected_sum);
    assert!(snapshot.p50 <= snapshot.p90 && snapshot.p90 <= snapshot.p99);
    // Quantile estimates are bucket upper bounds: p99 can overshoot the true
    // maximum by at most its own bucket.
    assert!(snapshot.p99 <= snapshot.max.next_power_of_two().max(1) * 2);

    // The renderers agree with the atomically-read totals.
    let json = registry.render_json();
    assert!(json.contains(&format!("\"hammer.count\":{expected_count}")));
    let prom = registry.render_prometheus_text();
    assert!(prom.contains(&format!("hammer_count {expected_count}\n")));
    assert!(prom.contains(&format!("hammer_lat_us_count {expected_observations}\n")));
}
