//! The metrics registry: named counters, gauges and log-bucketed histograms.
//!
//! A [`Registry`] is a cheaply-cloneable handle to a shared metric table.
//! Registration (the first lookup of a name) takes a mutex; every update
//! after that is a plain atomic operation on the handle the caller keeps, so
//! the hot path is lock-free. Metric values are integers throughout — the
//! repository's JSON dialect is deliberately float-free, so rates and
//! quantiles are reported as integer microseconds / per-mille ratios.
//!
//! Histograms bucket observations by bit length (powers of two): 65 buckets
//! cover the full `u64` range, and quantile snapshots report the inclusive
//! upper bound of the bucket where the cumulative count crosses the
//! quantile. That makes p50/p90/p99 *estimates* with at most 2x relative
//! error — plenty for latency triage, and snapshot cost is independent of
//! the observation count.
//!
//! A process-wide default registry is available via [`global`]; components
//! that need isolation (one server per test, say) build their own
//! [`Registry`] instead.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};

/// Number of histogram buckets: one per possible bit length of a `u64`
/// observation (0 through 64).
const BUCKETS: usize = 65;

fn lock_tolerant<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A monotonically increasing counter. Clones share the same cell.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous value. Clones share the same cell.
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Replaces the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// The current value.
    #[must_use]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramCore {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl HistogramCore {
    fn new() -> HistogramCore {
        HistogramCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// A log-bucketed histogram. Clones share the same cells.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramCore>);

/// The index of the bucket holding `v`: its bit length, so bucket `b > 0`
/// holds values in `[2^(b-1), 2^b - 1]` and bucket 0 holds exactly 0.
fn bucket_of(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// The inclusive upper bound of bucket `b` — the value a quantile snapshot
/// reports for observations that landed there.
fn bucket_bound(b: usize) -> u64 {
    if b == 0 {
        0
    } else if b >= 64 {
        u64::MAX
    } else {
        (1u64 << b) - 1
    }
}

impl Histogram {
    /// Records one observation.
    pub fn observe(&self, v: u64) {
        let core = &self.0;
        core.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        core.count.fetch_add(1, Ordering::Relaxed);
        core.sum.fetch_add(v, Ordering::Relaxed);
        core.max.fetch_max(v, Ordering::Relaxed);
    }

    /// The number of observations so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// A consistent-enough point-in-time summary (buckets are read without
    /// stopping writers; totals can trail by in-flight observations).
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let core = &self.0;
        let buckets: Vec<u64> = core.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        let count: u64 = buckets.iter().sum();
        let quantile = |q_num: u64, q_den: u64| -> u64 {
            if count == 0 {
                return 0;
            }
            // Rank of the quantile observation, 1-based, rounding up.
            let rank = (count * q_num).div_ceil(q_den).max(1);
            let mut seen = 0u64;
            for (b, &n) in buckets.iter().enumerate() {
                seen += n;
                if seen >= rank {
                    return bucket_bound(b);
                }
            }
            bucket_bound(BUCKETS - 1)
        };
        HistogramSnapshot {
            count,
            sum: core.sum.load(Ordering::Relaxed),
            max: core.max.load(Ordering::Relaxed),
            p50: quantile(1, 2),
            p90: quantile(9, 10),
            p99: quantile(99, 100),
        }
    }
}

/// Point-in-time summary of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Largest observed value.
    pub max: u64,
    /// Median estimate (inclusive bucket upper bound).
    pub p50: u64,
    /// 90th-percentile estimate.
    pub p90: u64,
    /// 99th-percentile estimate.
    pub p99: u64,
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// A named collection of metrics. Cloning shares the underlying table.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    metrics: Arc<Mutex<BTreeMap<String, Metric>>>,
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The counter registered under `name`, creating it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    #[must_use]
    pub fn counter(&self, name: &str) -> Counter {
        let mut metrics = lock_tolerant(&self.metrics);
        let metric = metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Counter(Arc::new(AtomicU64::new(0)))));
        match metric {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric `{name}` is not a counter"),
        }
    }

    /// The gauge registered under `name`, creating it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut metrics = lock_tolerant(&self.metrics);
        let metric = metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Gauge(Arc::new(AtomicI64::new(0)))));
        match metric {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("metric `{name}` is not a gauge"),
        }
    }

    /// The histogram registered under `name`, creating it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut metrics = lock_tolerant(&self.metrics);
        let metric = metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Histogram(Arc::new(HistogramCore::new()))));
        match metric {
            Metric::Histogram(h) => h.clone(),
            _ => panic!("metric `{name}` is not a histogram"),
        }
    }

    /// The registered metric names, sorted.
    #[must_use]
    pub fn names(&self) -> Vec<String> {
        lock_tolerant(&self.metrics).keys().cloned().collect()
    }

    /// Renders every metric as a JSON object: counters and gauges as
    /// integers, histograms as `{count, sum, max, p50, p90, p99}` objects.
    /// Keys are sorted (the table is a `BTreeMap`), so output is stable.
    #[must_use]
    pub fn render_json(&self) -> String {
        let metrics = lock_tolerant(&self.metrics);
        let mut out = String::from("{");
        let mut first = true;
        for (name, metric) in metrics.iter() {
            if !first {
                out.push(',');
            }
            first = false;
            out.push('"');
            out.push_str(&escape_json(name));
            out.push_str("\":");
            match metric {
                Metric::Counter(c) => out.push_str(&c.get().to_string()),
                Metric::Gauge(g) => out.push_str(&g.get().to_string()),
                Metric::Histogram(h) => {
                    let s = h.snapshot();
                    out.push_str(&format!(
                        "{{\"count\":{},\"sum\":{},\"max\":{},\"p50\":{},\"p90\":{},\"p99\":{}}}",
                        s.count, s.sum, s.max, s.p50, s.p90, s.p99
                    ));
                }
            }
        }
        out.push('}');
        out
    }

    /// Renders every metric in the Prometheus text exposition format
    /// (version 0.0.4): counters and gauges as single samples, histograms
    /// as summaries with `quantile` labels plus `_sum` / `_count`.
    #[must_use]
    pub fn render_prometheus_text(&self) -> String {
        let metrics = lock_tolerant(&self.metrics);
        let mut out = String::new();
        for (name, metric) in metrics.iter() {
            let prom = sanitize_prometheus_name(name);
            match metric {
                Metric::Counter(c) => {
                    out.push_str(&format!("# TYPE {prom} counter\n{prom} {}\n", c.get()));
                }
                Metric::Gauge(g) => {
                    out.push_str(&format!("# TYPE {prom} gauge\n{prom} {}\n", g.get()));
                }
                Metric::Histogram(h) => {
                    let s = h.snapshot();
                    out.push_str(&format!(
                        "# TYPE {prom} summary\n\
                         {prom}{{quantile=\"0.5\"}} {}\n\
                         {prom}{{quantile=\"0.9\"}} {}\n\
                         {prom}{{quantile=\"0.99\"}} {}\n\
                         {prom}_sum {}\n\
                         {prom}_count {}\n",
                        s.p50, s.p90, s.p99, s.sum, s.count
                    ));
                }
            }
        }
        out
    }
}

/// Maps a registry name onto the Prometheus metric-name alphabet
/// `[a-zA-Z_:][a-zA-Z0-9_:]*` (dots and dashes become underscores).
#[must_use]
pub fn sanitize_prometheus_name(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '_' || c == ':' { c } else { '_' })
        .collect();
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Escapes a string for inclusion in a JSON string literal.
#[must_use]
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-wide default registry.
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_register_once_and_share_cells() {
        let reg = Registry::new();
        let a = reg.counter("requests");
        let b = reg.counter("requests");
        a.inc();
        b.add(2);
        assert_eq!(reg.counter("requests").get(), 3);
        let g = reg.gauge("depth");
        g.set(5);
        g.add(-2);
        assert_eq!(reg.gauge("depth").get(), 3);
        assert_eq!(reg.names(), vec!["depth".to_string(), "requests".to_string()]);
    }

    #[test]
    #[should_panic(expected = "not a counter")]
    fn kind_mismatch_panics() {
        let reg = Registry::new();
        let _ = reg.gauge("x");
        let _ = reg.counter("x");
    }

    #[test]
    fn histogram_buckets_by_bit_length() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_bound(0), 0);
        assert_eq!(bucket_bound(1), 1);
        assert_eq!(bucket_bound(2), 3);
        assert_eq!(bucket_bound(64), u64::MAX);
    }

    #[test]
    fn histogram_quantiles_bound_the_data() {
        let reg = Registry::new();
        let h = reg.histogram("lat");
        // 100 observations: 90 fast (value 10), 10 slow (value 1000).
        for _ in 0..90 {
            h.observe(10);
        }
        for _ in 0..10 {
            h.observe(1000);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.sum, 90 * 10 + 10 * 1000);
        assert_eq!(s.max, 1000);
        // p50 and p90 land in the bucket holding 10 ([8, 15]); p99 lands in
        // the bucket holding 1000 ([512, 1023]).
        assert_eq!(s.p50, 15);
        assert_eq!(s.p90, 15);
        assert_eq!(s.p99, 1023);
    }

    #[test]
    fn empty_histogram_snapshot_is_zero() {
        let reg = Registry::new();
        let s = reg.histogram("empty").snapshot();
        assert_eq!(s, HistogramSnapshot { count: 0, sum: 0, max: 0, p50: 0, p90: 0, p99: 0 });
    }

    #[test]
    fn json_rendering_is_stable_and_integer_only() {
        let reg = Registry::new();
        reg.counter("b.count").add(7);
        reg.gauge("a.depth").set(-2);
        reg.histogram("c.lat").observe(3);
        let json = reg.render_json();
        assert_eq!(
            json,
            "{\"a.depth\":-2,\"b.count\":7,\
             \"c.lat\":{\"count\":1,\"sum\":3,\"max\":3,\"p50\":3,\"p90\":3,\"p99\":3}}"
        );
    }

    #[test]
    fn prometheus_rendering_sanitizes_names() {
        let reg = Registry::new();
        reg.counter("serve.requests_total").add(4);
        reg.histogram("phase.parse.us").observe(8);
        let text = reg.render_prometheus_text();
        assert!(text.contains("# TYPE phase_parse_us summary\n"));
        assert!(text.contains("phase_parse_us{quantile=\"0.5\"} 15\n"));
        assert!(text.contains("phase_parse_us_count 1\n"));
        assert!(text.contains("# TYPE serve_requests_total counter\nserve_requests_total 4\n"));
        assert_eq!(sanitize_prometheus_name("9lives"), "_9lives");
        assert_eq!(sanitize_prometheus_name(""), "_");
    }

    #[test]
    fn escape_json_handles_controls_and_quotes() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }
}
