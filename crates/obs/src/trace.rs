//! Structured tracing: spans, instant events, and a Chrome trace exporter.
//!
//! Tracing is **disarmed by default**: [`span`] and [`event`] cost a single
//! relaxed atomic load and allocate nothing until [`arm`] flips the global
//! flag (the `--trace-out` CLI flag does). When armed, finished spans and
//! events land in a bounded process-wide ring buffer; once full, the oldest
//! records are dropped (and counted), so a long run can always export its
//! *recent* history without unbounded memory.
//!
//! Spans nest per thread: each thread keeps a stack of open span ids, a new
//! span's parent is the top of the stack, and every record carries a stable
//! small integer thread id. A *trace id* — one per logical operation, e.g.
//! one HTTP request or one CLI invocation — is thread-local too; engine
//! session workers re-install the submitter's trace id before running a job
//! so a request's spans correlate across threads ([`set_trace_id`]).
//!
//! [`export_chrome`] renders the buffer in the Chrome `trace_event` JSON
//! format (an object with a `traceEvents` array of `"X"` complete events),
//! loadable in `chrome://tracing` or Perfetto. Complete events carry their
//! duration, so span begin/end are balanced by construction.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Instant;

use crate::metrics::escape_json;

/// Default ring-buffer capacity, in records (spans + events).
pub const DEFAULT_RING_CAPACITY: usize = 65_536;

static ARMED: AtomicBool = AtomicBool::new(false);
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_TRACE_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(1);
static EPOCH: OnceLock<Instant> = OnceLock::new();

fn lock_tolerant<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

/// Microseconds since the process trace epoch (first use of the tracer).
#[must_use]
pub fn now_us() -> u64 {
    u64::try_from(epoch().elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// Whether tracing is collecting. A single relaxed load — the entire cost
/// of every disarmed [`span`] / [`event`] call.
#[must_use]
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Starts collecting. Pins the trace epoch if this is the first use.
pub fn arm() {
    let _ = epoch();
    ARMED.store(true, Ordering::Release);
}

/// Stops collecting. Already-buffered records stay until [`clear`].
pub fn disarm() {
    ARMED.store(false, Ordering::Release);
}

/// One finished span: a named interval on one thread.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Span name (phase or operation).
    pub name: String,
    /// Span id, unique within the process.
    pub id: u64,
    /// Id of the enclosing span on the same thread, or 0 for a root.
    pub parent: u64,
    /// The logical-operation id this span belongs to (0 if none was set).
    pub trace_id: u64,
    /// Stable small integer id of the recording thread.
    pub tid: u64,
    /// Start, microseconds since the trace epoch.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Extra key/value annotations.
    pub args: Vec<(String, String)>,
}

/// One instant event: a named point in time on one thread.
#[derive(Debug, Clone)]
pub struct EventRecord {
    /// Event name.
    pub name: String,
    /// The logical-operation id (0 if none was set).
    pub trace_id: u64,
    /// Stable small integer id of the recording thread.
    pub tid: u64,
    /// Timestamp, microseconds since the trace epoch.
    pub ts_us: u64,
    /// Extra key/value annotations.
    pub args: Vec<(String, String)>,
}

#[derive(Debug)]
enum Record {
    Span(SpanRecord),
    Event(EventRecord),
}

#[derive(Debug)]
struct Ring {
    records: VecDeque<Record>,
    capacity: usize,
    dropped: u64,
}

impl Ring {
    fn push(&mut self, record: Record) {
        if self.records.len() >= self.capacity {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back(record);
    }
}

static RING: OnceLock<Mutex<Ring>> = OnceLock::new();

fn ring() -> &'static Mutex<Ring> {
    RING.get_or_init(|| {
        Mutex::new(Ring { records: VecDeque::new(), capacity: DEFAULT_RING_CAPACITY, dropped: 0 })
    })
}

struct ThreadState {
    tid: u64,
    trace_id: u64,
    stack: Vec<u64>,
}

thread_local! {
    static THREAD: RefCell<ThreadState> = RefCell::new(ThreadState {
        tid: NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed),
        trace_id: 0,
        stack: Vec::new(),
    });
}

/// Allocates a fresh trace id (never 0).
#[must_use]
pub fn next_trace_id() -> u64 {
    // SplitMix64 over a sequence counter: ids look random (so adjacent
    // requests are visually distinct) but are deterministic per process.
    let mut z = NEXT_TRACE_ID.fetch_add(1, Ordering::Relaxed).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    let id = z ^ (z >> 31);
    if id == 0 {
        1
    } else {
        id
    }
}

/// Installs `trace_id` as the current thread's logical-operation id.
pub fn set_trace_id(trace_id: u64) {
    THREAD.with(|t| t.borrow_mut().trace_id = trace_id);
}

/// The current thread's logical-operation id (0 if none was set).
#[must_use]
pub fn current_trace_id() -> u64 {
    THREAD.with(|t| t.borrow().trace_id)
}

/// Formats a trace id the way headers and logs carry it: 16 hex digits.
#[must_use]
pub fn format_trace_id(trace_id: u64) -> String {
    format!("{trace_id:016x}")
}

/// An open span; closing (dropping) it records the interval. Disarmed spans
/// are inert no-ops.
#[derive(Debug)]
#[must_use = "dropping the span immediately records a zero-length interval"]
pub struct Span {
    open: Option<OpenSpan>,
}

#[derive(Debug)]
struct OpenSpan {
    name: String,
    id: u64,
    parent: u64,
    trace_id: u64,
    tid: u64,
    start_us: u64,
    args: Vec<(String, String)>,
}

impl Span {
    /// Annotates the span with a key/value pair (no-op when disarmed).
    pub fn arg(&mut self, key: &str, value: impl ToString) {
        if let Some(open) = &mut self.open {
            open.args.push((key.to_string(), value.to_string()));
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(open) = self.open.take() else { return };
        THREAD.with(|t| {
            let mut t = t.borrow_mut();
            // Pop this span (it is the top unless an inner span leaked; be
            // tolerant and search from the top).
            if let Some(pos) = t.stack.iter().rposition(|&id| id == open.id) {
                t.stack.truncate(pos);
            }
        });
        // End on the same monotonic clock the start came from: a child that
        // closes before its parent then always has end(child) <= end(parent)
        // in the exported integers, keeping nesting exact — timing both
        // endpoints independently would let truncation invert them by 1us.
        let dur_us = now_us().saturating_sub(open.start_us);
        lock_tolerant(ring()).push(Record::Span(SpanRecord {
            name: open.name,
            id: open.id,
            parent: open.parent,
            trace_id: open.trace_id,
            tid: open.tid,
            start_us: open.start_us,
            dur_us,
            args: open.args,
        }));
    }
}

/// Opens a span. When tracing is disarmed this is a single relaxed load and
/// the returned guard is inert.
pub fn span(name: &str) -> Span {
    if !armed() {
        return Span { open: None };
    }
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let (parent, trace_id, tid) = THREAD.with(|t| {
        let mut t = t.borrow_mut();
        let parent = t.stack.last().copied().unwrap_or(0);
        t.stack.push(id);
        (parent, t.trace_id, t.tid)
    });
    Span {
        open: Some(OpenSpan {
            name: name.to_string(),
            id,
            parent,
            trace_id,
            tid,
            start_us: now_us(),
            args: Vec::new(),
        }),
    }
}

/// Records an instant event. Disarmed: a single relaxed load.
pub fn event(name: &str, args: &[(&str, String)]) {
    if !armed() {
        return;
    }
    let (trace_id, tid) = THREAD.with(|t| {
        let t = t.borrow();
        (t.trace_id, t.tid)
    });
    lock_tolerant(ring()).push(Record::Event(EventRecord {
        name: name.to_string(),
        trace_id,
        tid,
        ts_us: now_us(),
        args: args.iter().map(|(k, v)| ((*k).to_string(), v.clone())).collect(),
    }));
}

/// Copies the buffered span records (oldest first). For tests and progress
/// reporting; the records stay buffered.
#[must_use]
pub fn snapshot_spans() -> Vec<SpanRecord> {
    lock_tolerant(ring())
        .records
        .iter()
        .filter_map(|r| match r {
            Record::Span(s) => Some(s.clone()),
            Record::Event(_) => None,
        })
        .collect()
}

/// Copies the buffered instant events (oldest first).
#[must_use]
pub fn snapshot_events() -> Vec<EventRecord> {
    lock_tolerant(ring())
        .records
        .iter()
        .filter_map(|r| match r {
            Record::Event(e) => Some(e.clone()),
            Record::Span(_) => None,
        })
        .collect()
}

/// How many records the ring has discarded to stay within capacity.
#[must_use]
pub fn dropped_records() -> u64 {
    lock_tolerant(ring()).dropped
}

/// Empties the ring buffer and resets the drop counter.
pub fn clear() {
    let mut ring = lock_tolerant(ring());
    ring.records.clear();
    ring.dropped = 0;
}

fn push_args_json(out: &mut String, trace_id: u64, extra: &[(String, String)]) {
    out.push_str("\"args\":{");
    out.push_str(&format!("\"trace_id\":\"{}\"", format_trace_id(trace_id)));
    for (k, v) in extra {
        out.push_str(&format!(",\"{}\":\"{}\"", escape_json(k), escape_json(v)));
    }
    out.push('}');
}

/// Renders the buffered records as Chrome `trace_event` JSON — an object
/// with a `traceEvents` array of complete (`"X"`) and instant (`"i"`)
/// events, loadable in `chrome://tracing` / Perfetto. The buffer is left
/// intact; pair with [`clear`] when exporting once at process exit.
#[must_use]
pub fn export_chrome() -> String {
    let ring = lock_tolerant(ring());
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    for record in &ring.records {
        if !first {
            out.push(',');
        }
        first = false;
        match record {
            Record::Span(s) => {
                out.push_str(&format!(
                    "{{\"name\":\"{}\",\"cat\":\"gam\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\
                     \"ts\":{},\"dur\":{},\"id\":{},",
                    escape_json(&s.name),
                    s.tid,
                    s.start_us,
                    s.dur_us,
                    s.id
                ));
                let mut args = s.args.clone();
                if s.parent != 0 {
                    args.push(("parent".to_string(), s.parent.to_string()));
                }
                push_args_json(&mut out, s.trace_id, &args);
                out.push('}');
            }
            Record::Event(e) => {
                out.push_str(&format!(
                    "{{\"name\":\"{}\",\"cat\":\"gam\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\
                     \"tid\":{},\"ts\":{},",
                    escape_json(&e.name),
                    e.tid,
                    e.ts_us
                ));
                push_args_json(&mut out, e.trace_id, &e.args);
                out.push('}');
            }
        }
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that arm the process-global tracer.
    fn exclusive() -> MutexGuard<'static, ()> {
        static GUARD: Mutex<()> = Mutex::new(());
        GUARD.lock().unwrap_or_else(PoisonError::into_inner)
    }

    #[test]
    fn disarmed_spans_and_events_record_nothing() {
        let _guard = exclusive();
        disarm();
        clear();
        let mut s = span("noop");
        s.arg("k", "v");
        drop(s);
        event("noop", &[]);
        assert!(snapshot_spans().is_empty());
        assert!(snapshot_events().is_empty());
    }

    #[test]
    fn spans_nest_and_carry_trace_ids() {
        let _guard = exclusive();
        arm();
        clear();
        let trace = next_trace_id();
        set_trace_id(trace);
        {
            let _outer = span("outer");
            {
                let mut inner = span("inner");
                inner.arg("states", 42);
            }
        }
        event("tick", &[("n", "1".to_string())]);
        disarm();
        let spans = snapshot_spans();
        set_trace_id(0);
        assert_eq!(spans.len(), 2);
        // Inner closes first.
        assert_eq!(spans[0].name, "inner");
        assert_eq!(spans[1].name, "outer");
        assert_eq!(spans[0].parent, spans[1].id);
        assert_eq!(spans[1].parent, 0);
        assert!(spans.iter().all(|s| s.trace_id == trace));
        assert_eq!(spans[0].args, vec![("states".to_string(), "42".to_string())]);
        let events = snapshot_events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].trace_id, trace);
        clear();
    }

    #[test]
    fn chrome_export_is_wellformed_and_balanced() {
        let _guard = exclusive();
        arm();
        clear();
        {
            let _a = span("a");
            let _b = span("b");
        }
        disarm();
        let json = export_chrome();
        clear();
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"name\":\"a\""));
        assert!(json.contains("\"name\":\"b\""));
        // Complete events carry durations, so begin/end are balanced by
        // construction; check the b span names a's id as parent.
        assert!(json.contains("\"parent\":"));
    }

    #[test]
    fn ring_drops_oldest_beyond_capacity() {
        let _guard = exclusive();
        arm();
        clear();
        // Temporarily shrink is not exposed; emit a handful and check FIFO
        // order instead (capacity is large).
        for i in 0..5 {
            event(&format!("e{i}"), &[]);
        }
        disarm();
        let events = snapshot_events();
        clear();
        let names: Vec<&str> = events.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["e0", "e1", "e2", "e3", "e4"]);
        assert_eq!(dropped_records(), 0);
    }

    #[test]
    fn trace_ids_are_nonzero_and_distinct() {
        let a = next_trace_id();
        let b = next_trace_id();
        assert_ne!(a, 0);
        assert_ne!(b, 0);
        assert_ne!(a, b);
        assert_eq!(format_trace_id(0x1234).len(), 16);
    }
}
