//! Named phase timers: the profiling hooks production code is laced with.
//!
//! A phase is a well-known pipeline stage (`parse`, `canon`, `rf_enum`,
//! `mo_search`, `explore_seq`, `explore_sharded`, `cache_lookup`,
//! `journal_append`, `persist`, …). Instrumented code brackets the stage
//! with [`phase`]; the guard does nothing until either
//!
//! * tracing is armed ([`crate::trace::arm`]) — each phase becomes a span
//!   named `phase.<name>`, or
//! * phase metrics are armed ([`arm_metrics`], done by `gam serve`) — each
//!   phase duration is observed into the `phase.<name>.us` histogram of the
//!   global metrics registry.
//!
//! Disarmed, a phase costs two relaxed loads and allocates nothing — the
//! same contract as `gam_core::fault::hit`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

use crate::metrics;
use crate::trace;

static METRICS_ARMED: AtomicBool = AtomicBool::new(false);

/// Whether phase durations feed the global metrics registry.
#[must_use]
pub fn metrics_armed() -> bool {
    METRICS_ARMED.load(Ordering::Relaxed)
}

/// Starts recording phase durations into the global registry's
/// `phase.<name>.us` histograms.
pub fn arm_metrics() {
    METRICS_ARMED.store(true, Ordering::Release);
}

/// Stops recording phase durations into the registry.
pub fn disarm_metrics() {
    METRICS_ARMED.store(false, Ordering::Release);
}

/// An open phase timer; dropping it records the duration wherever armed.
#[derive(Debug)]
#[must_use = "dropping the guard immediately times an empty phase"]
pub struct PhaseGuard {
    open: Option<OpenPhase>,
}

#[derive(Debug)]
struct OpenPhase {
    name: &'static str,
    started: Instant,
    span: trace::Span,
}

/// Opens the named phase. Disarmed cost: two relaxed loads.
pub fn phase(name: &'static str) -> PhaseGuard {
    let tracing = trace::armed();
    let metrics = metrics_armed();
    if !tracing && !metrics {
        return PhaseGuard { open: None };
    }
    let span = trace::span(&format!("phase.{name}"));
    PhaseGuard { open: Some(OpenPhase { name, started: Instant::now(), span }) }
}

impl PhaseGuard {
    /// Annotates the phase's span (no-op unless tracing is armed).
    pub fn arg(&mut self, key: &str, value: impl ToString) {
        if let Some(open) = &mut self.open {
            open.span.arg(key, value);
        }
    }
}

impl Drop for PhaseGuard {
    fn drop(&mut self) {
        let Some(open) = self.open.take() else { return };
        if metrics_armed() {
            let us = u64::try_from(open.started.elapsed().as_micros()).unwrap_or(u64::MAX);
            metrics::global().histogram(&format!("phase.{}.us", open.name)).observe(us);
        }
        drop(open.span);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_phase_is_inert() {
        // Tracing and phase metrics default to disarmed in a fresh process;
        // other tests in this binary may arm tracing concurrently, so only
        // assert the metrics half here.
        disarm_metrics();
        let before: Vec<String> = metrics::global().names();
        {
            let mut p = phase("unit_test_inert");
            p.arg("k", "v");
        }
        let after: Vec<String> = metrics::global().names();
        assert!(!after.iter().any(|n| n.contains("unit_test_inert")));
        assert_eq!(before.len(), after.len());
    }

    #[test]
    fn armed_phase_observes_a_duration() {
        arm_metrics();
        {
            let _p = phase("unit_test_armed");
        }
        disarm_metrics();
        let h = metrics::global().histogram("phase.unit_test_armed.us");
        assert!(h.count() >= 1);
    }
}
