//! # gam-obs
//!
//! The observability layer of the GAM reproduction: a hand-rolled, offline,
//! dependency-free stand-in for the metrics/tracing crates the build
//! environment cannot fetch, in the same spirit as `crates/compat/*`.
//!
//! Three cooperating pieces:
//!
//! * [`metrics`] — a registry of named counters, gauges and log-bucketed
//!   histograms (p50/p90/p99 snapshots). Registration takes a lock once;
//!   every update after that is a single atomic op on a kept handle.
//!   Renderers for the repo's integer-only JSON dialect and the Prometheus
//!   text exposition format. `gam serve` builds `/metrics` on a [`metrics::Registry`].
//! * [`trace`] — structured spans and instant events collected into a
//!   bounded ring buffer, with per-thread parent links and a per-operation
//!   `trace_id`, exported as Chrome `trace_event` JSON (`gam check
//!   --trace-out trace.json`, then load in Perfetto / `chrome://tracing`).
//! * [`phase`] — named phase timers (`parse`, `canon`, `rf_enum`,
//!   `mo_search`, `explore_seq`, `explore_sharded`, `cache_lookup`,
//!   `journal_append`, `persist`) bracketing the pipeline's stages; they
//!   feed spans when tracing is armed and `phase.<name>.us` histograms when
//!   phase metrics are armed.
//!
//! Everything is disarmed by default and costs one or two relaxed atomic
//! loads per call site — the same "free when off" contract as
//! `gam_core::fault::hit`, pinned by the `perf_snapshot` overhead gate.
//!
//! Two small cross-cutting channels ride along: [`progress!`] (periodic
//! `progress:` lines on stderr for `--progress`) and [`warn!`] — the single
//! runtime-warning path. Every recoverable-degradation message (WAL
//! truncation, cache fallback, checkpoint append failure) goes through
//! [`warn!`]: stderr only, stable `warn:` prefix, counted in the global
//! registry as `warnings_total`.
//!
//! # Example
//!
//! ```
//! use gam_obs::{metrics, trace};
//!
//! // Metrics: handles are cheap, updates are atomic.
//! let registry = metrics::Registry::new();
//! let hits = registry.counter("cache.hits");
//! hits.inc();
//! registry.histogram("latency.us").observe(1800);
//! assert!(registry.render_prometheus_text().contains("cache_hits 1"));
//!
//! // Tracing: spans nest per thread once armed.
//! trace::arm();
//! {
//!     let _check = trace::span("engine.check");
//!     let _inner = trace::span("phase.rf_enum");
//! }
//! trace::disarm();
//! let chrome = trace::export_chrome();
//! assert!(chrome.contains("\"traceEvents\""));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod metrics;
pub mod phase;
pub mod progress;
pub mod trace;

pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, Registry};
pub use phase::{phase, PhaseGuard};
pub use trace::Span;

/// Emits one runtime warning: stderr, stable `warn:` prefix, counted as
/// `warnings_total` in the global registry. Never writes to stdout.
pub fn warn_emit(args: std::fmt::Arguments<'_>) {
    eprintln!("warn: {args}");
    metrics::global().counter("warnings_total").inc();
    trace::event("warn", &[("message", args.to_string())]);
}

/// The single runtime-warning path: formats like `println!`, writes to
/// stderr with a stable `warn:` prefix, and bumps `warnings_total`.
///
/// ```
/// gam_obs::warn!("journal truncated at frame {}", 17);
/// ```
#[macro_export]
macro_rules! warn {
    ($($arg:tt)*) => {{
        $crate::warn_emit(::std::format_args!($($arg)*));
    }};
}

#[cfg(test)]
mod tests {
    #[test]
    fn warn_counts_into_the_global_registry() {
        let before = crate::metrics::global().counter("warnings_total").get();
        crate::warn!("test warning {}", 1);
        let after = crate::metrics::global().counter("warnings_total").get();
        assert!(after > before);
    }
}
