//! Periodic progress reporting for long-running searches.
//!
//! Armed by `--progress` on the CLI (and available to any embedder via
//! [`set_progress`]), progress lines go to **stderr** with a stable
//! `progress:` prefix — stdout stays reserved for machine-readable output.
//! When tracing is also armed, each progress emission doubles as an instant
//! trace event, so the exported Chrome trace shows the same ticks inline
//! with the spans.
//!
//! Hot loops check [`armed`] (one relaxed load) before formatting anything;
//! the [`crate::progress!`] macro does that check for you.

use std::sync::atomic::{AtomicBool, Ordering};

use crate::trace;

static ARMED: AtomicBool = AtomicBool::new(false);

/// Whether progress reporting is on. A single relaxed load.
#[must_use]
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Turns progress reporting on or off.
pub fn set_progress(on: bool) {
    ARMED.store(on, Ordering::Release);
}

/// Emits one progress line (stderr, `progress:` prefix) and, when tracing
/// is armed, a matching instant trace event. Callers on hot paths should
/// gate on [`armed`] first; this function emits unconditionally.
pub fn emit(topic: &str, line: std::fmt::Arguments<'_>) {
    eprintln!("progress: {topic}: {line}");
    trace::event(&format!("progress.{topic}"), &[("line", line.to_string())]);
}

/// Formats and emits a progress line if progress reporting is armed.
///
/// ```
/// gam_obs::progress!("explore", "{} states, frontier {}", 1024, 17);
/// ```
#[macro_export]
macro_rules! progress {
    ($topic:expr, $($arg:tt)*) => {{
        if $crate::progress::armed() {
            $crate::progress::emit($topic, ::std::format_args!($($arg)*));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arming_toggles() {
        set_progress(true);
        assert!(armed());
        set_progress(false);
        assert!(!armed());
        // The macro must compile and be inert while disarmed.
        crate::progress!("test", "{} things", 3);
    }
}
