//! `gam-serve` — a long-running litmus-check service.
//!
//! Checking a litmus test is expensive (the operational explorer can visit
//! millions of states) but perfectly cacheable: the verdict depends only on
//! the test's semantics, the model and the backend. This crate turns the
//! checker stack into a small HTTP service whose front line is a
//! *canonicalizing* outcome cache — requests are hashed through
//! [`gam_frontend::canonical_hash`], so any renaming of threads, registers,
//! labels or (when provably sound) memory locations of a previously checked
//! test is a cache hit.
//!
//! Three layers, bottom-up:
//!
//! * [`cache`] — the outcome cache proper: cost-based eviction
//!   (wall µs × states), versioned JSON snapshots, atomic writes,
//!   corruption-tolerant loads.
//! * [`journal`] — crash durability for the cache: every mutation is one
//!   appended CRC-framed record in a write-ahead journal, replayed over the
//!   snapshot at startup (tolerating a torn tail) and periodically folded
//!   back into it — `kill -9` loses at most the in-flight record.
//! * [`http`] — a minimal HTTP/1.1 server+client layer over `std::net`
//!   (the build environment is offline; no external dependencies), plus a
//!   retrying client (bounded exponential backoff + jitter, honoring
//!   `Retry-After`) for `gam bench --serve`.
//! * [`server`] — the service itself: a fixed worker pool draining a
//!   bounded queue, `/check`, `/batch` (via the engine's adaptive suite
//!   scheduler), `/metrics`, `/healthz` and `/shutdown` (graceful drain),
//!   with load shedding (`503` + `Retry-After`) when the queue is full,
//!   server-side socket timeouts, per-request budgets
//!   (`budget_states`/`budget_wall_ms` → `inconclusive` rows) and
//!   panic-isolated checking (a panicking checker is a typed error row and
//!   a metrics tick, never a dead worker).
//!
//! The `gam serve` and `gam bench --serve` subcommands are thin CLI
//! wrappers over [`server::Server`] and [`http::request`].

pub mod cache;
pub mod http;
pub mod journal;
pub mod server;

pub use cache::{CacheEntry, OutcomeCache, CACHE_SCHEMA};
pub use http::{ClientConfig, RetryPolicy, RetryStats};
pub use journal::{JournalStats, JournaledCache, JOURNAL_SCHEMA};
pub use server::{
    backend_name, model_name, parse_backend, parse_model, ServeConfig, ServeError, Server,
    METRICS_SCHEMA,
};
