//! The write-ahead-journaled outcome cache.
//!
//! PR 6 persisted the cache by rewriting the whole JSON document after every
//! mutation — O(cache) I/O per miss, and everything since the last completed
//! rename was the crash-loss window. [`JournaledCache`] replaces that with
//! the classic snapshot-plus-journal arrangement:
//!
//! * every mutation appends one CRC-framed record
//!   (schema [`JOURNAL_SCHEMA`], framing from [`gam_core::wal`]) to
//!   `<cache>.journal` — a `kill -9` at any instruction loses at most the
//!   record being written;
//! * startup loads the snapshot (the PR 6 `gam-serve-cache/v1` document,
//!   unchanged) and replays the journal over it, tolerating a torn or
//!   corrupted tail by recovering the longest valid prefix and warning;
//! * every [`JournaledCache::compact_every`] records, the journal is folded
//!   into a fresh snapshot through the existing atomic tmp+rename path and
//!   truncated.
//!
//! ## Records are absolute, so replay converges
//!
//! Each record carries the *full resulting state* of the key it touches —
//! `insert` carries the whole entry, `hit` carries the new absolute hit
//! count (not "+1"), `evict` is naturally absolute. That makes replay
//! idempotent over any snapshot at least as old as the journal: if the
//! process dies *between* the compaction snapshot rename and the journal
//! truncation, the next startup replays a stale journal over a fresh
//! snapshot and lands on exactly the snapshot state. No generation counters
//! needed.
//!
//! ## Fault points
//!
//! * `cache.journal.append` — `kill` leaves a genuinely torn half-record on
//!   disk (via [`gam_core::wal::Wal::append_torn`]) and degrades the cache
//!   to memory-only, simulating death mid-`write(2)`;
//! * `cache.compact` — `kill` dies after the snapshot rename but before the
//!   journal truncation, the window the absolute-record design exists for;
//! * `cache.persist` (pre-existing, inside [`OutcomeCache::save`]) — dies
//!   between the snapshot tmp write and its rename.

use std::io;
use std::path::{Path, PathBuf};

use gam_core::{fault, wal::Wal};
use gam_engine::Json;

use crate::cache::{CacheEntry, OutcomeCache};

/// Magic line of the journal file; bump on incompatible record changes.
pub const JOURNAL_SCHEMA: &str = "gam-serve-journal/v1";

/// How many journal records accumulate before a compaction folds them into
/// the snapshot, by default.
pub const DEFAULT_COMPACT_EVERY: u64 = 4096;

/// One journal record. Public so recovery tests can build reference
/// replays; serve code only goes through [`JournaledCache`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Record {
    /// A key now holds exactly this entry.
    Insert {
        /// Composite cache key (`hash/model/backend`).
        key: String,
        /// The full entry value.
        entry: CacheEntry,
    },
    /// A key was evicted.
    Evict {
        /// Composite cache key.
        key: String,
    },
    /// A key's hit counter is now exactly `hits`.
    Hit {
        /// Composite cache key.
        key: String,
        /// Absolute hit count after the lookup.
        hits: u64,
    },
}

impl Record {
    /// Serializes the record to its one-frame JSON payload.
    #[must_use]
    pub fn to_json(&self) -> Json {
        match self {
            Record::Insert { key, entry } => Json::object([
                ("op", Json::Str("insert".to_string())),
                ("key", Json::Str(key.clone())),
                ("allowed", Json::Bool(entry.allowed)),
                ("wall_us", Json::UInt(entry.wall_us)),
                ("states", Json::UInt(entry.states)),
                ("hits", Json::UInt(entry.hits)),
            ]),
            Record::Evict { key } => Json::object([
                ("op", Json::Str("evict".to_string())),
                ("key", Json::Str(key.clone())),
            ]),
            Record::Hit { key, hits } => Json::object([
                ("op", Json::Str("hit".to_string())),
                ("key", Json::Str(key.clone())),
                ("hits", Json::UInt(*hits)),
            ]),
        }
    }

    /// Parses a record from a frame payload. `None` on any malformed
    /// content — recovery treats it like a corrupt frame (stop there).
    #[must_use]
    pub fn parse(payload: &[u8]) -> Option<Record> {
        let json = Json::parse(std::str::from_utf8(payload).ok()?).ok()?;
        let key = json.get("key")?.as_str()?.to_string();
        match json.get("op")?.as_str()? {
            "insert" => Some(Record::Insert {
                key,
                entry: CacheEntry {
                    allowed: match json.get("allowed")? {
                        Json::Bool(b) => *b,
                        _ => return None,
                    },
                    wall_us: json.get("wall_us")?.as_u64()?,
                    states: json.get("states")?.as_u64()?,
                    hits: json.get("hits")?.as_u64()?,
                },
            }),
            "evict" => Some(Record::Evict { key }),
            "hit" => Some(Record::Hit { key, hits: json.get("hits")?.as_u64()? }),
            _ => None,
        }
    }

    /// Applies the record to a cache, without journaling or eviction — the
    /// replay primitive. Absolute semantics: missing keys no-op for
    /// `evict`/`hit`, `insert` overwrites.
    pub fn apply(&self, cache: &mut OutcomeCache) {
        match self {
            Record::Insert { key, entry } => {
                // Replay must not trigger fresh evictions mid-stream: the
                // journal carries explicit evict records for those. Capacity
                // is re-enforced once, after the full replay.
                cache.insert_unbounded(key.clone(), entry.clone());
            }
            Record::Evict { key } => {
                cache.remove(key);
            }
            Record::Hit { key, hits } => cache.set_hits(key, *hits),
        }
    }
}

/// Counters the journal layer exports into `/metrics`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JournalStats {
    /// Records appended since this process opened the journal.
    pub appends: u64,
    /// Compactions (journal folded into snapshot) since open.
    pub compactions: u64,
    /// Records replayed from the journal at open.
    pub replayed: u64,
}

/// An [`OutcomeCache`] whose every mutation is write-ahead journaled.
#[derive(Debug)]
pub struct JournaledCache {
    cache: OutcomeCache,
    /// `None` after an append failure: the cache degrades to memory-only
    /// rather than failing checks (durability is best-effort, serving is
    /// not).
    wal: Option<Wal>,
    snapshot_path: PathBuf,
    journal_path: PathBuf,
    compact_every: u64,
    records_since_compact: u64,
    stats: JournalStats,
}

/// The journal path for a given snapshot path: `<snapshot>.journal`.
#[must_use]
pub fn journal_path_for(snapshot: &Path) -> PathBuf {
    let mut name = snapshot
        .file_name()
        .map_or_else(|| "cache".to_string(), |n| n.to_string_lossy().into_owned());
    name.push_str(".journal");
    let mut path = snapshot.to_path_buf();
    path.set_file_name(name);
    path
}

impl JournaledCache {
    /// Opens the cache at `snapshot_path`: loads the snapshot, replays the
    /// journal's longest valid prefix over it, re-enforces capacity and
    /// positions the journal for appending. Damage of any kind — missing
    /// files, corrupt snapshot, torn journal tail — is tolerated and
    /// reported as warnings; an unopenable journal *file* degrades to a
    /// memory-only cache instead of failing.
    #[must_use]
    pub fn open(snapshot_path: &Path, capacity: usize, compact_every: u64) -> (Self, Vec<String>) {
        let mut warnings = Vec::new();
        let (mut cache, snapshot_warning) = OutcomeCache::load(snapshot_path, capacity);
        warnings.extend(snapshot_warning);

        let journal_path = journal_path_for(snapshot_path);
        let mut replayed = 0u64;
        let wal = match Wal::open(&journal_path, JOURNAL_SCHEMA) {
            Ok((wal, frames, warning)) => {
                warnings.extend(warning);
                for (index, frame) in frames.iter().enumerate() {
                    match Record::parse(frame) {
                        Some(record) => {
                            record.apply(&mut cache);
                            replayed += 1;
                        }
                        None => {
                            // A frame that passed CRC but fails to parse is
                            // a writer bug or version skew, not tail damage;
                            // stop replaying (prefix semantics) but keep
                            // everything before it.
                            warnings.push(format!(
                                "journal {}: record {index} unparseable; \
                                 ignoring it and {} later records",
                                journal_path.display(),
                                frames.len() - index - 1,
                            ));
                            break;
                        }
                    }
                }
                cache.enforce_capacity();
                Some(wal)
            }
            Err(err) => {
                warnings.push(format!(
                    "journal {}: unopenable ({err}); cache is memory-only",
                    journal_path.display()
                ));
                None
            }
        };

        let mut journaled = JournaledCache {
            cache,
            wal,
            snapshot_path: snapshot_path.to_path_buf(),
            journal_path,
            compact_every: compact_every.max(1),
            records_since_compact: replayed,
            stats: JournalStats { appends: 0, compactions: 0, replayed },
        };
        // A recovered journal may already be due for folding.
        if journaled.records_since_compact >= journaled.compact_every {
            if let Err(err) = journaled.compact() {
                warnings.push(format!(
                    "cache {}: startup compaction failed: {err}",
                    snapshot_path.display()
                ));
            }
        }
        (journaled, warnings)
    }

    /// The underlying cache, read-only.
    #[must_use]
    pub fn cache(&self) -> &OutcomeCache {
        &self.cache
    }

    /// Journal counters for `/metrics`.
    #[must_use]
    pub fn stats(&self) -> JournalStats {
        self.stats
    }

    /// Whether the journal is still attached (false after an append error
    /// degraded the cache to memory-only).
    #[must_use]
    pub fn journaling(&self) -> bool {
        self.wal.is_some()
    }

    /// Looks an entry up, bumping its hit counter and journaling the new
    /// absolute count. Returns the entry and an optional warning (journal
    /// degradation).
    pub fn lookup(&mut self, key: &str) -> (Option<CacheEntry>, Option<String>) {
        let Some(entry) = self.cache.lookup(key) else { return (None, None) };
        let warning = self.append(&Record::Hit { key: key.to_string(), hits: entry.hits });
        (Some(entry), warning)
    }

    /// Inserts an entry, journaling the insert and any evictions it caused,
    /// compacting when due. Returns warnings (journal degradation or a
    /// failed compaction).
    pub fn insert(&mut self, key: String, entry: CacheEntry) -> Vec<String> {
        let mut warnings = Vec::new();
        let evicted = self.cache.insert(key.clone(), entry.clone());
        warnings.extend(self.append(&Record::Insert { key, entry }));
        for key in evicted {
            warnings.extend(self.append(&Record::Evict { key }));
        }
        if self.wal.is_some() && self.records_since_compact >= self.compact_every {
            if let Err(err) = self.compact() {
                warnings.push(format!(
                    "cache {}: compaction failed: {err}",
                    self.snapshot_path.display()
                ));
            }
        }
        warnings
    }

    /// Folds the journal into the snapshot: atomic snapshot save
    /// (tmp+rename, fault point `cache.persist`), then journal truncation
    /// (fault point `cache.compact` in between — the crash window the
    /// absolute-record replay covers).
    ///
    /// # Errors
    ///
    /// Propagates snapshot-write and truncation I/O errors (including the
    /// injected `cache.persist`/`cache.compact` kills).
    pub fn compact(&mut self) -> io::Result<()> {
        let _phase = gam_obs::phase("persist");
        self.cache.save(&self.snapshot_path)?;
        // Fault-injection point: `cache.compact` dies after the snapshot
        // rename, before the journal truncation. Startup then replays a
        // stale journal over the fresh snapshot — absolute records make
        // that a no-op rather than double-application.
        if fault::hit("cache.compact") {
            return Err(io::Error::new(
                io::ErrorKind::Interrupted,
                "injected fault: cache.compact killed between snapshot rename and journal reset",
            ));
        }
        if let Some(wal) = self.wal.as_mut() {
            wal.reset()?;
        }
        self.records_since_compact = 0;
        self.stats.compactions += 1;
        Ok(())
    }

    /// Appends one record, handling the `cache.journal.append` fault point
    /// and degrading to memory-only on failure. Returns a warning when the
    /// journal detaches.
    fn append(&mut self, record: &Record) -> Option<String> {
        let _phase = gam_obs::phase("journal_append");
        let wal = self.wal.as_mut()?;
        let payload = record.to_json().to_string();
        // Fault-injection point: `cache.journal.append` — a kill leaves a
        // genuinely torn half-frame on disk, exactly what death inside
        // `write(2)` leaves behind, and detaches the journal.
        let result = if fault::hit("cache.journal.append") {
            wal.append_torn(payload.as_bytes()).and_then(|()| {
                Err(io::Error::new(
                    io::ErrorKind::Interrupted,
                    "injected fault: cache.journal.append killed mid-write",
                ))
            })
        } else {
            wal.append(payload.as_bytes())
        };
        match result {
            Ok(()) => {
                self.stats.appends += 1;
                self.records_since_compact += 1;
                None
            }
            Err(err) => {
                self.wal = None;
                Some(format!(
                    "journal {}: append failed ({err}); cache is memory-only until restart",
                    self.journal_path.display()
                ))
            }
        }
    }
}
