//! The persistent, canonicalizing outcome cache.
//!
//! Entries are keyed by `"{canonical_hash}/{model}/{backend}"` — the hash
//! comes from [`gam_frontend::canonical_hash`], so every naming variant of a
//! test (thread order, registers, labels and, when provably sound,
//! locations) shares one entry per (model, backend) pair. An entry records
//! the verdict plus the *cost of recomputing it* (wall µs × states visited):
//! when the cache exceeds capacity, the cheapest-to-recompute entries are
//! evicted first, which is the right bias for a service whose misses are
//! paid in explorer time.
//!
//! The on-disk format is a versioned JSON document (the engine's in-tree
//! [`Json`], no external dependencies) written atomically: serialize to
//! `<path>.tmp`, then rename over `<path>`. Loading is corruption-tolerant —
//! a truncated or syntactically invalid file, or one with an unknown schema
//! version, yields an *empty* cache and a warning string rather than a
//! panic or an error, so a damaged cache file can never keep the service
//! from starting.
//!
//! Since the write-ahead journal landed, [`OutcomeCache::save`] is no longer
//! the per-mutation persistence path — it is the *compaction snapshot* that
//! [`crate::journal::JournaledCache`] folds its journal into. Per-mutation
//! durability is one appended journal record.

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use gam_engine::Json;

/// Schema identifier of the cache file; bump on incompatible changes.
pub const CACHE_SCHEMA: &str = "gam-serve-cache/v1";

/// One cached check result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheEntry {
    /// Whether the test's condition of interest is allowed.
    pub allowed: bool,
    /// Wall time of the original (miss) check, in microseconds.
    pub wall_us: u64,
    /// States visited by the original check (0 for the axiomatic backend).
    pub states: u64,
    /// How many times this entry has been served.
    pub hits: u64,
}

impl CacheEntry {
    /// The recorded cost of recomputing this entry: wall µs × states
    /// (states clamped to ≥ 1 so axiomatic entries still rank by time).
    #[must_use]
    pub fn cost(&self) -> u128 {
        u128::from(self.wall_us) * u128::from(self.states.max(1))
    }
}

/// An in-memory outcome cache with cost-based eviction and JSON persistence.
#[derive(Debug)]
pub struct OutcomeCache {
    entries: BTreeMap<String, CacheEntry>,
    capacity: usize,
    evictions: u64,
}

impl OutcomeCache {
    /// An empty cache holding at most `capacity` entries.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        OutcomeCache { entries: BTreeMap::new(), capacity: capacity.max(1), evictions: 0 }
    }

    /// The composite key of one (canonical test, model, backend) result.
    #[must_use]
    pub fn key(hash: &str, model: &str, backend: &str) -> String {
        format!("{hash}/{model}/{backend}")
    }

    /// Number of live entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns true when the cache holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total evictions since this cache was created (or loaded).
    #[must_use]
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Looks an entry up, bumping its hit counter.
    pub fn lookup(&mut self, key: &str) -> Option<CacheEntry> {
        let entry = self.entries.get_mut(key)?;
        entry.hits += 1;
        Some(entry.clone())
    }

    /// Inserts (or replaces) an entry, then evicts the cheapest-to-recompute
    /// entries until the cache fits its capacity. The entry just inserted is
    /// itself eligible — inserting a trivially cheap result into a full
    /// cache of expensive ones evicts the newcomer. Returns the evicted keys
    /// so a write-ahead journal can record them.
    pub fn insert(&mut self, key: String, entry: CacheEntry) -> Vec<String> {
        self.entries.insert(key, entry);
        let mut evicted = Vec::new();
        while self.entries.len() > self.capacity {
            let cheapest = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.cost())
                .map(|(k, _)| k.clone())
                .expect("cache over capacity is non-empty");
            self.entries.remove(&cheapest);
            self.evictions += 1;
            evicted.push(cheapest);
        }
        evicted
    }

    /// Inserts without enforcing capacity — journal replay applies the
    /// journal's explicit `evict` records instead of re-deriving evictions
    /// mid-stream. Pair with [`Self::enforce_capacity`] after the replay.
    pub(crate) fn insert_unbounded(&mut self, key: String, entry: CacheEntry) {
        self.entries.insert(key, entry);
    }

    /// Evicts cheapest-first down to capacity — the post-replay cleanup
    /// (only does anything when the configured capacity shrank between
    /// process lives).
    pub(crate) fn enforce_capacity(&mut self) {
        while self.entries.len() > self.capacity {
            let cheapest = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.cost())
                .map(|(k, _)| k.clone())
                .expect("cache over capacity is non-empty");
            self.entries.remove(&cheapest);
            self.evictions += 1;
        }
    }

    /// Removes an entry outright (journal replay of an `evict` record).
    /// A missing key is a no-op — replay must converge regardless of which
    /// snapshot it starts from. Does not count towards [`Self::evictions`]:
    /// the eviction happened in a previous process life.
    pub fn remove(&mut self, key: &str) -> bool {
        self.entries.remove(key).is_some()
    }

    /// Sets an entry's absolute hit count (journal replay of a `hit`
    /// record). A missing key is a no-op.
    pub fn set_hits(&mut self, key: &str, hits: u64) {
        if let Some(entry) = self.entries.get_mut(key) {
            entry.hits = hits;
        }
    }

    /// Peeks at an entry without bumping its hit counter.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&CacheEntry> {
        self.entries.get(key)
    }

    /// Iterates entries in key order — equality checks and serialization.
    pub fn entries(&self) -> impl Iterator<Item = (&String, &CacheEntry)> {
        self.entries.iter()
    }

    /// Serializes the cache to the versioned JSON document.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let entries = Json::array(self.entries.iter().map(|(key, e)| {
            Json::object([
                ("key", Json::Str(key.clone())),
                ("allowed", Json::Bool(e.allowed)),
                ("wall_us", Json::UInt(e.wall_us)),
                ("states", Json::UInt(e.states)),
                ("hits", Json::UInt(e.hits)),
            ])
        }));
        Json::object([
            ("schema", Json::Str(CACHE_SCHEMA.to_string())),
            ("capacity", Json::UInt(self.capacity as u64)),
            ("entries", entries),
        ])
    }

    /// Writes the cache atomically: serialize to `<path>.tmp`, then rename
    /// over `path`, so a crash mid-write can never leave a half-written
    /// cache behind.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from the temporary write or the rename.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let mut tmp: PathBuf = path.to_path_buf();
        let mut name = path
            .file_name()
            .map_or_else(|| "cache".to_string(), |n| n.to_string_lossy().into_owned());
        name.push_str(".tmp");
        tmp.set_file_name(name);
        fs::write(&tmp, format!("{}\n", self.to_json()))?;
        // Fault-injection point: `cache.persist` kills the save between the
        // temporary write and the rename — the crash window the atomic
        // protocol must survive (the crash-atomicity test drives this).
        if gam_core::fault::hit("cache.persist") {
            return Err(io::Error::new(
                io::ErrorKind::Interrupted,
                "injected fault: cache.persist killed between write and rename",
            ));
        }
        fs::rename(&tmp, path)
    }

    /// Loads a cache from `path`, tolerating damage: a missing file is a
    /// normal cold start; a truncated/corrupt/mis-versioned file yields an
    /// empty cache plus a warning describing what was ignored.
    #[must_use]
    pub fn load(path: &Path, capacity: usize) -> (Self, Option<String>) {
        let empty = OutcomeCache::new(capacity);
        let text = match fs::read_to_string(path) {
            Ok(text) => text,
            Err(err) if err.kind() == io::ErrorKind::NotFound => return (empty, None),
            Err(err) => {
                return (
                    empty,
                    Some(format!("cache {}: unreadable ({err}); starting empty", path.display())),
                );
            }
        };
        let json = match Json::parse(&text) {
            Ok(json) => json,
            Err(err) => {
                return (
                    empty,
                    Some(format!("cache {}: corrupt ({err}); starting empty", path.display())),
                );
            }
        };
        let schema = json.get("schema").and_then(Json::as_str).unwrap_or("<missing>");
        if schema != CACHE_SCHEMA {
            return (
                empty,
                Some(format!(
                    "cache {}: schema `{schema}` (want `{CACHE_SCHEMA}`); starting empty",
                    path.display()
                )),
            );
        }
        let mut cache = OutcomeCache::new(capacity);
        let mut skipped = 0usize;
        for item in json.get("entries").and_then(Json::as_array).unwrap_or(&[]) {
            let entry = (|| {
                Some((
                    item.get("key")?.as_str()?.to_string(),
                    CacheEntry {
                        allowed: match item.get("allowed")? {
                            Json::Bool(b) => *b,
                            _ => return None,
                        },
                        wall_us: item.get("wall_us")?.as_u64()?,
                        states: item.get("states")?.as_u64()?,
                        hits: item.get("hits")?.as_u64()?,
                    },
                ))
            })();
            match entry {
                Some((key, entry)) => {
                    cache.insert(key, entry);
                }
                None => skipped += 1,
            }
        }
        let warning = (skipped > 0)
            .then(|| format!("cache {}: skipped {skipped} malformed entries", path.display()));
        (cache, warning)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(wall_us: u64, states: u64) -> CacheEntry {
        CacheEntry { allowed: true, wall_us, states, hits: 0 }
    }

    #[test]
    fn lookup_bumps_hits() {
        let mut cache = OutcomeCache::new(4);
        cache.insert("k".into(), entry(10, 10));
        assert_eq!(cache.lookup("k").unwrap().hits, 1);
        assert_eq!(cache.lookup("k").unwrap().hits, 2);
        assert!(cache.lookup("missing").is_none());
    }

    #[test]
    fn eviction_removes_cheapest_first() {
        let mut cache = OutcomeCache::new(2);
        cache.insert("expensive".into(), entry(1000, 1000));
        cache.insert("medium".into(), entry(100, 100));
        cache.insert("cheap".into(), entry(1, 1));
        // The cheap newcomer itself is the first casualty.
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 1);
        assert!(cache.lookup("expensive").is_some());
        assert!(cache.lookup("medium").is_some());
        assert!(cache.lookup("cheap").is_none());
        // Now push something pricier: `medium` goes.
        cache.insert("pricier".into(), entry(500, 500));
        assert!(cache.lookup("medium").is_none());
        assert!(cache.lookup("pricier").is_some());
        assert_eq!(cache.evictions(), 2);
    }

    #[test]
    fn axiomatic_entries_rank_by_wall_time() {
        assert!(entry(100, 0).cost() < entry(200, 0).cost());
        assert_eq!(entry(100, 0).cost(), entry(100, 1).cost());
    }
}
