//! A minimal HTTP/1.1 layer over `std::net` — just enough protocol for the
//! check service and its bench client: one request per connection
//! (`Connection: close`), `Content-Length` bodies, no chunked encoding, no
//! TLS. The sandbox has no network stack beyond loopback and no external
//! dependencies, which is exactly the niche a hand-rolled server fills.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use gam_core::fault;

/// Maximum accepted request body (guards the worker pool against a single
/// giant upload); 4 MiB comfortably holds any litmus corpus batch.
pub const MAX_BODY: usize = 4 << 20;

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method (`GET`, `POST`, …), uppercased by the client.
    pub method: String,
    /// Request path including any query string, e.g. `/check`.
    pub path: String,
    /// Lowercased header name → value, in arrival order.
    pub headers: Vec<(String, String)>,
    /// Raw request body.
    pub body: Vec<u8>,
}

impl Request {
    /// The first value of a header, by lowercase name.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 text (lossy).
    #[must_use]
    pub fn body_text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Reads one HTTP request from a stream.
///
/// # Errors
///
/// Returns `InvalidData` on malformed request lines/headers or an
/// oversized body, and propagates socket errors.
pub fn read_request(stream: &mut TcpStream) -> io::Result<Request> {
    // Fault-injection point: `http.read` (delay simulates a slow client on
    // the wire; kill simulates a connection torn mid-request).
    if fault::hit("http.read") {
        return Err(io::Error::new(io::ErrorKind::ConnectionAborted, "injected fault: http.read"));
    }
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let mut parts = line.split_whitespace();
    let (method, path) = match (parts.next(), parts.next()) {
        (Some(method), Some(path)) => (method.to_ascii_uppercase(), path.to_string()),
        _ => return Err(bad_data("malformed request line")),
    };
    let mut headers = Vec::new();
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header)?;
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        let Some((name, value)) = header.split_once(':') else {
            return Err(bad_data("malformed header"));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim().to_string();
        if name == "content-length" {
            content_length = value.parse().map_err(|_| bad_data("bad content-length"))?;
        }
        headers.push((name, value));
    }
    if content_length > MAX_BODY {
        return Err(bad_data("body too large"));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(Request { method, path, headers, body })
}

/// Writes an HTTP response with a JSON (or plain-text) body and closes the
/// connection semantics via `Connection: close`.
///
/// # Errors
///
/// Propagates socket write errors.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    extra_headers: &[(&str, &str)],
    content_type: &str,
    body: &str,
) -> io::Result<()> {
    // Fault-injection point: `http.write` (delay simulates a congested
    // response path; kill drops the response on the floor — the client sees
    // a clean connection close, never a hang, because it reads with a
    // timeout).
    if fault::hit("http.write") {
        return Err(io::Error::new(io::ErrorKind::BrokenPipe, "injected fault: http.write"));
    }
    let mut response = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n",
        body.len()
    );
    for (name, value) in extra_headers {
        response.push_str(name);
        response.push_str(": ");
        response.push_str(value);
        response.push_str("\r\n");
    }
    response.push_str("\r\n");
    response.push_str(body);
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

fn bad_data(message: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message)
}

/// A response as seen by the in-tree client.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Lowercased header name → value.
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: String,
}

impl Response {
    /// The first value of a header, by lowercase name.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }
}

/// Timeouts of the in-tree HTTP client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientConfig {
    /// TCP connect timeout.
    pub connect_timeout: Duration,
    /// Socket read timeout: the longest the client waits for response bytes
    /// (a slow or wedged server surfaces as a typed `TimedOut`/`WouldBlock`
    /// error, never a hang).
    pub read_timeout: Duration,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: Duration::from_secs(10),
            read_timeout: Duration::from_secs(600),
        }
    }
}

impl ClientConfig {
    /// A config with both timeouts set to `timeout` — what
    /// `gam bench --serve --timeout-ms` plumbs through.
    #[must_use]
    pub fn with_timeout(timeout: Duration) -> Self {
        ClientConfig { connect_timeout: timeout, read_timeout: timeout }
    }
}

/// Bounded-retry policy of the client: exponential backoff with
/// deterministic jitter, honoring `Retry-After`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 disables retrying).
    pub max_retries: u32,
    /// Backoff before retry *n* is `base_delay << n` plus jitter, unless the
    /// server's `Retry-After` asks for more.
    pub base_delay: Duration,
    /// Hard cap on any single backoff wait, `Retry-After` included.
    pub max_delay: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 4,
            base_delay: Duration::from_millis(50),
            max_delay: Duration::from_secs(2),
        }
    }
}

/// What a retried request cost: surfaced in the `gam-serve-bench/v1`
/// report so overload behavior is visible, not silent.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetryStats {
    /// Retries performed (0 = first attempt succeeded).
    pub retries: u32,
    /// Total time spent sleeping between attempts.
    pub backoff: Duration,
}

/// Whether a failed attempt is worth retrying: connection-level errors
/// (server restarting, listener backlog overflow, connection torn before
/// the response) are; protocol errors and client-side read timeouts are
/// not — a timeout may mean the server is still computing, and retrying
/// would double-spend explorer time.
fn retryable_error(err: &io::Error) -> bool {
    matches!(
        err.kind(),
        io::ErrorKind::ConnectionRefused
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::BrokenPipe
            | io::ErrorKind::UnexpectedEof
    )
}

/// Deterministic jitter for retry `attempt` of a request to `addr`:
/// xorshift over a seed from the address, the attempt and the process id,
/// scaled into `[0, half)`. No system randomness — the sandbox has none to
/// offer and reproducibility is a feature.
fn jitter(addr: &str, attempt: u32, half: Duration) -> Duration {
    let mut seed: u64 = 0x9E37_79B9_7F4A_7C15 ^ u64::from(std::process::id());
    for byte in addr.bytes() {
        seed = seed.wrapping_mul(0x0000_0100_0000_01B3) ^ u64::from(byte);
    }
    seed ^= u64::from(attempt).wrapping_mul(0x2545_F491_4F6C_DD1D);
    seed ^= seed << 13;
    seed ^= seed >> 7;
    seed ^= seed << 17;
    if half.is_zero() {
        return Duration::ZERO;
    }
    Duration::from_nanos(seed % u64::try_from(half.as_nanos()).unwrap_or(u64::MAX))
}

/// [`request_with`] wrapped in the bounded-retry loop: retries shed
/// responses (`503`, honoring `Retry-After`) and connection-level errors
/// with exponential backoff + jitter, up to [`RetryPolicy::max_retries`].
/// Any response other than `503` — success or failure — is returned as-is;
/// check requests are pure, so re-sending one is always safe.
///
/// # Errors
///
/// The last connection error once retries are exhausted. A still-shedding
/// server after the final retry yields `Ok` with the `503` response — the
/// caller decides whether that is fatal.
pub fn request_retrying(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
    config: &ClientConfig,
    policy: &RetryPolicy,
) -> io::Result<(Response, RetryStats)> {
    let mut stats = RetryStats::default();
    loop {
        let shed = match request_with(addr, method, path, body, config) {
            Ok(response) if response.status == 503 => {
                if stats.retries >= policy.max_retries {
                    return Ok((response, stats));
                }
                response.header("retry-after").and_then(|v| v.trim().parse::<u64>().ok())
            }
            Ok(response) => return Ok((response, stats)),
            Err(err) => {
                if !retryable_error(&err) || stats.retries >= policy.max_retries {
                    return Err(err);
                }
                None
            }
        };
        let exp = policy.base_delay.saturating_mul(1u32 << stats.retries.min(16));
        let wait = shed.map_or(exp, |secs| exp.max(Duration::from_secs(secs)));
        let wait = wait.min(policy.max_delay) + jitter(addr, stats.retries, policy.base_delay / 2);
        std::thread::sleep(wait);
        stats.retries += 1;
        stats.backoff += wait;
    }
}

/// Performs one HTTP request against `addr` (e.g. `127.0.0.1:7117`) with the
/// default [`ClientConfig`] and returns the parsed response. This is the
/// client half used by `gam bench --serve` and the end-to-end tests.
///
/// # Errors
///
/// Propagates connection and protocol errors.
pub fn request(addr: &str, method: &str, path: &str, body: Option<&str>) -> io::Result<Response> {
    request_with(addr, method, path, body, &ClientConfig::default())
}

/// [`request`] with explicit client timeouts.
///
/// # Errors
///
/// Propagates connection and protocol errors; a read past
/// [`ClientConfig::read_timeout`] fails with a timeout error instead of
/// blocking forever.
pub fn request_with(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
    config: &ClientConfig,
) -> io::Result<Response> {
    let target = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "address resolves to nothing"))?;
    let mut stream = TcpStream::connect_timeout(&target, config.connect_timeout)?;
    stream.set_read_timeout(Some(config.read_timeout))?;
    let body = body.unwrap_or("");
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes())?;
    stream.flush()?;

    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|code| code.parse().ok())
        .ok_or_else(|| bad_data("malformed status line"))?;
    let mut headers = Vec::new();
    let mut content_length: Option<usize> = None;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header)?;
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim().to_string();
            if name == "content-length" {
                content_length = value.parse().ok();
            }
            headers.push((name, value));
        }
    }
    let body = match content_length {
        Some(length) => {
            let mut buffer = vec![0u8; length];
            reader.read_exact(&mut buffer)?;
            String::from_utf8_lossy(&buffer).into_owned()
        }
        None => {
            let mut buffer = String::new();
            reader.read_to_string(&mut buffer)?;
            buffer
        }
    };
    Ok(Response { status, headers, body })
}
