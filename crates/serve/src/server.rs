//! The `gam serve` HTTP service: a fixed worker pool draining a bounded
//! queue of connections, four endpoints, and the canonicalizing outcome
//! cache in front of the checker stack.
//!
//! * `GET  /healthz` — liveness probe.
//! * `GET  /metrics` — counters: requests, checks, hit rate, states/sec,
//!   queue depth, evictions, per-model counts.
//! * `POST /check`   — one test (raw `.litmus` text, or a JSON envelope
//!   with per-request models/backends/budget); answered from the cache
//!   keyed by the canonical hash whenever possible.
//! * `POST /batch`   — many tests; cache misses are fanned out through the
//!   engine's adaptive suite scheduler ([`Engine::run_suite_verdicts`]).
//! * `POST /shutdown` — graceful drain: the CLI observes the request, stops
//!   accepting, drains in-flight work and persists the cache.
//!
//! Overload is handled in two stages. Under sustained pressure (standing
//! queue at least half the configured depth) the service first *degrades*:
//! per-request wall budgets are tightened to [`ServeConfig::overload_wall_ms`]
//! so expensive checks come back `inconclusive` quickly instead of growing
//! the queue. Only when the queue is actually full does the acceptor *shed*
//! with `503` + `Retry-After` (which the in-tree client retries with
//! backoff), so latency stays bounded until a streaming API lands (ROADMAP
//! item 5).
//!
//! Persistence is write-ahead journaled ([`crate::journal`]): every cache
//! mutation appends one CRC-framed record, periodically folded into the
//! JSON snapshot — `kill -9` loses at most the in-flight record.
//!
//! Robustness contract: every check runs panic-isolated (a panicking checker
//! becomes a typed error row and a `panics_total` tick, never a dead
//! worker); requests carrying `budget_states`/`budget_wall_ms` that exhaust
//! their budget get an `inconclusive` row with partial outcomes; slow
//! clients hit server-side socket timeouts (`408`) instead of wedging the
//! pool.

use std::collections::VecDeque;
use std::fmt;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use gam_core::{ModelKind, StopReason};
use gam_engine::{Backend, CheckBudget, Engine, EngineError, Json, SessionVerdict};
use gam_frontend::{canonical_hash, parse_litmus};
use gam_isa::litmus::LitmusTest;
use gam_obs::metrics::{Counter, Histogram, Registry};
use gam_obs::trace;
use gam_operational::{ExplorerConfig, OperationalChecker};

use crate::cache::{CacheEntry, OutcomeCache};
use crate::http::{read_request, write_response, Request};
use crate::journal::JournaledCache;

/// Schema identifier of the `/metrics` document. The `/v2` document is a
/// strict superset of `/v1`: every v1 field keeps its name and meaning; the
/// additions (`warnings_total`, `slow_requests_total`, per-endpoint
/// `latency_us`) are new keys only. `/v3` is additive over `/v2` in the same
/// way: `memory_resident_bytes`, `memory_tightened_total` and
/// `memory_budget_stops_total` are new keys only.
pub const METRICS_SCHEMA: &str = "gam-serve-metrics/v3";

/// Schema identifier of the `GET /debug/slow` document.
pub const SLOW_LOG_SCHEMA: &str = "gam-serve-slow/v1";

/// Bound of the in-memory slow-request log served at `GET /debug/slow`.
const SLOW_LOG_CAPACITY: usize = 64;

/// Configuration of one server instance.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:7117` (port 0 picks a free port).
    pub addr: String,
    /// Worker threads draining the request queue.
    pub workers: usize,
    /// Bound of the pending-connection queue; beyond it requests are shed
    /// with `503 Service Unavailable` + `Retry-After`.
    pub queue_depth: usize,
    /// Path of the persistent cache file.
    pub cache_path: PathBuf,
    /// Maximum number of cache entries before cost-based eviction.
    pub cache_capacity: usize,
    /// Server-side socket read timeout: the longest a worker waits for a
    /// slow (or half-open) client to deliver its request before answering
    /// `408 Request Timeout` and moving on.
    pub read_timeout: Duration,
    /// Server-side socket write timeout: the longest a worker blocks
    /// writing a response to a client that stopped reading.
    pub write_timeout: Duration,
    /// Journal records between compactions (folding the write-ahead journal
    /// into the snapshot).
    pub compact_every: u64,
    /// Wall budget (ms) imposed on checks while the service is overloaded
    /// (standing queue ≥ half [`ServeConfig::queue_depth`]) — the degrade
    /// stage before shedding. Generous enough that ordinary litmus checks
    /// still conclude; only state-explosion outliers are cut short.
    pub overload_wall_ms: u64,
    /// Requests slower than this land in the bounded in-memory slow-request
    /// log exposed at `GET /debug/slow`.
    pub slow_threshold: Duration,
    /// Process resident-set watermark (bytes). While the service's RSS is at
    /// or above it, each request's explorer memory budget is clamped to
    /// [`ServeConfig::overload_mem_bytes`] — the memory analogue of the
    /// overload wall clamp, degrading before the acceptor has to shed.
    /// `0` disables the watermark.
    pub mem_watermark_bytes: u64,
    /// Accounted-byte explorer budget imposed on checks while the service is
    /// over [`ServeConfig::mem_watermark_bytes`]. Generous enough that
    /// ordinary litmus checks still conclude; only state-explosion outliers
    /// come back `inconclusive` (memory budget) instead of growing the RSS.
    pub overload_mem_bytes: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7117".to_string(),
            workers: thread::available_parallelism().map_or(2, std::num::NonZeroUsize::get),
            queue_depth: 64,
            cache_path: PathBuf::from("gam-serve-cache.json"),
            cache_capacity: 4096,
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(30),
            compact_every: crate::journal::DEFAULT_COMPACT_EVERY,
            overload_wall_ms: 2_000,
            slow_threshold: Duration::from_millis(100),
            mem_watermark_bytes: 0,
            overload_mem_bytes: 64 << 20,
        }
    }
}

/// Startup failures.
#[derive(Debug)]
pub enum ServeError {
    /// The listener could not bind the requested address.
    Bind {
        /// The address that failed to bind.
        addr: String,
        /// The underlying socket error.
        source: io::Error,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Bind { addr, source } => {
                write!(f, "cannot bind {addr}: {source}")
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// The service's request endpoints, as latency-histogram labels.
const ENDPOINTS: [&str; 6] = ["healthz", "metrics", "check", "batch", "shutdown", "other"];

/// Service counters, shared across workers — handles into the server's own
/// [`Registry`] (per-server, so concurrent servers in one process never mix
/// counts). Everything is monotonic except `queue_depth`, which is sampled
/// from the live queue at render time. `/metrics` renders the registry as
/// JSON; `/metrics?format=prometheus` renders it as Prometheus text.
#[derive(Debug)]
struct Metrics {
    registry: Registry,
    requests_total: Counter,
    checks_total: Counter,
    cache_hits: Counter,
    cache_misses: Counter,
    shed_total: Counter,
    states_total: Counter,
    wall_us_total: Counter,
    /// Checks that ended inconclusive (budget exhausted or cancelled).
    /// Invariant: `checks_total == cache_hits + cache_misses +
    /// inconclusive_total + panics_total` — inconclusive and panicked
    /// checks count as checks but never as hits or misses (and are never
    /// cached).
    inconclusive_total: Counter,
    /// Checks whose checker panicked; the panic was caught, the worker
    /// survived, and the client got a typed error row.
    panics_total: Counter,
    /// Wall-budget-exhausted checks plus request reads that hit the
    /// server-side socket timeout.
    timeouts_total: Counter,
    /// Checks stopped by cancellation.
    cancelled_total: Counter,
    /// Requests whose budgets were tightened because the service was
    /// overloaded (the degrade stage before shedding).
    overload_tightened_total: Counter,
    /// Requests whose explorer memory budget was tightened because the
    /// process RSS was at or over the configured watermark.
    memory_tightened_total: Counter,
    /// Checks stopped by a memory budget (their inconclusive rows are never
    /// cached — a bigger budget could still conclude them).
    memory_budget_stops_total: Counter,
    /// Process resident-set size, sampled whenever admission control or a
    /// `/metrics` render reads it.
    memory_resident_bytes: gam_obs::metrics::Gauge,
    /// Warnings this server emitted through the `gam_obs::warn!` path.
    warnings_total: Counter,
    /// Requests that exceeded [`ServeConfig::slow_threshold`].
    slow_requests_total: Counter,
    per_model: [Counter; ModelKind::ALL.len()],
    /// Per-endpoint request latency, microseconds.
    latency: [Histogram; ENDPOINTS.len()],
}

impl Metrics {
    fn new() -> Metrics {
        let registry = Registry::new();
        let counter = |name: &str| registry.counter(name);
        Metrics {
            requests_total: counter("serve.requests_total"),
            checks_total: counter("serve.checks_total"),
            cache_hits: counter("serve.cache_hits"),
            cache_misses: counter("serve.cache_misses"),
            shed_total: counter("serve.shed_total"),
            states_total: counter("serve.states_total"),
            wall_us_total: counter("serve.wall_us_total"),
            inconclusive_total: counter("serve.inconclusive_total"),
            panics_total: counter("serve.panics_total"),
            timeouts_total: counter("serve.timeouts_total"),
            cancelled_total: counter("serve.cancelled_total"),
            overload_tightened_total: counter("serve.overload_tightened_total"),
            memory_tightened_total: counter("serve.memory_tightened_total"),
            memory_budget_stops_total: counter("serve.memory_budget_stops_total"),
            memory_resident_bytes: registry.gauge("serve.memory_resident_bytes"),
            warnings_total: counter("serve.warnings_total"),
            slow_requests_total: counter("serve.slow_requests_total"),
            per_model: std::array::from_fn(|i| {
                registry.counter(&format!("serve.checks.{}", model_name(ModelKind::ALL[i])))
            }),
            latency: std::array::from_fn(|i| {
                registry.histogram(&format!("serve.latency.{}.us", ENDPOINTS[i]))
            }),
            registry,
        }
    }

    fn record_hit(&self, model: ModelKind) {
        self.checks_total.inc();
        self.cache_hits.inc();
        self.bump_model(model);
    }

    fn record_miss(&self, model: ModelKind, states: u64, wall_us: u64) {
        self.checks_total.inc();
        self.cache_misses.inc();
        self.states_total.add(states);
        self.wall_us_total.add(wall_us);
        self.bump_model(model);
    }

    fn record_inconclusive(&self, model: ModelKind, reason: StopReason) {
        self.checks_total.inc();
        self.inconclusive_total.inc();
        match reason {
            StopReason::WallBudget { .. } => {
                self.timeouts_total.inc();
            }
            StopReason::Cancelled => {
                self.cancelled_total.inc();
            }
            StopReason::MemoryBudget { .. } => {
                self.memory_budget_stops_total.inc();
            }
            StopReason::StateBudget { .. } => {}
        }
        self.bump_model(model);
    }

    fn record_panicked(&self, model: ModelKind) {
        self.checks_total.inc();
        self.panics_total.inc();
        self.bump_model(model);
    }

    fn bump_model(&self, model: ModelKind) {
        let index = ModelKind::ALL.iter().position(|m| *m == model).unwrap_or(0);
        self.per_model[index].inc();
    }

    /// Records one finished request on the endpoint's latency histogram.
    fn record_latency(&self, endpoint: &str, wall_us: u64) {
        let index = ENDPOINTS.iter().position(|e| *e == endpoint).unwrap_or(ENDPOINTS.len() - 1);
        self.latency[index].observe(wall_us);
    }
}

struct Shared {
    queue: Mutex<VecDeque<TcpStream>>,
    ready: Condvar,
    stop: AtomicUsize,
    queue_depth: usize,
    read_timeout: Duration,
    write_timeout: Duration,
    metrics: Metrics,
    cache: Mutex<JournaledCache>,
    overload_wall_ms: u64,
    /// RSS admission watermark; 0 disables memory tightening.
    mem_watermark_bytes: u64,
    /// The explorer byte budget clamped onto requests over the watermark.
    overload_mem_bytes: u64,
    /// Requests slower than this are logged; served at `GET /debug/slow`.
    slow_threshold: Duration,
    /// Bounded log of the most recent slow requests (oldest dropped first).
    slow_log: Mutex<VecDeque<SlowEntry>>,
    /// Set by `POST /shutdown`; observed by [`Server::wait_for_shutdown_request`].
    shutdown_request: Mutex<bool>,
    shutdown_cond: Condvar,
}

/// One slow-request record.
#[derive(Debug, Clone)]
struct SlowEntry {
    trace_id: String,
    method: String,
    path: String,
    status: u16,
    wall_us: u64,
}

impl Shared {
    fn stopping(&self) -> bool {
        self.stop.load(Ordering::SeqCst) != 0
    }

    fn request_shutdown(&self) {
        *self.shutdown_request.lock().expect("shutdown lock") = true;
        self.shutdown_cond.notify_all();
    }

    /// Folds the journal into a fresh snapshot, warning on (but not
    /// propagating) I/O failure: a read-only filesystem degrades the
    /// service to memory-only caching. Called on graceful shutdown; steady
    /// state compacts automatically inside the journal layer.
    fn compact_cache(&self) {
        let mut cache = self.cache.lock().expect("cache lock");
        if let Err(err) = cache.compact() {
            self.metrics.warnings_total.inc();
            gam_obs::warn!("gam-serve: cannot compact cache: {err}");
        }
    }

    /// Records one finished request into the bounded slow-request log.
    fn note_slow(&self, entry: SlowEntry) {
        self.metrics.slow_requests_total.inc();
        let mut log = self.slow_log.lock().expect("slow log lock");
        if log.len() >= SLOW_LOG_CAPACITY {
            log.pop_front();
        }
        log.push_back(entry);
    }

    /// The degrade stage: under sustained pressure (standing queue at least
    /// half the configured depth), clamp the request's wall budget so
    /// expensive checks come back `inconclusive` instead of growing the
    /// queue until the acceptor has to shed.
    fn tighten_for_overload(&self, options: &mut CheckOptions) {
        let standing = self.queue.lock().expect("queue lock").len();
        if standing.saturating_mul(2) < self.queue_depth {
            return;
        }
        let clamped = options
            .budget_wall_ms
            .map_or(self.overload_wall_ms, |requested| requested.min(self.overload_wall_ms));
        if options.budget_wall_ms != Some(clamped) {
            options.budget_wall_ms = Some(clamped);
            self.metrics.overload_tightened_total.inc();
        }
    }

    /// The memory analogue of [`Shared::tighten_for_overload`]: while the
    /// process RSS sits at or over the configured watermark, clamp the
    /// request's explorer memory budget so state-explosion checks degrade
    /// (spill, then stop with a memory-budget inconclusive) instead of
    /// growing the RSS until the OS kills the service. Memory-budget
    /// inconclusives are never cached, so a later, less-pressured request
    /// can still conclude the same test.
    fn tighten_for_memory(&self, options: &mut CheckOptions) {
        if self.mem_watermark_bytes == 0 {
            return;
        }
        let Some(resident) = gam_core::memory::process_resident_bytes() else { return };
        self.metrics.memory_resident_bytes.set(i64::try_from(resident).unwrap_or(i64::MAX));
        if u64::try_from(resident).unwrap_or(u64::MAX) < self.mem_watermark_bytes {
            return;
        }
        let clamp = usize::try_from(self.overload_mem_bytes).unwrap_or(usize::MAX);
        let clamped = options.budget_max_bytes.map_or(clamp, |requested| requested.min(clamp));
        if options.budget_max_bytes != Some(clamped) {
            options.budget_max_bytes = Some(clamped);
            self.metrics.memory_tightened_total.inc();
        }
    }
}

/// Emits journal-layer warnings (degradation to memory-only, failed
/// compactions) through the unified `gam_obs::warn!` path — stderr with a
/// stable `warn:` prefix, never stdout — without failing the request that
/// surfaced them.
fn warn_cache(metrics: &Metrics, warnings: impl IntoIterator<Item = String>) {
    for warning in warnings {
        metrics.warnings_total.inc();
        gam_obs::warn!("gam-serve: {warning}");
    }
}

/// A running check service; dropping it without [`Server::shutdown`] leaves
/// detached threads behind, so tests and the CLI both call `shutdown`.
pub struct Server {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds the address and starts the acceptor + worker pool. Returns the
    /// server and an optional warning from recovering the cache (corrupt or
    /// mis-versioned snapshots start empty; torn journal tails are truncated
    /// to the longest valid prefix — neither keeps the service from
    /// starting).
    ///
    /// # Errors
    ///
    /// [`ServeError::Bind`] when the address cannot be bound.
    pub fn start(config: &ServeConfig) -> Result<(Server, Option<String>), ServeError> {
        let listener = TcpListener::bind(&config.addr)
            .map_err(|source| ServeError::Bind { addr: config.addr.clone(), source })?;
        let local_addr = listener
            .local_addr()
            .map_err(|source| ServeError::Bind { addr: config.addr.clone(), source })?;
        let (cache, warnings) =
            JournaledCache::open(&config.cache_path, config.cache_capacity, config.compact_every);
        let warning = (!warnings.is_empty()).then(|| warnings.join("; "));
        // Phase timers (cache_lookup, journal_append, persist, …) feed the
        // global registry's `phase.*.us` histograms while a server runs, so
        // the Prometheus scrape can report where request time goes.
        gam_obs::phase::arm_metrics();
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            stop: AtomicUsize::new(0),
            queue_depth: config.queue_depth.max(1),
            read_timeout: config.read_timeout,
            write_timeout: config.write_timeout,
            metrics: Metrics::new(),
            cache: Mutex::new(cache),
            overload_wall_ms: config.overload_wall_ms.max(1),
            mem_watermark_bytes: config.mem_watermark_bytes,
            overload_mem_bytes: config.overload_mem_bytes.max(1),
            slow_threshold: config.slow_threshold,
            slow_log: Mutex::new(VecDeque::new()),
            shutdown_request: Mutex::new(false),
            shutdown_cond: Condvar::new(),
        });

        let acceptor = {
            let shared = Arc::clone(&shared);
            thread::spawn(move || accept_loop(&listener, &shared))
        };
        let workers = (0..config.workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Ok((Server { local_addr, shared, acceptor: Some(acceptor), workers }, warning))
    }

    /// The bound address (useful with port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Whether a client has asked the service to stop via `POST /shutdown`.
    #[must_use]
    pub fn shutdown_requested(&self) -> bool {
        *self.shared.shutdown_request.lock().expect("shutdown lock")
    }

    /// Blocks until a client requests shutdown via `POST /shutdown`. The CLI
    /// parks here, then performs the graceful [`Server::shutdown`] (drain
    /// workers, persist cache) itself.
    pub fn wait_for_shutdown_request(&self) {
        let mut requested = self.shared.shutdown_request.lock().expect("shutdown lock");
        while !*requested {
            requested = self.shared.shutdown_cond.wait(requested).expect("shutdown lock");
        }
    }

    /// Stops accepting, drains the workers, and persists the cache.
    pub fn shutdown(mut self) {
        self.shared.stop.store(1, Ordering::SeqCst);
        // Unblock the acceptor's blocking `accept` with a dummy connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        self.shared.ready.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        self.shared.compact_cache();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Shared) {
    for stream in listener.incoming() {
        if shared.stopping() {
            break;
        }
        let Ok(stream) = stream else { continue };
        let mut queue = shared.queue.lock().expect("queue lock");
        if queue.len() >= shared.queue_depth {
            drop(queue);
            shared.metrics.shed_total.inc();
            shed(stream);
        } else {
            queue.push_back(stream);
            drop(queue);
            shared.ready.notify_one();
        }
    }
}

/// Graceful shedding: an immediate `503` with a retry hint.
fn shed(mut stream: TcpStream) {
    let body = Json::object([
        ("ok", Json::Bool(false)),
        ("error", Json::Str("request queue full; retry".to_string())),
    ])
    .to_string();
    let _ = write_response(
        &mut stream,
        503,
        "Service Unavailable",
        &[("Retry-After", "1")],
        "application/json",
        &body,
    );
}

fn worker_loop(shared: &Shared) {
    loop {
        let stream = {
            let mut queue = shared.queue.lock().expect("queue lock");
            loop {
                if let Some(stream) = queue.pop_front() {
                    break Some(stream);
                }
                if shared.stopping() {
                    break None;
                }
                queue = shared.ready.wait(queue).expect("queue lock");
            }
        };
        let Some(stream) = stream else { return };
        // A panic anywhere in request handling (including injected faults
        // firing outside the per-check isolation) must never take the worker
        // down — the connection is abandoned, the loop continues.
        let _ = catch_unwind(AssertUnwindSafe(|| handle_connection(shared, stream)));
    }
}

/// Handles one connection end to end: arm socket timeouts, assign the
/// request its trace id, read the request, route it, write the response
/// (the trace id is echoed back in `X-Gam-Trace-Id`), then record the
/// endpoint latency and — past [`ServeConfig::slow_threshold`] — a
/// slow-log entry. A read that exceeds the server-side timeout is answered
/// with `408 Request Timeout` (and counted) rather than holding the worker
/// hostage to a slow or half-open client.
fn handle_connection(shared: &Shared, mut stream: TcpStream) {
    shared.metrics.requests_total.inc();
    let _ = stream.set_read_timeout(Some(shared.read_timeout));
    let _ = stream.set_write_timeout(Some(shared.write_timeout));
    let trace_id = trace::next_trace_id();
    trace::set_trace_id(trace_id);
    let trace_hex = trace::format_trace_id(trace_id);
    let start = Instant::now();
    let mut span = trace::span("serve.request");
    let (endpoint, method, path, response) = match read_request(&mut stream) {
        Ok(request) => {
            let (endpoint, response) = route(shared, &request);
            (endpoint, request.method.clone(), request.path.clone(), response)
        }
        Err(err) if matches!(err.kind(), io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock) => {
            shared.metrics.timeouts_total.inc();
            let response = error_response(408, format!("request read timed out: {err}"));
            ("other", String::new(), String::new(), response)
        }
        Err(err) => {
            let response = error_response(400, format!("bad request: {err}"));
            ("other", String::new(), String::new(), response)
        }
    };
    let _ = write_response(
        &mut stream,
        response.status,
        response.reason,
        &[("X-Gam-Trace-Id", &trace_hex)],
        response.content_type,
        &response.body,
    );
    let wall = start.elapsed();
    let wall_us = u64::try_from(wall.as_micros()).unwrap_or(u64::MAX);
    shared.metrics.record_latency(endpoint, wall_us);
    span.arg("endpoint", endpoint);
    span.arg("status", response.status);
    drop(span);
    if wall >= shared.slow_threshold {
        shared.note_slow(SlowEntry {
            trace_id: trace_hex,
            method,
            path,
            status: response.status,
            wall_us,
        });
    }
    trace::set_trace_id(0);
}

struct RouteResponse {
    status: u16,
    reason: &'static str,
    content_type: &'static str,
    body: String,
}

fn ok_response(body: &Json) -> RouteResponse {
    RouteResponse {
        status: 200,
        reason: "OK",
        content_type: "application/json",
        body: body.to_string(),
    }
}

fn error_response(status: u16, message: String) -> RouteResponse {
    let reason = match status {
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        _ => "Internal Server Error",
    };
    let body = Json::object([("ok", Json::Bool(false)), ("error", Json::Str(message))]);
    RouteResponse { status, reason, content_type: "application/json", body: body.to_string() }
}

/// Routes one request, returning the endpoint's latency label alongside the
/// response. Query strings are split off the path before matching, so
/// `/metrics?format=prometheus` routes like `/metrics`.
fn route(shared: &Shared, request: &Request) -> (&'static str, RouteResponse) {
    let (path, query) = match request.path.split_once('?') {
        Some((path, query)) => (path, query),
        None => (request.path.as_str(), ""),
    };
    match (request.method.as_str(), path) {
        ("GET", "/healthz") => {
            ("healthz", ok_response(&Json::object([("status", Json::Str("ok".to_string()))])))
        }
        ("GET", "/metrics") => ("metrics", metrics_response(shared, query)),
        ("GET", "/debug/slow") => ("other", ok_response(&render_slow_log(shared))),
        ("POST", "/check") => ("check", handle_check(shared, request)),
        ("POST", "/batch") => ("batch", handle_batch(shared, request)),
        ("POST", "/shutdown") => {
            shared.request_shutdown();
            let response = ok_response(&Json::object([
                ("ok", Json::Bool(true)),
                ("status", Json::Str("draining".to_string())),
            ]));
            ("shutdown", response)
        }
        ("GET" | "POST", _) => {
            ("other", error_response(404, format!("no such endpoint: {}", request.path)))
        }
        (method, _) => ("other", error_response(405, format!("unsupported method: {method}"))),
    }
}

/// `GET /metrics`: the JSON document by default; with `format=prometheus`
/// in the query, the Prometheus text exposition of the server's registry
/// plus the process-global registry (phase timings, warning counts).
fn metrics_response(shared: &Shared, query: &str) -> RouteResponse {
    if query.split('&').any(|pair| pair == "format=prometheus") {
        let mut text = shared.metrics.registry.render_prometheus_text();
        text.push_str(&gam_obs::metrics::global().render_prometheus_text());
        return RouteResponse {
            status: 200,
            reason: "OK",
            content_type: "text/plain; version=0.0.4",
            body: text,
        };
    }
    ok_response(&render_metrics(shared))
}

/// The `GET /debug/slow` document: the bounded slow-request log, oldest
/// entry first.
fn render_slow_log(shared: &Shared) -> Json {
    let threshold_us = u64::try_from(shared.slow_threshold.as_micros()).unwrap_or(u64::MAX);
    let entries: Vec<Json> = shared
        .slow_log
        .lock()
        .expect("slow log lock")
        .iter()
        .map(|entry| {
            Json::object([
                ("trace_id", Json::Str(entry.trace_id.clone())),
                ("method", Json::Str(entry.method.clone())),
                ("path", Json::Str(entry.path.clone())),
                ("status", Json::UInt(u64::from(entry.status))),
                ("wall_us", Json::UInt(entry.wall_us)),
            ])
        })
        .collect();
    Json::object([
        ("schema", Json::Str(SLOW_LOG_SCHEMA.to_string())),
        ("threshold_us", Json::UInt(threshold_us)),
        ("entries", Json::Array(entries)),
    ])
}

fn render_metrics(shared: &Shared) -> Json {
    let metrics = &shared.metrics;
    // Refresh the resident-set gauge on every render; admission control also
    // samples it, but a scrape must see a current figure even when no check
    // has run since the last one.
    if let Some(resident) = gam_core::memory::process_resident_bytes() {
        metrics.memory_resident_bytes.set(i64::try_from(resident).unwrap_or(i64::MAX));
    }
    let hits = metrics.cache_hits.get();
    let misses = metrics.cache_misses.get();
    let states = metrics.states_total.get();
    let wall_us = metrics.wall_us_total.get();
    let (cache_entries, evictions, journal) = {
        let cache = shared.cache.lock().expect("cache lock");
        (cache.cache().len() as u64, cache.cache().evictions(), cache.stats())
    };
    let per_model = Json::Object(
        ModelKind::ALL
            .iter()
            .enumerate()
            .map(|(i, model)| {
                (model_name(*model).to_string(), Json::UInt(metrics.per_model[i].get()))
            })
            .collect(),
    );
    // Per-endpoint request latency quantiles (v2 addition).
    let latency = Json::Object(
        ENDPOINTS
            .iter()
            .enumerate()
            .map(|(i, endpoint)| {
                let snapshot = metrics.latency[i].snapshot();
                (
                    (*endpoint).to_string(),
                    Json::object([
                        ("count", Json::UInt(snapshot.count)),
                        ("p50_us", Json::UInt(snapshot.p50)),
                        ("p90_us", Json::UInt(snapshot.p90)),
                        ("p99_us", Json::UInt(snapshot.p99)),
                        ("max_us", Json::UInt(snapshot.max)),
                    ]),
                )
            })
            .collect(),
    );
    Json::object([
        // The v1 fields below are bit-compatible with gam-serve-metrics/v1;
        // everything from `warnings_total` on is additive in v2.
        ("schema", Json::Str(METRICS_SCHEMA.to_string())),
        ("requests_total", Json::UInt(metrics.requests_total.get())),
        ("checks_total", Json::UInt(metrics.checks_total.get())),
        ("cache_hits", Json::UInt(hits)),
        ("cache_misses", Json::UInt(misses)),
        // Integer per-mille rate; the JSON layer is deliberately float-free.
        ("hit_rate_permille", Json::UInt((hits * 1000).checked_div(hits + misses).unwrap_or(0))),
        ("states_total", Json::UInt(states)),
        ("wall_us_total", Json::UInt(wall_us)),
        (
            "states_per_sec",
            Json::UInt(states.saturating_mul(1_000_000).checked_div(wall_us).unwrap_or(0)),
        ),
        ("queue_depth", Json::UInt(shared.queue.lock().expect("queue lock").len() as u64)),
        ("shed_total", Json::UInt(metrics.shed_total.get())),
        ("inconclusive_total", Json::UInt(metrics.inconclusive_total.get())),
        ("panics_total", Json::UInt(metrics.panics_total.get())),
        ("timeouts_total", Json::UInt(metrics.timeouts_total.get())),
        ("cancelled_total", Json::UInt(metrics.cancelled_total.get())),
        ("overload_tightened_total", Json::UInt(metrics.overload_tightened_total.get())),
        // v3 additions: memory-pressure admission control.
        (
            "memory_resident_bytes",
            Json::UInt(u64::try_from(metrics.memory_resident_bytes.get()).unwrap_or(0)),
        ),
        ("memory_tightened_total", Json::UInt(metrics.memory_tightened_total.get())),
        ("memory_budget_stops_total", Json::UInt(metrics.memory_budget_stops_total.get())),
        ("cache_entries", Json::UInt(cache_entries)),
        ("cache_evictions", Json::UInt(evictions)),
        ("journal_appends_total", Json::UInt(journal.appends)),
        ("journal_compactions_total", Json::UInt(journal.compactions)),
        ("journal_replayed_records", Json::UInt(journal.replayed)),
        ("per_model_checks", per_model),
        ("warnings_total", Json::UInt(metrics.warnings_total.get())),
        ("slow_requests_total", Json::UInt(metrics.slow_requests_total.get())),
        ("latency_us", latency),
    ])
}

/// The wire name of a model (also the cache-key component).
#[must_use]
pub fn model_name(model: ModelKind) -> &'static str {
    match model {
        ModelKind::Sc => "sc",
        ModelKind::Tso => "tso",
        ModelKind::Gam => "gam",
        ModelKind::Gam0 => "gam0",
        ModelKind::GamArm => "gam-arm",
    }
}

/// Parses a wire model name (the CLI's `--models` vocabulary).
#[must_use]
pub fn parse_model(name: &str) -> Option<ModelKind> {
    Some(match name.to_ascii_lowercase().as_str() {
        "sc" => ModelKind::Sc,
        "tso" => ModelKind::Tso,
        "gam" => ModelKind::Gam,
        "gam0" => ModelKind::Gam0,
        "gam-arm" | "gamarm" | "gam_arm" => ModelKind::GamArm,
        _ => return None,
    })
}

/// The wire name of a backend (also the cache-key component).
#[must_use]
pub fn backend_name(backend: Backend) -> &'static str {
    match backend {
        Backend::Axiomatic => "axiomatic",
        Backend::Operational => "operational",
    }
}

/// Parses a wire backend name.
#[must_use]
pub fn parse_backend(name: &str) -> Option<Backend> {
    Some(match name.to_ascii_lowercase().as_str() {
        "axiomatic" | "ax" => Backend::Axiomatic,
        "operational" | "op" => Backend::Operational,
        _ => return None,
    })
}

/// Per-request options shared by `/check` and `/batch`.
struct CheckOptions {
    models: Vec<ModelKind>,
    backends: Vec<Backend>,
    /// Operational state budget (`max_states`), if the request set one.
    budget_states: Option<usize>,
    /// Per-check wall-clock budget in milliseconds, if the request set one.
    budget_wall_ms: Option<u64>,
    /// Operational explorer memory budget in accounted bytes, if the request
    /// set one (or admission control clamped one on).
    budget_max_bytes: Option<usize>,
}

impl CheckOptions {
    /// Whether any budget is armed — budgeted requests take the session path
    /// (budget exhaustion is an inconclusive row, not an error row).
    fn budgeted(&self) -> bool {
        self.budget_states.is_some()
            || self.budget_wall_ms.is_some()
            || self.budget_max_bytes.is_some()
    }

    fn budget(&self) -> CheckBudget {
        let mut budget = CheckBudget::none();
        if let Some(states) = self.budget_states {
            budget = budget.with_max_states(states);
        }
        if let Some(wall_ms) = self.budget_wall_ms {
            budget = budget.with_max_wall(Duration::from_millis(wall_ms));
        }
        if let Some(max_bytes) = self.budget_max_bytes {
            budget = budget.with_max_bytes(max_bytes);
        }
        budget
    }

    fn from_json(json: &Json) -> Result<CheckOptions, String> {
        let mut options = CheckOptions {
            models: vec![ModelKind::Gam],
            backends: vec![Backend::Operational],
            budget_states: None,
            budget_wall_ms: None,
            budget_max_bytes: None,
        };
        if let Some(models) = json.get("models") {
            let list = models.as_array().ok_or("`models` must be an array")?;
            options.models = list
                .iter()
                .map(|m| {
                    let name = m.as_str().ok_or("`models` entries must be strings")?;
                    parse_model(name).ok_or_else(|| format!("unknown model `{name}`"))
                })
                .collect::<Result<_, _>>()?;
            if options.models.is_empty() {
                return Err("`models` must not be empty".to_string());
            }
        }
        if let Some(backends) = json.get("backends") {
            let list = backends.as_array().ok_or("`backends` must be an array")?;
            options.backends = list
                .iter()
                .map(|b| {
                    let name = b.as_str().ok_or("`backends` entries must be strings")?;
                    parse_backend(name).ok_or_else(|| format!("unknown backend `{name}`"))
                })
                .collect::<Result<_, _>>()?;
            if options.backends.is_empty() {
                return Err("`backends` must not be empty".to_string());
            }
        }
        if let Some(budget) = json.get("budget_states") {
            let value = budget.as_u64().ok_or("`budget_states` must be an integer")?;
            options.budget_states =
                Some(usize::try_from(value).map_err(|_| "`budget_states` too large")?);
        }
        if let Some(budget) = json.get("budget_wall_ms") {
            options.budget_wall_ms =
                Some(budget.as_u64().ok_or("`budget_wall_ms` must be an integer")?);
        }
        if let Some(budget) = json.get("budget_max_bytes") {
            let value = budget.as_u64().ok_or("`budget_max_bytes` must be an integer")?;
            options.budget_max_bytes =
                Some(usize::try_from(value).map_err(|_| "`budget_max_bytes` too large")?);
        }
        Ok(options)
    }
}

fn handle_check(shared: &Shared, request: &Request) -> RouteResponse {
    let body = request.body_text();
    let trimmed = body.trim_start();
    let (litmus_text, options) = if trimmed.starts_with('{') {
        let json = match Json::parse(&body) {
            Ok(json) => json,
            Err(err) => return error_response(400, format!("bad JSON: {err}")),
        };
        let Some(litmus) = json.get("litmus").and_then(Json::as_str) else {
            return error_response(400, "missing `litmus` field".to_string());
        };
        match CheckOptions::from_json(&json) {
            Ok(options) => (litmus.to_string(), options),
            Err(err) => return error_response(400, err),
        }
    } else {
        (
            body,
            CheckOptions {
                models: vec![ModelKind::Gam],
                backends: vec![Backend::Operational],
                budget_states: None,
                budget_wall_ms: None,
                budget_max_bytes: None,
            },
        )
    };
    let mut options = options;
    let test = match parse_litmus(&litmus_text) {
        Ok(test) => test,
        Err(err) => return error_response(400, format!("litmus parse error: {err}")),
    };
    shared.tighten_for_overload(&mut options);
    shared.tighten_for_memory(&mut options);
    let result = check_one(shared, &test, &options);
    ok_response(&Json::object([("ok", Json::Bool(true)), ("result", result)]))
}

/// Checks one test against every requested (model, backend) pair, answering
/// from the cache when possible. Mutations are durable the moment the
/// journal append returns — no whole-cache rewrite on this path anymore.
fn check_one(shared: &Shared, test: &LitmusTest, options: &CheckOptions) -> Json {
    let hash = canonical_hash(test).to_string();
    let mut results = Vec::new();
    for &model in &options.models {
        for &backend in &options.backends {
            let base = [
                ("model", Json::Str(model_name(model).to_string())),
                ("backend", Json::Str(backend_name(backend).to_string())),
            ];
            if !backend.supports(model) {
                results.push(Json::object(base.into_iter().chain([(
                    "error",
                    Json::Str(format!(
                        "backend {} does not support {}",
                        backend_name(backend),
                        model
                    )),
                )])));
                continue;
            }
            let key = OutcomeCache::key(&hash, model_name(model), backend_name(backend));
            let cached = {
                let _phase = gam_obs::phase("cache_lookup");
                let (entry, warning) = shared.cache.lock().expect("cache lock").lookup(&key);
                warn_cache(&shared.metrics, warning);
                entry
            };
            if let Some(entry) = cached {
                shared.metrics.record_hit(model);
                results.push(Json::object(base.into_iter().chain([
                    ("verdict", verdict_json(entry.allowed)),
                    ("cached", Json::Bool(true)),
                    ("wall_us", Json::UInt(entry.wall_us)),
                    ("states", Json::UInt(entry.states)),
                ])));
                continue;
            }
            match compute_miss(test, model, backend, options) {
                MissOutcome::Conclusive(entry) => {
                    shared.metrics.record_miss(model, entry.states, entry.wall_us);
                    warn_cache(
                        &shared.metrics,
                        shared.cache.lock().expect("cache lock").insert(key, entry.clone()),
                    );
                    results.push(Json::object(base.into_iter().chain([
                        ("verdict", verdict_json(entry.allowed)),
                        ("cached", Json::Bool(false)),
                        ("wall_us", Json::UInt(entry.wall_us)),
                        ("states", Json::UInt(entry.states)),
                    ])));
                }
                MissOutcome::Inconclusive { reason, states_visited, partial_outcomes, wall_us } => {
                    shared.metrics.record_inconclusive(model, reason);
                    results.push(Json::object(base.into_iter().chain(inconclusive_fields(
                        reason,
                        states_visited,
                        partial_outcomes,
                        wall_us,
                    ))));
                }
                MissOutcome::Panicked(message) => {
                    shared.metrics.record_panicked(model);
                    results.push(Json::object(
                        base.into_iter().chain([("error", Json::Str(message))]),
                    ));
                }
                MissOutcome::Error(message) => {
                    results.push(Json::object(
                        base.into_iter().chain([("error", Json::Str(message))]),
                    ));
                }
            }
        }
    }
    Json::object([
        ("test", Json::Str(test.name().to_string())),
        ("canonical_hash", Json::Str(hash)),
        ("results", Json::Array(results)),
    ])
}

fn verdict_json(allowed: bool) -> Json {
    Json::Str(if allowed { "allowed" } else { "forbidden" }.to_string())
}

/// How one cache miss resolved.
enum MissOutcome {
    /// The check finished; the entry is cacheable.
    Conclusive(CacheEntry),
    /// A budget ran out or the check was cancelled before the verdict was
    /// known — reported to the client, counted, never cached.
    Inconclusive { reason: StopReason, states_visited: u64, partial_outcomes: u64, wall_us: u64 },
    /// The checker panicked; the panic was caught and rendered.
    Panicked(String),
    /// An ordinary checker error (unsupported feature, too many events, …).
    Error(String),
}

/// The JSON fields of an inconclusive result row.
fn inconclusive_fields(
    reason: StopReason,
    states_visited: u64,
    partial_outcomes: u64,
    wall_us: u64,
) -> [(&'static str, Json); 6] {
    [
        ("verdict", Json::Str("inconclusive".to_string())),
        ("reason", Json::Str(reason.to_string())),
        ("cached", Json::Bool(false)),
        ("wall_us", Json::UInt(wall_us)),
        ("states", Json::UInt(states_visited)),
        ("partial_outcomes", Json::UInt(partial_outcomes)),
    ]
}

/// Computes a cache miss.
///
/// Budgeted requests (`budget_states`/`budget_wall_ms`) take the engine's
/// session path ([`Engine::check_budgeted`]): budget exhaustion becomes an
/// [`MissOutcome::Inconclusive`] carrying partial outcomes instead of an
/// error. Unbudgeted requests keep the original path — the operational
/// backend goes through the explorer directly so the entry records real
/// `states_visited` (the engine's `Checker` trait deliberately hides them);
/// the axiomatic backend goes through the engine. Both paths are
/// panic-isolated: a panicking checker yields [`MissOutcome::Panicked`], not
/// a dead worker.
fn compute_miss(
    test: &LitmusTest,
    model: ModelKind,
    backend: Backend,
    options: &CheckOptions,
) -> MissOutcome {
    if options.budgeted() {
        let engine = match Engine::builder().model(model).backend(backend).build() {
            Ok(engine) => engine,
            Err(err) => return MissOutcome::Error(err.to_string()),
        };
        return match engine.check_budgeted(test, &options.budget()) {
            Ok(outcome) => {
                let wall_us = u64::try_from(outcome.wall.as_micros()).unwrap_or(u64::MAX);
                match outcome.verdict {
                    SessionVerdict::Inconclusive { partial_outcomes, states_visited, reason } => {
                        MissOutcome::Inconclusive {
                            reason,
                            states_visited: states_visited as u64,
                            partial_outcomes: partial_outcomes.len() as u64,
                            wall_us,
                        }
                    }
                    verdict => {
                        let allowed = verdict
                            .as_verdict()
                            .map(|v| v.is_allowed())
                            .expect("non-inconclusive session verdict is conclusive");
                        // The session path enumerates outcomes without
                        // reporting state counts; cost ranks by wall time.
                        MissOutcome::Conclusive(CacheEntry { allowed, wall_us, states: 0, hits: 0 })
                    }
                }
            }
            Err(EngineError::Panicked { payload }) => {
                MissOutcome::Panicked(EngineError::Panicked { payload }.to_string())
            }
            Err(err) => MissOutcome::Error(err.to_string()),
        };
    }
    let start = Instant::now();
    let computed = catch_unwind(AssertUnwindSafe(|| -> Result<(bool, u64), String> {
        match backend {
            Backend::Operational => {
                let checker = OperationalChecker::with_config(model, ExplorerConfig::default());
                let exploration = checker.explore(test).map_err(|err| err.to_string())?;
                let allowed =
                    exploration.outcomes.iter().any(|outcome| test.condition().matched_by(outcome));
                Ok((allowed, exploration.states_visited as u64))
            }
            Backend::Axiomatic => {
                let verdict =
                    Engine::axiomatic(model).check(test).map_err(|err| err.to_string())?;
                Ok((verdict.is_allowed(), 0))
            }
        }
    }));
    let wall_us = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
    match computed {
        Ok(Ok((allowed, states))) => {
            MissOutcome::Conclusive(CacheEntry { allowed, wall_us, states, hits: 0 })
        }
        Ok(Err(message)) => MissOutcome::Error(message),
        Err(payload) => MissOutcome::Panicked(EngineError::panicked(&*payload).to_string()),
    }
}

fn handle_batch(shared: &Shared, request: &Request) -> RouteResponse {
    let json = match Json::parse(&request.body_text()) {
        Ok(json) => json,
        Err(err) => return error_response(400, format!("bad JSON: {err}")),
    };
    let Some(entries) = json.get("tests").and_then(Json::as_array) else {
        return error_response(400, "missing `tests` array".to_string());
    };
    let mut options = match CheckOptions::from_json(&json) {
        Ok(options) => options,
        Err(err) => return error_response(400, err),
    };
    shared.tighten_for_overload(&mut options);
    shared.tighten_for_memory(&mut options);
    let mut tests = Vec::with_capacity(entries.len());
    for (index, entry) in entries.iter().enumerate() {
        let Some(text) = entry.as_str() else {
            return error_response(400, format!("`tests[{index}]` must be a litmus string"));
        };
        match parse_litmus(text) {
            Ok(test) => tests.push(test),
            Err(err) => {
                return error_response(400, format!("`tests[{index}]` parse error: {err}"));
            }
        }
    }
    let results = batch_check(shared, &tests, &options);
    ok_response(&Json::object([("ok", Json::Bool(true)), ("results", Json::Array(results))]))
}

/// The `/batch` core: per (model, backend) pair, split the tests into cache
/// hits and misses, fan the misses out through the engine's adaptive suite
/// scheduler (verdict-only mode stops each test at its first witness), then
/// assemble per-test results in input order.
fn batch_check(shared: &Shared, tests: &[LitmusTest], options: &CheckOptions) -> Vec<Json> {
    let hashes: Vec<String> = tests.iter().map(|t| canonical_hash(t).to_string()).collect();
    // results[test][pair] assembled as JSON rows at the end.
    let mut rows: Vec<Vec<Json>> = vec![Vec::new(); tests.len()];
    for &model in &options.models {
        for &backend in &options.backends {
            let base = |extra: Vec<(&str, Json)>| {
                Json::object(
                    [
                        ("model", Json::Str(model_name(model).to_string())),
                        ("backend", Json::Str(backend_name(backend).to_string())),
                    ]
                    .into_iter()
                    .chain(extra),
                )
            };
            if !backend.supports(model) {
                let message =
                    format!("backend {} does not support {}", backend_name(backend), model);
                for row in &mut rows {
                    row.push(base(vec![("error", Json::Str(message.clone()))]));
                }
                continue;
            }
            // Split hits from misses under one lock acquisition.
            let mut miss_indices = Vec::new();
            let mut hit_entries: Vec<Option<CacheEntry>> = Vec::with_capacity(tests.len());
            {
                let _phase = gam_obs::phase("cache_lookup");
                let mut cache = shared.cache.lock().expect("cache lock");
                for hash in &hashes {
                    let key = OutcomeCache::key(hash, model_name(model), backend_name(backend));
                    let (entry, warning) = cache.lookup(&key);
                    warn_cache(&shared.metrics, warning);
                    if entry.is_none() {
                        miss_indices.push(hit_entries.len());
                    }
                    hit_entries.push(entry);
                }
            }
            // Fan the misses out. Budgeted batches go test-by-test through
            // the session path (each test gets its own budget and its own
            // inconclusive/panicked accounting); unbudgeted batches keep the
            // adaptive suite scheduler.
            let mut miss_results: Vec<Option<MissOutcome>> =
                std::iter::repeat_with(|| None).take(tests.len()).collect();
            if options.budgeted() {
                for &index in &miss_indices {
                    miss_results[index] =
                        Some(compute_miss(&tests[index], model, backend, options));
                }
            } else if !miss_indices.is_empty() {
                let miss_tests: Vec<LitmusTest> =
                    miss_indices.iter().map(|&i| tests[i].clone()).collect();
                match Engine::builder().model(model).backend(backend).build() {
                    Ok(engine) => {
                        let report = engine.run_suite_verdicts(&miss_tests);
                        for (&index, test_report) in miss_indices.iter().zip(&report.reports) {
                            let wall_us =
                                u64::try_from(test_report.wall.as_micros()).unwrap_or(u64::MAX);
                            miss_results[index] =
                                Some(match (test_report.verdict, &test_report.error) {
                                    (Some(verdict), _) => MissOutcome::Conclusive(CacheEntry {
                                        allowed: verdict.is_allowed(),
                                        wall_us,
                                        // The scheduler's early-exit mode does not
                                        // report states; cost falls back to wall time.
                                        states: 0,
                                        hits: 0,
                                    }),
                                    // The suite runner renders caught panics
                                    // through `EngineError::Panicked` — detect
                                    // them by their stable prefix so the batch
                                    // path counts panics exactly like `/check`.
                                    (None, Some(error))
                                        if error.starts_with("the checker panicked") =>
                                    {
                                        MissOutcome::Panicked(error.clone())
                                    }
                                    (None, Some(error)) => MissOutcome::Error(error.clone()),
                                    (None, None) => MissOutcome::Error(
                                        "backend produced no verdict".to_string(),
                                    ),
                                });
                        }
                    }
                    Err(err) => {
                        let message = err.to_string();
                        for &index in &miss_indices {
                            miss_results[index] = Some(MissOutcome::Error(message.clone()));
                        }
                    }
                }
            }
            // Assemble this pair's column.
            for (index, row) in rows.iter_mut().enumerate() {
                if let Some(entry) = &hit_entries[index] {
                    shared.metrics.record_hit(model);
                    row.push(base(vec![
                        ("verdict", verdict_json(entry.allowed)),
                        ("cached", Json::Bool(true)),
                        ("wall_us", Json::UInt(entry.wall_us)),
                        ("states", Json::UInt(entry.states)),
                    ]));
                    continue;
                }
                match miss_results[index].take() {
                    Some(MissOutcome::Conclusive(entry)) => {
                        shared.metrics.record_miss(model, entry.states, entry.wall_us);
                        let key = OutcomeCache::key(
                            &hashes[index],
                            model_name(model),
                            backend_name(backend),
                        );
                        warn_cache(
                            &shared.metrics,
                            shared.cache.lock().expect("cache lock").insert(key, entry.clone()),
                        );
                        row.push(base(vec![
                            ("verdict", verdict_json(entry.allowed)),
                            ("cached", Json::Bool(false)),
                            ("wall_us", Json::UInt(entry.wall_us)),
                            ("states", Json::UInt(entry.states)),
                        ]));
                    }
                    Some(MissOutcome::Inconclusive {
                        reason,
                        states_visited,
                        partial_outcomes,
                        wall_us,
                    }) => {
                        shared.metrics.record_inconclusive(model, reason);
                        row.push(base(
                            inconclusive_fields(reason, states_visited, partial_outcomes, wall_us)
                                .into_iter()
                                .collect(),
                        ));
                    }
                    Some(MissOutcome::Panicked(message)) => {
                        shared.metrics.record_panicked(model);
                        row.push(base(vec![("error", Json::Str(message))]));
                    }
                    Some(MissOutcome::Error(message)) => {
                        row.push(base(vec![("error", Json::Str(message))]));
                    }
                    None => {
                        row.push(base(vec![(
                            "error",
                            Json::Str("internal: miss result missing".to_string()),
                        )]));
                    }
                }
            }
        }
    }
    tests
        .iter()
        .zip(hashes)
        .zip(rows)
        .map(|((test, hash), row)| {
            Json::object([
                ("test", Json::Str(test.name().to_string())),
                ("canonical_hash", Json::Str(hash)),
                ("results", Json::Array(row)),
            ])
        })
        .collect()
}
