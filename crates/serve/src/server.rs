//! The `gam serve` HTTP service: a fixed worker pool draining a bounded
//! queue of connections, four endpoints, and the canonicalizing outcome
//! cache in front of the checker stack.
//!
//! * `GET  /healthz` — liveness probe.
//! * `GET  /metrics` — counters: requests, checks, hit rate, states/sec,
//!   queue depth, evictions, per-model counts.
//! * `POST /check`   — one test (raw `.litmus` text, or a JSON envelope
//!   with per-request models/backends/budget); answered from the cache
//!   keyed by the canonical hash whenever possible.
//! * `POST /batch`   — many tests; cache misses are fanned out through the
//!   engine's adaptive suite scheduler ([`Engine::run_suite_verdicts`]).
//!
//! Overflow is shed gracefully: when the queue is full the acceptor answers
//! `503` with `Retry-After` instead of queueing, so latency stays bounded
//! until a streaming API lands (ROADMAP item 5).

use std::collections::VecDeque;
use std::fmt;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Instant;

use gam_core::ModelKind;
use gam_engine::{Backend, Engine, Json};
use gam_frontend::{canonical_hash, parse_litmus};
use gam_isa::litmus::LitmusTest;
use gam_operational::{ExplorerConfig, OperationalChecker};

use crate::cache::{CacheEntry, OutcomeCache};
use crate::http::{read_request, write_response, Request};

/// Schema identifier of the `/metrics` document.
pub const METRICS_SCHEMA: &str = "gam-serve-metrics/v1";

/// Configuration of one server instance.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:7117` (port 0 picks a free port).
    pub addr: String,
    /// Worker threads draining the request queue.
    pub workers: usize,
    /// Bound of the pending-connection queue; beyond it requests are shed
    /// with `503 Service Unavailable` + `Retry-After`.
    pub queue_depth: usize,
    /// Path of the persistent cache file.
    pub cache_path: PathBuf,
    /// Maximum number of cache entries before cost-based eviction.
    pub cache_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7117".to_string(),
            workers: thread::available_parallelism().map_or(2, std::num::NonZeroUsize::get),
            queue_depth: 64,
            cache_path: PathBuf::from("gam-serve-cache.json"),
            cache_capacity: 4096,
        }
    }
}

/// Startup failures.
#[derive(Debug)]
pub enum ServeError {
    /// The listener could not bind the requested address.
    Bind {
        /// The address that failed to bind.
        addr: String,
        /// The underlying socket error.
        source: io::Error,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Bind { addr, source } => {
                write!(f, "cannot bind {addr}: {source}")
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// Service counters, shared across workers. Everything is monotonic except
/// `queue_depth`, which is sampled from the live queue at render time.
#[derive(Debug, Default)]
struct Metrics {
    requests_total: AtomicU64,
    checks_total: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    shed_total: AtomicU64,
    states_total: AtomicU64,
    wall_us_total: AtomicU64,
    per_model: [AtomicU64; ModelKind::ALL.len()],
}

impl Metrics {
    fn record_hit(&self, model: ModelKind) {
        self.checks_total.fetch_add(1, Ordering::Relaxed);
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
        self.bump_model(model);
    }

    fn record_miss(&self, model: ModelKind, states: u64, wall_us: u64) {
        self.checks_total.fetch_add(1, Ordering::Relaxed);
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
        self.states_total.fetch_add(states, Ordering::Relaxed);
        self.wall_us_total.fetch_add(wall_us, Ordering::Relaxed);
        self.bump_model(model);
    }

    fn bump_model(&self, model: ModelKind) {
        let index = ModelKind::ALL.iter().position(|m| *m == model).unwrap_or(0);
        self.per_model[index].fetch_add(1, Ordering::Relaxed);
    }
}

struct Shared {
    queue: Mutex<VecDeque<TcpStream>>,
    ready: Condvar,
    stop: AtomicUsize,
    queue_depth: usize,
    metrics: Metrics,
    cache: Mutex<OutcomeCache>,
    cache_path: PathBuf,
}

impl Shared {
    fn stopping(&self) -> bool {
        self.stop.load(Ordering::SeqCst) != 0
    }

    /// Persists the cache, warning on (but not propagating) I/O failure: a
    /// read-only filesystem degrades the service to memory-only caching.
    fn persist_cache(&self) {
        let cache = self.cache.lock().expect("cache lock");
        if let Err(err) = cache.save(&self.cache_path) {
            eprintln!("gam-serve: cannot persist cache to {}: {err}", self.cache_path.display());
        }
    }
}

/// A running check service; dropping it without [`Server::shutdown`] leaves
/// detached threads behind, so tests and the CLI both call `shutdown`.
pub struct Server {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds the address and starts the acceptor + worker pool. Returns the
    /// server and an optional warning from loading the cache file (corrupt
    /// or mis-versioned caches start empty instead of failing).
    ///
    /// # Errors
    ///
    /// [`ServeError::Bind`] when the address cannot be bound.
    pub fn start(config: &ServeConfig) -> Result<(Server, Option<String>), ServeError> {
        let listener = TcpListener::bind(&config.addr)
            .map_err(|source| ServeError::Bind { addr: config.addr.clone(), source })?;
        let local_addr = listener
            .local_addr()
            .map_err(|source| ServeError::Bind { addr: config.addr.clone(), source })?;
        let (cache, warning) = OutcomeCache::load(&config.cache_path, config.cache_capacity);
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            stop: AtomicUsize::new(0),
            queue_depth: config.queue_depth.max(1),
            metrics: Metrics::default(),
            cache: Mutex::new(cache),
            cache_path: config.cache_path.clone(),
        });

        let acceptor = {
            let shared = Arc::clone(&shared);
            thread::spawn(move || accept_loop(&listener, &shared))
        };
        let workers = (0..config.workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Ok((Server { local_addr, shared, acceptor: Some(acceptor), workers }, warning))
    }

    /// The bound address (useful with port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops accepting, drains the workers, and persists the cache.
    pub fn shutdown(mut self) {
        self.shared.stop.store(1, Ordering::SeqCst);
        // Unblock the acceptor's blocking `accept` with a dummy connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        self.shared.ready.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        self.shared.persist_cache();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Shared) {
    for stream in listener.incoming() {
        if shared.stopping() {
            break;
        }
        let Ok(stream) = stream else { continue };
        let mut queue = shared.queue.lock().expect("queue lock");
        if queue.len() >= shared.queue_depth {
            drop(queue);
            shared.metrics.shed_total.fetch_add(1, Ordering::Relaxed);
            shed(stream);
        } else {
            queue.push_back(stream);
            drop(queue);
            shared.ready.notify_one();
        }
    }
}

/// Graceful shedding: an immediate `503` with a retry hint.
fn shed(mut stream: TcpStream) {
    let body = Json::object([
        ("ok", Json::Bool(false)),
        ("error", Json::Str("request queue full; retry".to_string())),
    ])
    .to_string();
    let _ = write_response(
        &mut stream,
        503,
        "Service Unavailable",
        &[("Retry-After", "1")],
        "application/json",
        &body,
    );
}

fn worker_loop(shared: &Shared) {
    loop {
        let stream = {
            let mut queue = shared.queue.lock().expect("queue lock");
            loop {
                if let Some(stream) = queue.pop_front() {
                    break Some(stream);
                }
                if shared.stopping() {
                    break None;
                }
                queue = shared.ready.wait(queue).expect("queue lock");
            }
        };
        let Some(mut stream) = stream else { return };
        shared.metrics.requests_total.fetch_add(1, Ordering::Relaxed);
        let response = match read_request(&mut stream) {
            Ok(request) => route(shared, &request),
            Err(err) => error_response(400, format!("bad request: {err}")),
        };
        let _ = write_response(
            &mut stream,
            response.status,
            response.reason,
            &[],
            "application/json",
            &response.body,
        );
    }
}

struct RouteResponse {
    status: u16,
    reason: &'static str,
    body: String,
}

fn ok_response(body: &Json) -> RouteResponse {
    RouteResponse { status: 200, reason: "OK", body: body.to_string() }
}

fn error_response(status: u16, message: String) -> RouteResponse {
    let reason = match status {
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Internal Server Error",
    };
    let body = Json::object([("ok", Json::Bool(false)), ("error", Json::Str(message))]);
    RouteResponse { status, reason, body: body.to_string() }
}

fn route(shared: &Shared, request: &Request) -> RouteResponse {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => {
            ok_response(&Json::object([("status", Json::Str("ok".to_string()))]))
        }
        ("GET", "/metrics") => ok_response(&render_metrics(shared)),
        ("POST", "/check") => handle_check(shared, request),
        ("POST", "/batch") => handle_batch(shared, request),
        ("GET" | "POST", _) => error_response(404, format!("no such endpoint: {}", request.path)),
        (method, _) => error_response(405, format!("unsupported method: {method}")),
    }
}

fn render_metrics(shared: &Shared) -> Json {
    let metrics = &shared.metrics;
    let hits = metrics.cache_hits.load(Ordering::Relaxed);
    let misses = metrics.cache_misses.load(Ordering::Relaxed);
    let states = metrics.states_total.load(Ordering::Relaxed);
    let wall_us = metrics.wall_us_total.load(Ordering::Relaxed);
    let (cache_entries, evictions) = {
        let cache = shared.cache.lock().expect("cache lock");
        (cache.len() as u64, cache.evictions())
    };
    let per_model = Json::Object(
        ModelKind::ALL
            .iter()
            .enumerate()
            .map(|(i, model)| {
                (
                    model_name(*model).to_string(),
                    Json::UInt(metrics.per_model[i].load(Ordering::Relaxed)),
                )
            })
            .collect(),
    );
    Json::object([
        ("schema", Json::Str(METRICS_SCHEMA.to_string())),
        ("requests_total", Json::UInt(metrics.requests_total.load(Ordering::Relaxed))),
        ("checks_total", Json::UInt(metrics.checks_total.load(Ordering::Relaxed))),
        ("cache_hits", Json::UInt(hits)),
        ("cache_misses", Json::UInt(misses)),
        // Integer per-mille rate; the JSON layer is deliberately float-free.
        ("hit_rate_permille", Json::UInt((hits * 1000).checked_div(hits + misses).unwrap_or(0))),
        ("states_total", Json::UInt(states)),
        ("wall_us_total", Json::UInt(wall_us)),
        (
            "states_per_sec",
            Json::UInt(states.saturating_mul(1_000_000).checked_div(wall_us).unwrap_or(0)),
        ),
        ("queue_depth", Json::UInt(shared.queue.lock().expect("queue lock").len() as u64)),
        ("shed_total", Json::UInt(metrics.shed_total.load(Ordering::Relaxed))),
        ("cache_entries", Json::UInt(cache_entries)),
        ("cache_evictions", Json::UInt(evictions)),
        ("per_model_checks", per_model),
    ])
}

/// The wire name of a model (also the cache-key component).
#[must_use]
pub fn model_name(model: ModelKind) -> &'static str {
    match model {
        ModelKind::Sc => "sc",
        ModelKind::Tso => "tso",
        ModelKind::Gam => "gam",
        ModelKind::Gam0 => "gam0",
        ModelKind::GamArm => "gam-arm",
    }
}

/// Parses a wire model name (the CLI's `--models` vocabulary).
#[must_use]
pub fn parse_model(name: &str) -> Option<ModelKind> {
    Some(match name.to_ascii_lowercase().as_str() {
        "sc" => ModelKind::Sc,
        "tso" => ModelKind::Tso,
        "gam" => ModelKind::Gam,
        "gam0" => ModelKind::Gam0,
        "gam-arm" | "gamarm" | "gam_arm" => ModelKind::GamArm,
        _ => return None,
    })
}

/// The wire name of a backend (also the cache-key component).
#[must_use]
pub fn backend_name(backend: Backend) -> &'static str {
    match backend {
        Backend::Axiomatic => "axiomatic",
        Backend::Operational => "operational",
    }
}

/// Parses a wire backend name.
#[must_use]
pub fn parse_backend(name: &str) -> Option<Backend> {
    Some(match name.to_ascii_lowercase().as_str() {
        "axiomatic" | "ax" => Backend::Axiomatic,
        "operational" | "op" => Backend::Operational,
        _ => return None,
    })
}

/// Per-request options shared by `/check` and `/batch`.
struct CheckOptions {
    models: Vec<ModelKind>,
    backends: Vec<Backend>,
    /// Operational state budget (`max_states`), if the request set one.
    budget_states: Option<usize>,
}

impl CheckOptions {
    fn from_json(json: &Json) -> Result<CheckOptions, String> {
        let mut options = CheckOptions {
            models: vec![ModelKind::Gam],
            backends: vec![Backend::Operational],
            budget_states: None,
        };
        if let Some(models) = json.get("models") {
            let list = models.as_array().ok_or("`models` must be an array")?;
            options.models = list
                .iter()
                .map(|m| {
                    let name = m.as_str().ok_or("`models` entries must be strings")?;
                    parse_model(name).ok_or_else(|| format!("unknown model `{name}`"))
                })
                .collect::<Result<_, _>>()?;
            if options.models.is_empty() {
                return Err("`models` must not be empty".to_string());
            }
        }
        if let Some(backends) = json.get("backends") {
            let list = backends.as_array().ok_or("`backends` must be an array")?;
            options.backends = list
                .iter()
                .map(|b| {
                    let name = b.as_str().ok_or("`backends` entries must be strings")?;
                    parse_backend(name).ok_or_else(|| format!("unknown backend `{name}`"))
                })
                .collect::<Result<_, _>>()?;
            if options.backends.is_empty() {
                return Err("`backends` must not be empty".to_string());
            }
        }
        if let Some(budget) = json.get("budget_states") {
            let value = budget.as_u64().ok_or("`budget_states` must be an integer")?;
            options.budget_states =
                Some(usize::try_from(value).map_err(|_| "`budget_states` too large")?);
        }
        Ok(options)
    }
}

fn handle_check(shared: &Shared, request: &Request) -> RouteResponse {
    let body = request.body_text();
    let trimmed = body.trim_start();
    let (litmus_text, options) = if trimmed.starts_with('{') {
        let json = match Json::parse(&body) {
            Ok(json) => json,
            Err(err) => return error_response(400, format!("bad JSON: {err}")),
        };
        let Some(litmus) = json.get("litmus").and_then(Json::as_str) else {
            return error_response(400, "missing `litmus` field".to_string());
        };
        match CheckOptions::from_json(&json) {
            Ok(options) => (litmus.to_string(), options),
            Err(err) => return error_response(400, err),
        }
    } else {
        (
            body,
            CheckOptions {
                models: vec![ModelKind::Gam],
                backends: vec![Backend::Operational],
                budget_states: None,
            },
        )
    };
    let test = match parse_litmus(&litmus_text) {
        Ok(test) => test,
        Err(err) => return error_response(400, format!("litmus parse error: {err}")),
    };
    let (result, mutated) = check_one(shared, &test, &options);
    if mutated {
        shared.persist_cache();
    }
    ok_response(&Json::object([("ok", Json::Bool(true)), ("result", result)]))
}

/// Checks one test against every requested (model, backend) pair, answering
/// from the cache when possible. Returns the per-test JSON and whether the
/// cache was mutated.
fn check_one(shared: &Shared, test: &LitmusTest, options: &CheckOptions) -> (Json, bool) {
    let hash = canonical_hash(test).to_string();
    let mut results = Vec::new();
    let mut mutated = false;
    for &model in &options.models {
        for &backend in &options.backends {
            let base = [
                ("model", Json::Str(model_name(model).to_string())),
                ("backend", Json::Str(backend_name(backend).to_string())),
            ];
            if !backend.supports(model) {
                results.push(Json::object(base.into_iter().chain([(
                    "error",
                    Json::Str(format!(
                        "backend {} does not support {}",
                        backend_name(backend),
                        model
                    )),
                )])));
                continue;
            }
            let key = OutcomeCache::key(&hash, model_name(model), backend_name(backend));
            let cached = shared.cache.lock().expect("cache lock").lookup(&key);
            if let Some(entry) = cached {
                shared.metrics.record_hit(model);
                results.push(Json::object(base.into_iter().chain([
                    ("verdict", verdict_json(entry.allowed)),
                    ("cached", Json::Bool(true)),
                    ("wall_us", Json::UInt(entry.wall_us)),
                    ("states", Json::UInt(entry.states)),
                ])));
                continue;
            }
            match compute_miss(test, model, backend, options.budget_states) {
                Ok(entry) => {
                    shared.metrics.record_miss(model, entry.states, entry.wall_us);
                    shared.cache.lock().expect("cache lock").insert(key, entry.clone());
                    mutated = true;
                    results.push(Json::object(base.into_iter().chain([
                        ("verdict", verdict_json(entry.allowed)),
                        ("cached", Json::Bool(false)),
                        ("wall_us", Json::UInt(entry.wall_us)),
                        ("states", Json::UInt(entry.states)),
                    ])));
                }
                Err(err) => {
                    results.push(Json::object(base.into_iter().chain([("error", Json::Str(err))])));
                }
            }
        }
    }
    let json = Json::object([
        ("test", Json::Str(test.name().to_string())),
        ("canonical_hash", Json::Str(hash)),
        ("results", Json::Array(results)),
    ]);
    (json, mutated)
}

fn verdict_json(allowed: bool) -> Json {
    Json::Str(if allowed { "allowed" } else { "forbidden" }.to_string())
}

/// Computes a cache miss. The operational backend goes through the explorer
/// directly so the entry records real `states_visited` (the engine's
/// `Checker` trait deliberately hides them); the axiomatic backend goes
/// through the engine.
fn compute_miss(
    test: &LitmusTest,
    model: ModelKind,
    backend: Backend,
    budget_states: Option<usize>,
) -> Result<CacheEntry, String> {
    let start = Instant::now();
    let (allowed, states) = match backend {
        Backend::Operational => {
            let config = ExplorerConfig {
                max_states: budget_states.unwrap_or(ExplorerConfig::default().max_states),
                ..ExplorerConfig::default()
            };
            let checker = OperationalChecker::with_config(model, config);
            let exploration = checker.explore(test).map_err(|err| err.to_string())?;
            let allowed =
                exploration.outcomes.iter().any(|outcome| test.condition().matched_by(outcome));
            (allowed, exploration.states_visited as u64)
        }
        Backend::Axiomatic => {
            let verdict = Engine::axiomatic(model).check(test).map_err(|err| err.to_string())?;
            (verdict.is_allowed(), 0)
        }
    };
    let wall_us = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
    Ok(CacheEntry { allowed, wall_us, states, hits: 0 })
}

fn handle_batch(shared: &Shared, request: &Request) -> RouteResponse {
    let json = match Json::parse(&request.body_text()) {
        Ok(json) => json,
        Err(err) => return error_response(400, format!("bad JSON: {err}")),
    };
    let Some(entries) = json.get("tests").and_then(Json::as_array) else {
        return error_response(400, "missing `tests` array".to_string());
    };
    let options = match CheckOptions::from_json(&json) {
        Ok(options) => options,
        Err(err) => return error_response(400, err),
    };
    let mut tests = Vec::with_capacity(entries.len());
    for (index, entry) in entries.iter().enumerate() {
        let Some(text) = entry.as_str() else {
            return error_response(400, format!("`tests[{index}]` must be a litmus string"));
        };
        match parse_litmus(text) {
            Ok(test) => tests.push(test),
            Err(err) => {
                return error_response(400, format!("`tests[{index}]` parse error: {err}"));
            }
        }
    }
    let (results, mutated) = batch_check(shared, &tests, &options);
    if mutated {
        shared.persist_cache();
    }
    ok_response(&Json::object([("ok", Json::Bool(true)), ("results", Json::Array(results))]))
}

/// The `/batch` core: per (model, backend) pair, split the tests into cache
/// hits and misses, fan the misses out through the engine's adaptive suite
/// scheduler (verdict-only mode stops each test at its first witness), then
/// assemble per-test results in input order.
fn batch_check(shared: &Shared, tests: &[LitmusTest], options: &CheckOptions) -> (Vec<Json>, bool) {
    let hashes: Vec<String> = tests.iter().map(|t| canonical_hash(t).to_string()).collect();
    let mut mutated = false;
    // results[test][pair] assembled as JSON rows at the end.
    let mut rows: Vec<Vec<Json>> = vec![Vec::new(); tests.len()];
    for &model in &options.models {
        for &backend in &options.backends {
            let base = |extra: Vec<(&str, Json)>| {
                Json::object(
                    [
                        ("model", Json::Str(model_name(model).to_string())),
                        ("backend", Json::Str(backend_name(backend).to_string())),
                    ]
                    .into_iter()
                    .chain(extra),
                )
            };
            if !backend.supports(model) {
                let message =
                    format!("backend {} does not support {}", backend_name(backend), model);
                for row in &mut rows {
                    row.push(base(vec![("error", Json::Str(message.clone()))]));
                }
                continue;
            }
            // Split hits from misses under one lock acquisition.
            let mut miss_indices = Vec::new();
            let mut hit_entries: Vec<Option<CacheEntry>> = Vec::with_capacity(tests.len());
            {
                let mut cache = shared.cache.lock().expect("cache lock");
                for hash in &hashes {
                    let key = OutcomeCache::key(hash, model_name(model), backend_name(backend));
                    let entry = cache.lookup(&key);
                    if entry.is_none() {
                        miss_indices.push(hit_entries.len());
                    }
                    hit_entries.push(entry);
                }
            }
            // Fan the misses out through the adaptive suite scheduler.
            let mut miss_results: Vec<Option<Result<CacheEntry, String>>> = vec![None; tests.len()];
            if !miss_indices.is_empty() {
                let miss_tests: Vec<LitmusTest> =
                    miss_indices.iter().map(|&i| tests[i].clone()).collect();
                match Engine::builder().model(model).backend(backend).build() {
                    Ok(engine) => {
                        let report = engine.run_suite_verdicts(&miss_tests);
                        for (&index, test_report) in miss_indices.iter().zip(&report.reports) {
                            let wall_us =
                                u64::try_from(test_report.wall.as_micros()).unwrap_or(u64::MAX);
                            miss_results[index] =
                                Some(match (test_report.verdict, &test_report.error) {
                                    (Some(verdict), _) => Ok(CacheEntry {
                                        allowed: verdict.is_allowed(),
                                        wall_us,
                                        // The scheduler's early-exit mode does not
                                        // report states; cost falls back to wall time.
                                        states: 0,
                                        hits: 0,
                                    }),
                                    (None, Some(error)) => Err(error.clone()),
                                    (None, None) => Err("backend produced no verdict".to_string()),
                                });
                        }
                    }
                    Err(err) => {
                        let message = err.to_string();
                        for &index in &miss_indices {
                            miss_results[index] = Some(Err(message.clone()));
                        }
                    }
                }
            }
            // Assemble this pair's column.
            for (index, row) in rows.iter_mut().enumerate() {
                if let Some(entry) = &hit_entries[index] {
                    shared.metrics.record_hit(model);
                    row.push(base(vec![
                        ("verdict", verdict_json(entry.allowed)),
                        ("cached", Json::Bool(true)),
                        ("wall_us", Json::UInt(entry.wall_us)),
                        ("states", Json::UInt(entry.states)),
                    ]));
                    continue;
                }
                match miss_results[index].take() {
                    Some(Ok(entry)) => {
                        shared.metrics.record_miss(model, entry.states, entry.wall_us);
                        let key = OutcomeCache::key(
                            &hashes[index],
                            model_name(model),
                            backend_name(backend),
                        );
                        shared.cache.lock().expect("cache lock").insert(key, entry.clone());
                        mutated = true;
                        row.push(base(vec![
                            ("verdict", verdict_json(entry.allowed)),
                            ("cached", Json::Bool(false)),
                            ("wall_us", Json::UInt(entry.wall_us)),
                            ("states", Json::UInt(entry.states)),
                        ]));
                    }
                    Some(Err(message)) => {
                        row.push(base(vec![("error", Json::Str(message))]));
                    }
                    None => {
                        row.push(base(vec![(
                            "error",
                            Json::Str("internal: miss result missing".to_string()),
                        )]));
                    }
                }
            }
        }
    }
    let results = tests
        .iter()
        .zip(hashes)
        .zip(rows)
        .map(|((test, hash), row)| {
            Json::object([
                ("test", Json::Str(test.name().to_string())),
                ("canonical_hash", Json::Str(hash)),
                ("results", Json::Array(row)),
            ])
        })
        .collect();
    (results, mutated)
}
