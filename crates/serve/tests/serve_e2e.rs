//! End-to-end tests against a live server: health, raw-text and JSON
//! checks, canonicalizing cache hits, batch checking, metrics consistency,
//! persistence across a restart, and bind-failure reporting.

use std::fs;
use std::net::TcpListener;
use std::path::PathBuf;

use gam_core::ModelKind;
use gam_engine::{Engine, Json};
use gam_frontend::{canonical_test, print_litmus};
use gam_isa::litmus::library;
use gam_serve::http::request;
use gam_serve::{ServeConfig, ServeError, Server};

struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        let mut path = std::env::temp_dir();
        path.push(format!("gam-serve-e2e-{}-{tag}.json", std::process::id()));
        let _ = fs::remove_file(&path);
        Scratch(path)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.0);
    }
}

fn start(cache_path: &Scratch) -> Server {
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        queue_depth: 16,
        cache_path: cache_path.0.clone(),
        cache_capacity: 256,
        ..ServeConfig::default()
    };
    let (server, warning) = Server::start(&config).expect("server starts");
    assert!(warning.is_none(), "scratch cache must load silently: {warning:?}");
    server
}

fn json_body(addr: &str, method: &str, path: &str, body: Option<&str>) -> (u16, Json) {
    let response = request(addr, method, path, body).expect("request succeeds");
    let json = Json::parse(&response.body)
        .unwrap_or_else(|err| panic!("bad JSON from {path}: {err}: {}", response.body));
    (response.status, json)
}

/// The single (model, backend) result row of a `/check` response.
fn only_result(json: &Json) -> &Json {
    let results =
        json.get("result").and_then(|r| r.get("results")).and_then(Json::as_array).unwrap();
    assert_eq!(results.len(), 1);
    &results[0]
}

#[test]
fn every_response_carries_a_unique_trace_id_and_slow_requests_are_logged() {
    let scratch = Scratch::new("trace-id");
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        queue_depth: 16,
        cache_path: scratch.0.clone(),
        cache_capacity: 256,
        // Everything is "slow" at a zero threshold, so each request must
        // land in the slow log with its trace id.
        slow_threshold: std::time::Duration::ZERO,
        ..ServeConfig::default()
    };
    let (server, _) = Server::start(&config).expect("server starts");
    let addr = server.local_addr().to_string();

    let mut trace_ids = Vec::new();
    for _ in 0..2 {
        let response = request(&addr, "GET", "/healthz", None).expect("healthz answers");
        let id = response
            .header("x-gam-trace-id")
            .expect("every response echoes X-Gam-Trace-Id")
            .to_string();
        assert_eq!(id.len(), 16, "trace id is 16 hex digits: {id}");
        assert!(id.chars().all(|c| c.is_ascii_hexdigit()), "hex trace id: {id}");
        trace_ids.push(id);
    }
    assert_ne!(trace_ids[0], trace_ids[1], "each request gets its own trace id");

    let (status, slow) = json_body(&addr, "GET", "/debug/slow", None);
    assert_eq!(status, 200);
    assert_eq!(slow.get("schema").and_then(Json::as_str), Some("gam-serve-slow/v1"));
    let entries = slow.get("entries").and_then(Json::as_array).expect("entries");
    assert!(entries.len() >= 2, "both healthz requests exceeded the zero threshold");
    for id in &trace_ids {
        assert!(
            entries.iter().any(|e| e.get("trace_id").and_then(Json::as_str) == Some(id)),
            "slow log lost trace id {id}"
        );
    }
    let logged_paths: Vec<_> =
        entries.iter().filter_map(|e| e.get("path").and_then(Json::as_str)).collect();
    assert!(logged_paths.contains(&"/healthz"), "slow entries name their path: {logged_paths:?}");

    // The additive v2 counter agrees with the log.
    let (_, metrics) = json_body(&addr, "GET", "/metrics", None);
    assert_eq!(metrics.get("schema").and_then(Json::as_str), Some("gam-serve-metrics/v3"));
    let slow_total = metrics.get("slow_requests_total").and_then(Json::as_u64).expect("v2 field");
    assert!(slow_total >= entries.len() as u64);

    server.shutdown();
}

#[test]
fn healthz_and_unknown_routes() {
    let scratch = Scratch::new("health");
    let server = start(&scratch);
    let addr = server.local_addr().to_string();

    let (status, json) = json_body(&addr, "GET", "/healthz", None);
    assert_eq!(status, 200);
    assert_eq!(json.get("status").and_then(Json::as_str), Some("ok"));

    let (status, _) = json_body(&addr, "GET", "/nope", None);
    assert_eq!(status, 404);
    let (status, _) = json_body(&addr, "DELETE", "/healthz", None);
    assert_eq!(status, 405);
    let (status, _) = json_body(&addr, "POST", "/check", Some("not a litmus test"));
    assert_eq!(status, 400);

    server.shutdown();
}

#[test]
fn check_caches_and_canonicalizes() {
    let scratch = Scratch::new("check");
    let server = start(&scratch);
    let addr = server.local_addr().to_string();

    let mp = library::mp();
    let expected = Engine::operational(ModelKind::Gam)
        .expect("operational engine")
        .check(&mp)
        .expect("in-process verdict")
        .is_allowed();
    let verdict = if expected { "allowed" } else { "forbidden" };

    // Cold: raw litmus text, default model/backend (gam/operational).
    let (status, json) = json_body(&addr, "POST", "/check", Some(&print_litmus(&mp)));
    assert_eq!(status, 200);
    let row = only_result(&json);
    assert_eq!(row.get("verdict").and_then(Json::as_str), Some(verdict));
    assert_eq!(row.get("cached"), Some(&Json::Bool(false)));
    let hash = json
        .get("result")
        .and_then(|r| r.get("canonical_hash"))
        .and_then(Json::as_str)
        .unwrap()
        .to_string();

    // Warm: byte-identical resubmission hits.
    let (_, json) = json_body(&addr, "POST", "/check", Some(&print_litmus(&mp)));
    assert_eq!(only_result(&json).get("cached"), Some(&Json::Bool(true)));

    // Canonicalizing: a fully renamed variant (the canonical form itself,
    // with fresh register/location names) still hits the same entry.
    let renamed = print_litmus(&canonical_test(&mp));
    assert_ne!(renamed, print_litmus(&mp), "renaming must change the text");
    let (_, json) = json_body(&addr, "POST", "/check", Some(&renamed));
    let row = only_result(&json);
    assert_eq!(row.get("cached"), Some(&Json::Bool(true)));
    assert_eq!(row.get("verdict").and_then(Json::as_str), Some(verdict));
    assert_eq!(
        json.get("result").and_then(|r| r.get("canonical_hash")).and_then(Json::as_str),
        Some(hash.as_str()),
        "renamed variant must share the canonical hash"
    );

    server.shutdown();
}

#[test]
fn check_json_envelope_selects_models_and_backends() {
    let scratch = Scratch::new("envelope");
    let server = start(&scratch);
    let addr = server.local_addr().to_string();

    let sb = library::dekker();
    let envelope = Json::object([
        ("litmus", Json::Str(print_litmus(&sb))),
        ("models", Json::array([Json::Str("sc".into()), Json::Str("tso".into())])),
        ("backends", Json::array([Json::Str("axiomatic".into()), Json::Str("operational".into())])),
    ]);
    let (status, json) = json_body(&addr, "POST", "/check", Some(&envelope.to_string()));
    assert_eq!(status, 200);
    let results =
        json.get("result").and_then(|r| r.get("results")).and_then(Json::as_array).unwrap();
    assert_eq!(results.len(), 4, "2 models x 2 backends");
    for row in results {
        let model = row.get("model").and_then(Json::as_str).unwrap();
        let backend = row.get("backend").and_then(Json::as_str).unwrap();
        let verdict = row.get("verdict").and_then(Json::as_str);
        // Dekker (store buffering): its relaxed outcome is forbidden under
        // SC and allowed under TSO, on both backends.
        let expected = if model == "sc" { "forbidden" } else { "allowed" };
        assert_eq!(verdict, Some(expected), "{model}/{backend}");
    }

    // Unknown model names are a client error.
    let bad = Json::object([
        ("litmus", Json::Str(print_litmus(&sb))),
        ("models", Json::array([Json::Str("power".into())])),
    ]);
    let (status, _) = json_body(&addr, "POST", "/check", Some(&bad.to_string()));
    assert_eq!(status, 400);

    server.shutdown();
}

#[test]
fn batch_agrees_with_in_process_suite_and_metrics_add_up() {
    let scratch = Scratch::new("batch");
    let server = start(&scratch);
    let addr = server.local_addr().to_string();

    let tests: Vec<_> = library::all_tests().into_iter().take(6).collect();
    let engine = Engine::operational(ModelKind::Gam).expect("operational engine");
    let suite = engine.run_suite_verdicts(&tests);

    let body =
        Json::object([("tests", Json::array(tests.iter().map(|t| Json::Str(print_litmus(t)))))]);
    let (status, json) = json_body(&addr, "POST", "/batch", Some(&body.to_string()));
    assert_eq!(status, 200);
    let results = json.get("results").and_then(Json::as_array).unwrap();
    assert_eq!(results.len(), tests.len());
    for (test, row) in tests.iter().zip(results) {
        let in_process = suite
            .report_for(test.name())
            .and_then(|r| r.verdict)
            .unwrap_or_else(|| panic!("in-process verdict for {}", test.name()));
        let expected = if in_process.is_allowed() { "allowed" } else { "forbidden" };
        let pair = &row.get("results").and_then(Json::as_array).unwrap()[0];
        assert_eq!(
            pair.get("verdict").and_then(Json::as_str),
            Some(expected),
            "verdict agreement for {}",
            test.name()
        );
        assert_eq!(pair.get("cached"), Some(&Json::Bool(false)));
    }

    // Second identical batch: all hits.
    let (_, json) = json_body(&addr, "POST", "/batch", Some(&body.to_string()));
    for row in json.get("results").and_then(Json::as_array).unwrap() {
        let pair = &row.get("results").and_then(Json::as_array).unwrap()[0];
        assert_eq!(pair.get("cached"), Some(&Json::Bool(true)));
    }

    // Metrics must account for exactly these checks — including the
    // robustness counters, all zero on this fault-free run.
    let (_, metrics) = json_body(&addr, "GET", "/metrics", None);
    let get = |key: &str| metrics.get(key).and_then(Json::as_u64).unwrap();
    assert_eq!(get("cache_misses"), tests.len() as u64);
    assert_eq!(get("cache_hits"), tests.len() as u64);
    assert_eq!(
        get("checks_total"),
        get("cache_hits") + get("cache_misses") + get("inconclusive_total") + get("panics_total")
    );
    assert_eq!(get("inconclusive_total"), 0);
    assert_eq!(get("panics_total"), 0);
    assert_eq!(get("timeouts_total"), 0);
    assert_eq!(get("cancelled_total"), 0);
    assert_eq!(get("hit_rate_permille"), 500);
    assert_eq!(get("cache_entries"), tests.len() as u64);
    assert_eq!(
        metrics.get("per_model_checks").and_then(|m| m.get("gam")).and_then(Json::as_u64),
        Some(2 * tests.len() as u64)
    );

    server.shutdown();
}

#[test]
fn budgeted_check_reports_inconclusive_and_is_not_cached() {
    let scratch = Scratch::new("budget");
    let server = start(&scratch);
    let addr = server.local_addr().to_string();

    // A zero wall budget trips on the explorer's first interrupt poll.
    let iriw = library::iriw();
    let envelope = Json::object([
        ("litmus", Json::Str(print_litmus(&iriw))),
        ("budget_wall_ms", Json::UInt(0)),
    ]);
    let (status, json) = json_body(&addr, "POST", "/check", Some(&envelope.to_string()));
    assert_eq!(status, 200);
    let row = only_result(&json);
    assert_eq!(row.get("verdict").and_then(Json::as_str), Some("inconclusive"));
    assert_eq!(row.get("cached"), Some(&Json::Bool(false)));
    let reason = row.get("reason").and_then(Json::as_str).expect("inconclusive rows carry reasons");
    assert!(reason.contains("wall budget"), "unexpected reason: {reason}");

    // Inconclusive results are counted but never cached: the unbudgeted
    // resubmission is a miss that produces the real verdict.
    let (_, json) = json_body(&addr, "POST", "/check", Some(&print_litmus(&iriw)));
    let row = only_result(&json);
    assert_eq!(row.get("verdict").and_then(Json::as_str), Some("allowed"));
    assert_eq!(row.get("cached"), Some(&Json::Bool(false)));

    let (_, metrics) = json_body(&addr, "GET", "/metrics", None);
    let get = |key: &str| metrics.get(key).and_then(Json::as_u64).unwrap();
    assert_eq!(get("inconclusive_total"), 1);
    assert_eq!(get("timeouts_total"), 1, "wall-budget exhaustion counts as a timeout");
    assert_eq!(get("cancelled_total"), 0);
    assert_eq!(get("cache_misses"), 1);
    assert_eq!(
        get("checks_total"),
        get("cache_hits") + get("cache_misses") + get("inconclusive_total") + get("panics_total")
    );

    server.shutdown();
}

#[test]
fn shutdown_endpoint_requests_a_graceful_drain() {
    let scratch = Scratch::new("shutdown");
    let server = start(&scratch);
    let addr = server.local_addr().to_string();

    assert!(!server.shutdown_requested());
    let (status, json) = json_body(&addr, "POST", "/shutdown", None);
    assert_eq!(status, 200);
    assert_eq!(json.get("status").and_then(Json::as_str), Some("draining"));
    assert!(server.shutdown_requested());
    // The flag is observable without blocking once set.
    server.wait_for_shutdown_request();

    server.shutdown();
}

#[test]
fn cache_survives_a_restart() {
    let scratch = Scratch::new("restart");
    let mp = library::mp();

    let server = start(&scratch);
    let addr = server.local_addr().to_string();
    let (_, json) = json_body(&addr, "POST", "/check", Some(&print_litmus(&mp)));
    assert_eq!(only_result(&json).get("cached"), Some(&Json::Bool(false)));
    server.shutdown();

    // A new server over the same cache file answers warm immediately.
    let server = start(&scratch);
    let addr = server.local_addr().to_string();
    let (_, json) = json_body(&addr, "POST", "/check", Some(&print_litmus(&mp)));
    assert_eq!(only_result(&json).get("cached"), Some(&Json::Bool(true)));
    let (_, metrics) = json_body(&addr, "GET", "/metrics", None);
    assert_eq!(metrics.get("hit_rate_permille").and_then(Json::as_u64), Some(1000));
    server.shutdown();
}

#[test]
fn bind_failure_is_reported_not_panicked() {
    let occupied = TcpListener::bind("127.0.0.1:0").expect("probe listener");
    let addr = occupied.local_addr().unwrap().to_string();
    let scratch = Scratch::new("bind");
    let config =
        ServeConfig { addr: addr.clone(), cache_path: scratch.0.clone(), ..ServeConfig::default() };
    match Server::start(&config) {
        Err(ServeError::Bind { addr: reported, .. }) => assert_eq!(reported, addr),
        Ok(_) => panic!("binding an occupied port must fail"),
    }
}

#[test]
fn memory_watermark_tightens_admission_to_a_sound_uncached_inconclusive() {
    let scratch = Scratch::new("memory");
    // A one-byte watermark puts the server permanently "under pressure":
    // every request's explorer budget is clamped to overload_mem_bytes,
    // and a clamp this small trips before the first witness.
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        queue_depth: 16,
        cache_path: scratch.0.clone(),
        cache_capacity: 256,
        mem_watermark_bytes: 1,
        overload_mem_bytes: 64,
        ..ServeConfig::default()
    };
    let (server, warning) = Server::start(&config).expect("server starts");
    assert!(warning.is_none(), "scratch cache must load silently: {warning:?}");
    let addr = server.local_addr().to_string();

    // IRIW is forbidden under SC on the operational backend, so the witness
    // search must exhaust the state space — guaranteeing the tiny clamp
    // trips before a witness can soundly upgrade the partial answer.
    let iriw = library::iriw();
    let envelope = Json::object([
        ("litmus", Json::Str(print_litmus(&iriw))),
        ("models", Json::array([Json::Str("sc".into())])),
        ("backends", Json::array([Json::Str("operational".into())])),
    ]);
    let (status, json) = json_body(&addr, "POST", "/check", Some(&envelope.to_string()));
    assert_eq!(status, 200, "pressure degrades the answer, not the protocol");
    let row = only_result(&json);
    assert_eq!(row.get("verdict").and_then(Json::as_str), Some("inconclusive"));
    assert_eq!(row.get("cached"), Some(&Json::Bool(false)));
    let reason = row.get("reason").and_then(Json::as_str).expect("inconclusive rows carry reasons");
    assert!(reason.contains("memory budget"), "unexpected reason: {reason}");

    let (_, metrics) = json_body(&addr, "GET", "/metrics", None);
    let get = |key: &str| metrics.get(key).and_then(Json::as_u64).unwrap();
    assert!(get("memory_resident_bytes") > 0, "watermark checks sample the RSS");
    assert!(get("memory_tightened_total") >= 1, "the request budget must have been clamped");
    assert!(get("memory_budget_stops_total") >= 1, "the clamped budget must have tripped");
    // Pressure inconclusives stay out of the cache: nothing to poison a
    // later, less-pressured request with.
    assert_eq!(get("cache_entries"), 0);

    server.shutdown();
}
