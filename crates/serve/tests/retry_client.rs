//! The bounded-retry HTTP client against a hand-rolled server: retries
//! exactly as many times as the server sheds, honors `Retry-After` (capped
//! by the policy), and gives up gracefully — a still-shedding server after
//! the final retry is an `Ok(503)`, the caller's call, not an error.

use std::io::{Read as _, Write as _};
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

use gam_serve::http::request_retrying;
use gam_serve::{ClientConfig, RetryPolicy};

/// Reads the request head (through the blank line; the test client sends
/// no body for GET) and writes one canned response.
fn answer(mut stream: TcpStream, status_line: &str, extra_headers: &str, body: &str) {
    let mut buffer = [0u8; 1024];
    let mut head = Vec::new();
    while !head.windows(4).any(|w| w == b"\r\n\r\n") {
        let n = stream.read(&mut buffer).expect("read request");
        if n == 0 {
            break;
        }
        head.extend_from_slice(&buffer[..n]);
    }
    let response = format!(
        "HTTP/1.1 {status_line}\r\n{extra_headers}Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes()).expect("write response");
}

/// Serves `scripted` responses, one connection each, on an ephemeral port.
/// Returns the address and the join handle.
fn scripted_server(
    scripted: Vec<(&'static str, &'static str, &'static str)>,
) -> (String, std::thread::JoinHandle<()>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    let handle = std::thread::spawn(move || {
        for (status_line, extra_headers, body) in scripted {
            let (stream, _) = listener.accept().expect("accept");
            answer(stream, status_line, extra_headers, body);
        }
    });
    (addr, handle)
}

fn fast_policy() -> RetryPolicy {
    RetryPolicy {
        max_retries: 4,
        base_delay: Duration::from_millis(1),
        max_delay: Duration::from_millis(100),
    }
}

#[test]
fn retries_through_shedding_until_the_server_answers() {
    let (addr, server) = scripted_server(vec![
        ("503 Service Unavailable", "Retry-After: 0\r\n", ""),
        ("503 Service Unavailable", "Retry-After: 0\r\n", ""),
        ("200 OK", "", "{\"ok\":true}"),
    ]);
    let (response, stats) =
        request_retrying(&addr, "GET", "/check", None, &ClientConfig::default(), &fast_policy())
            .expect("retrying request succeeds");
    server.join().expect("server thread");
    assert_eq!(response.status, 200);
    assert_eq!(response.body, "{\"ok\":true}");
    assert_eq!(stats.retries, 2, "one retry per 503");
    assert!(stats.backoff > Duration::ZERO, "retries waited between attempts");
}

#[test]
fn a_still_shedding_server_yields_ok_503_after_the_budget() {
    let policy = RetryPolicy { max_retries: 2, ..fast_policy() };
    let (addr, server) = scripted_server(vec![
        ("503 Service Unavailable", "Retry-After: 0\r\n", "shed"),
        ("503 Service Unavailable", "Retry-After: 0\r\n", "shed"),
        ("503 Service Unavailable", "Retry-After: 0\r\n", "shed"),
    ]);
    let (response, stats) =
        request_retrying(&addr, "GET", "/check", None, &ClientConfig::default(), &policy)
            .expect("an exhausted budget is not a transport error");
    server.join().expect("server thread");
    assert_eq!(response.status, 503, "the final shed response is handed to the caller");
    assert_eq!(stats.retries, policy.max_retries, "the full budget was spent");
}

#[test]
fn retry_after_pushes_the_wait_beyond_exponential_backoff() {
    // base_delay 1ms means exponential backoff alone would wait ~1ms; a
    // Retry-After of 10s must stretch that wait — capped by max_delay at
    // 100ms so the test stays fast. Observing >= 90ms elapsed proves the
    // header (not the exponent) set the wait.
    let (addr, server) = scripted_server(vec![
        ("503 Service Unavailable", "Retry-After: 10\r\n", ""),
        ("200 OK", "", "ok"),
    ]);
    let started = Instant::now();
    let (response, stats) =
        request_retrying(&addr, "GET", "/check", None, &ClientConfig::default(), &fast_policy())
            .expect("request succeeds");
    server.join().expect("server thread");
    assert_eq!(response.status, 200);
    assert_eq!(stats.retries, 1);
    assert!(
        started.elapsed() >= Duration::from_millis(90),
        "Retry-After was ignored: only {:?} elapsed",
        started.elapsed()
    );
}

#[test]
fn zero_retries_disables_the_loop() {
    let policy = RetryPolicy { max_retries: 0, ..fast_policy() };
    let (addr, server) =
        scripted_server(vec![("503 Service Unavailable", "Retry-After: 0\r\n", "shed")]);
    let (response, stats) =
        request_retrying(&addr, "GET", "/check", None, &ClientConfig::default(), &policy)
            .expect("single attempt");
    server.join().expect("server thread");
    assert_eq!(response.status, 503);
    assert_eq!(stats.retries, 0);
    assert_eq!(stats.backoff, Duration::ZERO);
}
