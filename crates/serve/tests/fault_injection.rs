//! End-to-end fault injection against a live server.
//!
//! Each test arms a deterministic `gam_core::fault` plan and drives the
//! real HTTP service through it, asserting the robustness contract of
//! `gam serve`: non-faulted requests keep getting correct verdicts,
//! faulted ones get *typed* errors (never a hang, never a dead worker),
//! the metrics counters reconcile exactly, and the persistent cache
//! survives a crash in the middle of its own save.
//!
//! The fault plan is process-global, so every test holds
//! [`fault::exclusive`] for its entire `install`..`reset` span, and the
//! injected panics' default reports are suppressed with a quiet hook.

use std::fs;
use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

use gam_core::{fault, ModelKind};
use gam_engine::{Engine, Json};
use gam_frontend::print_litmus;
use gam_isa::litmus::library;
use gam_serve::http::{request, request_with, ClientConfig};
use gam_serve::{JournaledCache, OutcomeCache, ServeConfig, Server};

struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        let mut path = std::env::temp_dir();
        path.push(format!("gam-serve-fault-{}-{tag}.json", std::process::id()));
        let scratch = Scratch(path);
        let _ = fs::remove_file(&scratch.0);
        let _ = fs::remove_file(scratch.tmp_sibling());
        let _ = fs::remove_file(scratch.journal_sibling());
        scratch
    }

    fn tmp_sibling(&self) -> PathBuf {
        let name = self.0.file_name().expect("scratch has a name").to_string_lossy();
        self.0.with_file_name(format!("{name}.tmp"))
    }

    fn journal_sibling(&self) -> PathBuf {
        let name = self.0.file_name().expect("scratch has a name").to_string_lossy();
        self.0.with_file_name(format!("{name}.journal"))
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.0);
        let _ = fs::remove_file(self.tmp_sibling());
        let _ = fs::remove_file(self.journal_sibling());
    }
}

fn start(cache_path: &Scratch) -> Server {
    start_with(cache_path, Duration::from_secs(10))
}

fn start_with(cache_path: &Scratch, read_timeout: Duration) -> Server {
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        queue_depth: 16,
        cache_path: cache_path.0.clone(),
        cache_capacity: 256,
        read_timeout,
        ..ServeConfig::default()
    };
    let (server, warning) = Server::start(&config).expect("server starts");
    assert!(warning.is_none(), "scratch cache must load silently: {warning:?}");
    server
}

/// Runs `body` with panic backtraces suppressed (workers catch the
/// injected panics; their default reports would spam the output).
fn quiet_panics<T>(body: impl FnOnce() -> T) -> T {
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let result = body();
    std::panic::set_hook(hook);
    result
}

fn post_check(addr: &str, litmus: &str) -> (u16, Json) {
    let response = request(addr, "POST", "/check", Some(litmus)).expect("request succeeds");
    let json = Json::parse(&response.body).expect("well-formed JSON");
    (response.status, json)
}

fn only_row(json: &Json) -> &Json {
    let rows = json.get("result").and_then(|r| r.get("results")).and_then(Json::as_array).unwrap();
    assert_eq!(rows.len(), 1);
    &rows[0]
}

fn metric(addr: &str, key: &str) -> u64 {
    let response = request(addr, "GET", "/metrics", None).expect("metrics reachable");
    Json::parse(&response.body)
        .expect("metrics JSON")
        .get(key)
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("metrics field {key}"))
}

/// The accounting invariant every test closes with: each check is exactly
/// one of hit, miss, inconclusive or panicked.
fn assert_metrics_reconcile(addr: &str) {
    let checks = metric(addr, "checks_total");
    let accounted = metric(addr, "cache_hits")
        + metric(addr, "cache_misses")
        + metric(addr, "inconclusive_total")
        + metric(addr, "panics_total");
    assert_eq!(checks, accounted, "checks_total must equal hits+misses+inconclusive+panics");
}

/// Reads one counter sample out of a Prometheus text exposition.
fn prom_metric(text: &str, name: &str) -> u64 {
    text.lines()
        .find_map(|line| line.strip_prefix(&format!("{name} ")))
        .unwrap_or_else(|| panic!("prometheus sample {name} missing:\n{text}"))
        .trim()
        .parse()
        .expect("prometheus counter value")
}

#[test]
fn registry_accounting_reconciles_under_faults_in_both_renderings() {
    let _guard = fault::exclusive();
    let scratch = Scratch::new("registry");
    let server = start(&scratch);
    let addr = server.local_addr().to_string();

    // A fault mix: panics on every 2nd exploration, plus journal-append
    // kills degrading the cache — the registry must stay balanced through
    // both.
    let tests =
        [library::corr(), library::mp(), library::dekker(), library::iriw(), library::wrc()];
    fault::install("explore=panic@2,cache.journal.append=kill@3").expect("valid fault spec");
    quiet_panics(|| {
        for test in &tests {
            let (status, _) = post_check(&addr, &print_litmus(test));
            assert_eq!(status, 200);
        }
    });
    fault::reset();

    // The invariant, read through the registry's Prometheus rendering.
    let response = request(&addr, "GET", "/metrics?format=prometheus", None)
        .expect("prometheus scrape answers");
    assert_eq!(response.status, 200);
    assert!(
        response.header("content-type").is_some_and(|ct| ct.starts_with("text/plain")),
        "prometheus exposition is text/plain"
    );
    let text = &response.body;
    let checks = prom_metric(text, "serve_checks_total");
    let accounted = prom_metric(text, "serve_cache_hits")
        + prom_metric(text, "serve_cache_misses")
        + prom_metric(text, "serve_inconclusive_total")
        + prom_metric(text, "serve_panics_total");
    assert_eq!(checks, accounted, "registry counters must reconcile under faults");
    assert_eq!(checks, tests.len() as u64);

    // Both renderings are views of the same registry: they must agree.
    assert_eq!(metric(&addr, "checks_total"), checks);
    assert_eq!(metric(&addr, "panics_total"), prom_metric(text, "serve_panics_total"));
    // The degraded cache surfaced warnings through the unified warn path,
    // and the JSON document's additive v2 field reports them too.
    let warnings = prom_metric(text, "serve_warnings_total");
    assert!(warnings > 0, "journal degradation must count warnings");
    assert_eq!(metric(&addr, "warnings_total"), warnings);
    assert_metrics_reconcile(&addr);

    server.shutdown();
}

#[test]
fn service_answers_correctly_while_explorer_panics_fire() {
    let _guard = fault::exclusive();
    let scratch = Scratch::new("panics");
    let server = start(&scratch);
    let addr = server.local_addr().to_string();

    // Distinct tests (no cache hits), every 2nd exploration panics.
    let tests =
        [library::corr(), library::mp(), library::dekker(), library::iriw(), library::wrc()];
    let expected: Vec<bool> = tests
        .iter()
        .map(|t| {
            Engine::operational(ModelKind::Gam)
                .expect("operational engine")
                .check(t)
                .expect("in-process verdict")
                .is_allowed()
        })
        .collect();

    fault::install("explore=panic@2").expect("valid fault spec");
    let mut panicked = 0u64;
    let mut answered = 0u64;
    quiet_panics(|| {
        for (test, &want) in tests.iter().zip(&expected) {
            let (status, json) = post_check(&addr, &print_litmus(test));
            assert_eq!(status, 200, "a panicking checker is a typed row, not a failed request");
            let row = only_row(&json);
            if let Some(error) = row.get("error").and_then(Json::as_str) {
                assert!(
                    error.starts_with("the checker panicked"),
                    "typed panic error, got: {error}"
                );
                assert!(error.contains("injected fault: explore"), "payload survives: {error}");
                panicked += 1;
            } else {
                let verdict = row.get("verdict").and_then(Json::as_str).expect("verdict row");
                assert_eq!(verdict, if want { "allowed" } else { "forbidden" }, "{}", test.name());
                answered += 1;
            }
        }
    });
    fault::reset();

    // The @2 cadence splits the five requests deterministically.
    assert_eq!(panicked, 2);
    assert_eq!(answered, 3);
    assert_eq!(metric(&addr, "panics_total"), panicked);
    assert_metrics_reconcile(&addr);

    // Workers survived: with the plan disarmed every test answers, and the
    // previously panicked ones are now cache *misses* (panics cached nothing).
    for (test, &want) in tests.iter().zip(&expected) {
        let (_, json) = post_check(&addr, &print_litmus(test));
        let row = only_row(&json);
        let verdict = row.get("verdict").and_then(Json::as_str).expect("verdict after reset");
        assert_eq!(verdict, if want { "allowed" } else { "forbidden" });
    }
    assert_metrics_reconcile(&addr);

    server.shutdown();
}

#[test]
fn batch_counts_panics_per_test_and_finishes() {
    let _guard = fault::exclusive();
    let scratch = Scratch::new("batch");
    let server = start(&scratch);
    let addr = server.local_addr().to_string();

    let tests = [library::corr(), library::mp(), library::dekker(), library::iriw()];
    let body =
        Json::object([("tests", Json::array(tests.iter().map(|t| Json::Str(print_litmus(t)))))]);

    fault::install("explore=panic@2").expect("valid fault spec");
    let response = quiet_panics(|| {
        request(&addr, "POST", "/batch", Some(&body.to_string())).expect("batch answers")
    });
    fault::reset();

    assert_eq!(response.status, 200);
    let json = Json::parse(&response.body).expect("batch JSON");
    let mut panicked = 0u64;
    let mut answered = 0u64;
    for row in json.get("results").and_then(Json::as_array).expect("results") {
        let pair = &row.get("results").and_then(Json::as_array).expect("pair rows")[0];
        match pair.get("error").and_then(Json::as_str) {
            Some(error) => {
                assert!(error.starts_with("the checker panicked"), "typed error: {error}");
                panicked += 1;
            }
            None => {
                assert!(pair.get("verdict").is_some());
                answered += 1;
            }
        }
    }
    assert_eq!(panicked + answered, tests.len() as u64);
    assert!(panicked > 0, "the armed plan must catch some batch entries");
    assert!(answered > 0, "the plan must spare some batch entries");
    assert_eq!(metric(&addr, "panics_total"), panicked);
    assert_metrics_reconcile(&addr);

    server.shutdown();
}

#[test]
fn injected_write_delay_trips_the_client_timeout_not_a_hang() {
    let _guard = fault::exclusive();
    let scratch = Scratch::new("delay");
    let server = start(&scratch);
    let addr = server.local_addr().to_string();

    // The response path stalls 400 ms; a 100 ms client gives up with a
    // typed timeout error instead of hanging.
    fault::install("http.write=delay:400").expect("valid fault spec");
    let client = ClientConfig::with_timeout(Duration::from_millis(100));
    let err = request_with(&addr, "GET", "/healthz", None, &client)
        .expect_err("the slow response must trip the client read timeout");
    assert!(
        matches!(err.kind(), std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock),
        "typed timeout, got: {err}"
    );
    fault::reset();

    // The worker finished its delayed write into a dead socket and moved
    // on — the next request is served normally.
    let response = request(&addr, "GET", "/healthz", None).expect("service recovered");
    assert_eq!(response.status, 200);

    server.shutdown();
}

#[test]
fn killed_response_write_is_a_clean_close_and_the_worker_survives() {
    let _guard = fault::exclusive();
    let scratch = Scratch::new("write-kill");
    let server = start(&scratch);
    let addr = server.local_addr().to_string();

    // Every 2nd response write is torn down: the client sees a clean
    // error (connection closed / no bytes), never a hang or a 0-byte OK.
    fault::install("http.write=kill@2").expect("valid fault spec");
    let client = ClientConfig::with_timeout(Duration::from_secs(5));
    let mut failures = 0;
    let mut successes = 0;
    for _ in 0..4 {
        match request_with(&addr, "GET", "/healthz", None, &client) {
            Ok(response) => {
                assert_eq!(response.status, 200);
                successes += 1;
            }
            Err(_) => failures += 1,
        }
    }
    fault::reset();
    assert_eq!(failures, 2, "the @2 cadence tears down every other response");
    assert_eq!(successes, 2);

    let response = request(&addr, "GET", "/healthz", None).expect("workers survived");
    assert_eq!(response.status, 200);

    server.shutdown();
}

#[test]
fn slow_client_gets_408_and_is_counted() {
    let _guard = fault::exclusive();
    fault::reset();
    let scratch = Scratch::new("slow-client");
    let server = start_with(&scratch, Duration::from_millis(200));
    let addr = server.local_addr().to_string();

    // A half-open client: connects, sends an incomplete request, stalls.
    let mut stream = TcpStream::connect(&addr).expect("connects");
    stream.write_all(b"POST /check HTTP/1.1\r\n").expect("partial request");
    stream.flush().expect("flush");
    let mut response = String::new();
    stream.set_read_timeout(Some(Duration::from_secs(10))).expect("client timeout");
    stream.read_to_string(&mut response).expect("server answers before closing");
    assert!(response.starts_with("HTTP/1.1 408"), "expected 408, got: {response}");
    assert!(response.contains("timed out"), "typed reason in body: {response}");

    assert_eq!(metric(&addr, "timeouts_total"), 1);
    // The timed-out request never reached a checker: not a check.
    assert_eq!(metric(&addr, "checks_total"), 0);
    assert_metrics_reconcile(&addr);

    server.shutdown();
}

#[test]
fn cache_persist_crash_is_atomic_and_loses_no_committed_entries() {
    let _guard = fault::exclusive();
    fault::reset();
    let scratch = Scratch::new("persist");

    // Round 1, no faults: commit one entry to disk (shutdown compacts the
    // journal into the snapshot).
    let server = start(&scratch);
    let addr = server.local_addr().to_string();
    let (_, json) = post_check(&addr, &print_litmus(&library::corr()));
    assert_eq!(only_row(&json).get("cached"), Some(&Json::Bool(false)));
    server.shutdown();
    let committed = fs::read_to_string(&scratch.0).expect("cache persisted");

    // Round 2: every snapshot save dies between the tmp write and the
    // rename. Mutations still reach the write-ahead journal.
    fault::install("cache.persist=kill").expect("valid fault spec");
    let server = start(&scratch);
    let addr = server.local_addr().to_string();
    // The committed entry is still served warm.
    let (_, json) = post_check(&addr, &print_litmus(&library::corr()));
    assert_eq!(only_row(&json).get("cached"), Some(&Json::Bool(true)));
    // A new entry mutates the cache; the shutdown compaction is killed
    // mid-save, but the insert record is already journaled.
    let (_, json) = post_check(&addr, &print_litmus(&library::mp()));
    assert_eq!(only_row(&json).get("cached"), Some(&Json::Bool(false)));
    server.shutdown();
    fault::reset();

    // Snapshot atomicity: the real file is byte-identical to the committed
    // version (the kill hit after the tmp write, before the rename).
    let after_crash = fs::read_to_string(&scratch.0).expect("cache file still present");
    assert_eq!(after_crash, committed, "a killed save must never tear the committed file");
    assert!(scratch.tmp_sibling().exists(), "the orphaned tmp file marks the crash point");

    // The snapshot alone holds only the committed entry...
    let (cache, warning) = OutcomeCache::load(&scratch.0, 256);
    assert!(warning.is_none(), "reload must be clean: {warning:?}");
    assert_eq!(cache.len(), 1);
    // ...but snapshot + journal recovers both: the failed compaction cost
    // nothing that had been acknowledged.
    let (journaled, warnings) = JournaledCache::open(&scratch.0, 256, 4096);
    assert!(warnings.is_empty(), "journal recovery must be clean: {warnings:?}");
    assert_eq!(journaled.cache().len(), 2, "the journaled mp insert survives the killed save");

    // Round 3, faults off: the recovered service serves mp warm and the
    // shutdown compaction folds everything into the snapshot.
    let server = start(&scratch);
    let addr = server.local_addr().to_string();
    let (_, json) = post_check(&addr, &print_litmus(&library::mp()));
    assert_eq!(only_row(&json).get("cached"), Some(&Json::Bool(true)), "mp was journaled");
    server.shutdown();
    let (cache, warning) = OutcomeCache::load(&scratch.0, 256);
    assert!(warning.is_none());
    assert_eq!(cache.len(), 2, "both entries are committed once saves work again");
}

#[test]
fn torn_request_reads_are_typed_errors_and_workers_survive() {
    let _guard = fault::exclusive();
    let scratch = Scratch::new("read-kill");
    let server = start(&scratch);
    let addr = server.local_addr().to_string();

    // Every 2nd request read is torn down server-side before parsing; the
    // client sees a clean close (the 400 it writes may or may not arrive),
    // and the service keeps answering in between.
    fault::install("http.read=kill@2").expect("valid fault spec");
    let client = ClientConfig::with_timeout(Duration::from_secs(5));
    let mut outcomes = Vec::new();
    for _ in 0..4 {
        outcomes.push(request_with(&addr, "GET", "/healthz", None, &client).map(|r| r.status));
    }
    fault::reset();
    let healthy = outcomes.iter().filter(|o| matches!(o, Ok(200))).count();
    assert_eq!(healthy, 2, "the @2 cadence spares every other request: {outcomes:?}");

    let response = request(&addr, "GET", "/healthz", None).expect("workers survived");
    assert_eq!(response.status, 200);
    assert_metrics_reconcile(&addr);

    server.shutdown();
}
