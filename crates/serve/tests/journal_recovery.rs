//! Recovery properties of the write-ahead-journaled cache.
//!
//! The central property: damage the journal *anywhere* — truncate it at a
//! random byte, flip a random bit — and reopening recovers exactly the
//! cache described by the longest valid prefix of the records that were
//! written. Never a panic, never an entry that was not genuinely inserted
//! (a corrupted record cannot be served because it cannot pass its CRC).
//!
//! Alongside the property, two directed tests pin the fault-injection
//! crash windows: a kill mid-append (torn record, memory-only degradation)
//! and a kill between the compaction snapshot rename and the journal
//! truncation (stale journal replayed over a fresh snapshot — the window
//! the absolute-record design exists for).

use std::fs;
use std::path::PathBuf;

use gam_core::{fault, wal};
use gam_serve::journal::{journal_path_for, Record, JOURNAL_SCHEMA};
use gam_serve::{CacheEntry, JournaledCache, OutcomeCache};
use proptest::prelude::*;

struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        let mut path = std::env::temp_dir();
        path.push(format!("gam-journal-recovery-{}-{tag}.json", std::process::id()));
        let scratch = Scratch(path);
        scratch.clean();
        scratch
    }

    fn journal(&self) -> PathBuf {
        journal_path_for(&self.0)
    }

    fn clean(&self) {
        let _ = fs::remove_file(&self.0);
        let _ = fs::remove_file(self.journal());
        let name = self.0.file_name().expect("scratch has a name").to_string_lossy();
        let _ = fs::remove_file(self.0.with_file_name(format!("{name}.tmp")));
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        self.clean();
    }
}

/// A deterministic xorshift-style stream so each proptest case journals a
/// different operation mix without any system randomness.
fn mix(x: &mut u64) -> u64 {
    *x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1_442_695_040_888_963_407);
    *x
}

fn entry_from(x: u64) -> CacheEntry {
    CacheEntry {
        allowed: x & 1 == 0,
        wall_us: 10 + (x >> 8) % 1_000,
        states: 1 + (x >> 24) % 500,
        hits: 0,
    }
}

/// Journals a seeded mix of inserts (with evictions — capacity 4) and
/// lookups (hit records), then returns the journal's bytes.
fn build_journal(scratch: &Scratch, seed: u64) -> Vec<u8> {
    let (mut cache, warnings) = JournaledCache::open(&scratch.0, 4, 100_000);
    assert!(warnings.is_empty(), "fresh scratch must open silently: {warnings:?}");
    let mut x = seed.wrapping_mul(2_654_435_761).wrapping_add(99);
    let mut keys = Vec::new();
    for step in 0..12u64 {
        let draw = mix(&mut x);
        let key = format!("{draw:016x}/gam/operational");
        keys.push(key.clone());
        let warnings = cache.insert(key, entry_from(draw));
        assert!(warnings.is_empty(), "journal must stay attached: {warnings:?}");
        if step % 3 == 0 {
            let target = &keys[(mix(&mut x) as usize) % keys.len()];
            let (_, warning) = cache.lookup(target);
            assert!(warning.is_none(), "journal must stay attached: {warning:?}");
        }
    }
    assert!(cache.journaling());
    fs::read(scratch.journal()).expect("journal exists")
}

/// The reference replay: apply `frames` (which must all parse — they are a
/// prefix of genuinely written records) over an empty capacity-4 cache,
/// then re-enforce capacity cheapest-first, exactly as recovery does. The
/// enforcement matters: damage can land *between* an insert record and the
/// evict records that insert caused, so a valid prefix may describe a
/// momentarily over-capacity cache.
fn replay_reference(frames: &[Vec<u8>]) -> OutcomeCache {
    let mut cache = OutcomeCache::new(4);
    for frame in frames {
        Record::parse(frame)
            .expect("a CRC-valid prefix frame parses — it was written by us")
            .apply(&mut cache);
    }
    while cache.len() > 4 {
        let cheapest = cache
            .entries()
            .min_by_key(|(_, e)| e.cost())
            .map(|(k, _)| k.clone())
            .expect("over-capacity cache is non-empty");
        cache.remove(&cheapest);
    }
    cache
}

fn entries_of(cache: &OutcomeCache) -> Vec<(String, CacheEntry)> {
    cache.entries().map(|(k, e)| (k.clone(), e.clone())).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn damaged_journal_recovers_longest_valid_prefix(
        seed in 0u64..1_000_000,
        pos_permille in 0usize..1000,
        flip_bit in 0u8..9, // 0..8 = flip that bit; 8 = truncate instead
    ) {
        // The fault plan is process-global; serialize against the directed
        // fault tests in this binary.
        let _guard = fault::exclusive();
        let scratch = Scratch::new("prop");
        let pristine = build_journal(&scratch, seed);
        let header = format!("{JOURNAL_SCHEMA}\n");
        let original = wal::scan(&pristine[header.len()..]).frames;
        prop_assert!(original.len() >= 12, "build journaled at least the inserts");

        // Damage the journal at a position scaled into its actual length.
        let pos = pos_permille * pristine.len() / 1000;
        let damaged = if flip_bit == 8 {
            pristine[..pos].to_vec()
        } else {
            let mut bytes = pristine.clone();
            bytes[pos] ^= 1 << flip_bit;
            bytes
        };
        fs::write(scratch.journal(), &damaged).expect("write damaged journal");

        // Reopening must not panic, must not error, and must land on the
        // replay of exactly the longest valid record prefix.
        let (recovered, _warnings) = JournaledCache::open(&scratch.0, 4, 100_000);
        let expected_frames = if damaged.starts_with(header.as_bytes()) {
            wal::scan(&damaged[header.len()..]).frames
        } else {
            Vec::new() // damaged magic: the file is abandoned entirely
        };
        // Damage can only ever shorten the record sequence, never invent or
        // reorder records.
        prop_assert!(expected_frames.len() <= original.len());
        prop_assert_eq!(&original[..expected_frames.len()], &expected_frames[..]);

        let reference = replay_reference(&expected_frames);
        prop_assert_eq!(entries_of(recovered.cache()), entries_of(&reference));
        prop_assert_eq!(recovered.stats().replayed, expected_frames.len() as u64);
    }
}

#[test]
fn append_kill_leaves_torn_record_and_degrades_to_memory_only() {
    let _guard = fault::exclusive();
    let scratch = Scratch::new("append-kill");
    let (mut cache, warnings) = JournaledCache::open(&scratch.0, 64, 100_000);
    assert!(warnings.is_empty());

    fault::install("cache.journal.append=kill@3").expect("valid plan");
    // Appends 1 and 2 land; append 3 dies mid-write(2) and detaches the
    // journal; appends 4 and 5 are memory-only.
    let mut degradations = Vec::new();
    for i in 0..5u64 {
        let warnings = cache.insert(
            format!("{i:016x}/gam/operational"),
            CacheEntry { allowed: true, wall_us: 100 + i, states: 10, hits: 0 },
        );
        degradations.extend(warnings);
    }
    fault::reset();

    assert!(!cache.journaling(), "a failed append must detach the journal");
    assert_eq!(degradations.len(), 1, "exactly one degradation warning: {degradations:?}");
    assert!(degradations[0].contains("memory-only"), "warning names the mode: {degradations:?}");
    // The running process keeps serving from memory regardless.
    assert_eq!(cache.cache().len(), 5);

    // A restart recovers the two committed records; the torn third is
    // dropped as a torn tail, with a warning saying so.
    let (recovered, warnings) = JournaledCache::open(&scratch.0, 64, 100_000);
    assert_eq!(recovered.cache().len(), 2, "committed prefix only");
    assert!(recovered.cache().get("0000000000000000/gam/operational").is_some());
    assert!(recovered.cache().get("0000000000000001/gam/operational").is_some());
    assert!(
        warnings.iter().any(|w| w.contains("torn")),
        "recovery must report the torn tail: {warnings:?}"
    );
}

#[test]
fn compaction_kill_between_rename_and_truncate_converges_on_restart() {
    let _guard = fault::exclusive();
    let scratch = Scratch::new("compact-kill");
    let (mut cache, warnings) = JournaledCache::open(&scratch.0, 64, 100_000);
    assert!(warnings.is_empty());
    for i in 0..6u64 {
        let warnings = cache.insert(
            format!("{i:016x}/gam/operational"),
            CacheEntry { allowed: i % 2 == 0, wall_us: 50 + i, states: 5 + i, hits: 0 },
        );
        assert!(warnings.is_empty());
    }
    let before = entries_of(cache.cache());

    // Die in the crash window: snapshot renamed, journal not yet truncated.
    fault::install("cache.compact=kill").expect("valid plan");
    let err = cache.compact().expect_err("injected kill surfaces");
    assert_eq!(err.kind(), std::io::ErrorKind::Interrupted);
    fault::reset();
    drop(cache);

    // The snapshot is fresh AND the journal still holds every record: the
    // restart replays a stale journal over an up-to-date snapshot. Absolute
    // records make that convergent — the result is exactly the
    // pre-compaction cache, with nothing doubled and nothing lost.
    let (snapshot_only, warning) = OutcomeCache::load(&scratch.0, 64);
    assert!(warning.is_none());
    assert_eq!(entries_of(&snapshot_only), before, "snapshot landed before the kill");
    let (recovered, warnings) = JournaledCache::open(&scratch.0, 64, 100_000);
    assert!(warnings.is_empty(), "nothing was torn: {warnings:?}");
    assert_eq!(recovered.stats().replayed, 6, "stale journal replays in full");
    assert_eq!(entries_of(recovered.cache()), before);
}
