//! Persistence tests for the outcome cache: round trips preserve entries
//! (including hit counters), damaged files degrade to an empty cache with a
//! warning instead of a panic, and eviction on reload respects recorded
//! cost.

use std::fs;
use std::path::PathBuf;

use gam_serve::{CacheEntry, OutcomeCache, CACHE_SCHEMA};

/// A scratch path unique to this test process; removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        let mut path = std::env::temp_dir();
        path.push(format!("gam-serve-test-{}-{tag}.json", std::process::id()));
        let _ = fs::remove_file(&path);
        Scratch(path)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.0);
        let mut tmp = self.0.clone();
        if let Some(name) = tmp.file_name().map(|n| n.to_string_lossy().into_owned()) {
            tmp.set_file_name(format!("{name}.tmp"));
            let _ = fs::remove_file(&tmp);
        }
    }
}

fn entry(allowed: bool, wall_us: u64, states: u64, hits: u64) -> CacheEntry {
    CacheEntry { allowed, wall_us, states, hits }
}

#[test]
fn save_then_load_round_trips_every_entry() {
    let scratch = Scratch::new("roundtrip");
    let mut cache = OutcomeCache::new(16);
    cache.insert(OutcomeCache::key("aaaa", "gam", "operational"), entry(true, 1234, 567, 0));
    cache.insert(OutcomeCache::key("bbbb", "sc", "axiomatic"), entry(false, 89, 0, 3));
    // Serve one entry so its hit counter is non-zero on disk.
    let served = cache.lookup(&OutcomeCache::key("aaaa", "gam", "operational")).unwrap();
    assert_eq!(served.hits, 1);
    cache.save(&scratch.0).unwrap();

    let (mut reloaded, warning) = OutcomeCache::load(&scratch.0, 16);
    assert!(warning.is_none(), "clean reload must not warn: {warning:?}");
    assert_eq!(reloaded.len(), 2);
    let a = reloaded.lookup(&OutcomeCache::key("aaaa", "gam", "operational")).unwrap();
    // `lookup` bumps, so the persisted counter was 1.
    assert_eq!((a.allowed, a.wall_us, a.states, a.hits), (true, 1234, 567, 2));
    let b = reloaded.lookup(&OutcomeCache::key("bbbb", "sc", "axiomatic")).unwrap();
    assert_eq!((b.allowed, b.wall_us, b.states, b.hits), (false, 89, 0, 4));
}

#[test]
fn missing_file_is_a_silent_cold_start() {
    let scratch = Scratch::new("missing");
    let (cache, warning) = OutcomeCache::load(&scratch.0, 8);
    assert!(cache.is_empty());
    assert!(warning.is_none());
}

#[test]
fn truncated_file_loads_empty_with_warning() {
    let scratch = Scratch::new("truncated");
    let mut cache = OutcomeCache::new(8);
    cache.insert("k".into(), entry(true, 10, 10, 0));
    cache.save(&scratch.0).unwrap();
    let full = fs::read_to_string(&scratch.0).unwrap();
    fs::write(&scratch.0, &full[..full.len() / 2]).unwrap();

    let (reloaded, warning) = OutcomeCache::load(&scratch.0, 8);
    assert!(reloaded.is_empty());
    let warning = warning.expect("truncated cache must warn");
    assert!(warning.contains("corrupt"), "unexpected warning: {warning}");
}

#[test]
fn garbage_file_loads_empty_with_warning() {
    let scratch = Scratch::new("garbage");
    fs::write(&scratch.0, "this is not json {{{{").unwrap();
    let (reloaded, warning) = OutcomeCache::load(&scratch.0, 8);
    assert!(reloaded.is_empty());
    assert!(warning.is_some());
}

#[test]
fn unknown_schema_loads_empty_with_warning() {
    let scratch = Scratch::new("schema");
    fs::write(&scratch.0, r#"{"schema":"gam-serve-cache/v999","entries":[]}"#).unwrap();
    let (reloaded, warning) = OutcomeCache::load(&scratch.0, 8);
    assert!(reloaded.is_empty());
    let warning = warning.expect("wrong schema must warn");
    assert!(warning.contains(CACHE_SCHEMA), "warning should name the wanted schema: {warning}");
}

#[test]
fn malformed_entries_are_skipped_not_fatal() {
    let scratch = Scratch::new("malformed");
    fs::write(
        &scratch.0,
        format!(
            r#"{{"schema":"{CACHE_SCHEMA}","entries":[
                {{"key":"good/gam/operational","allowed":true,"wall_us":5,"states":7,"hits":0}},
                {{"key":"bad-no-verdict","wall_us":5}},
                42
            ]}}"#
        ),
    )
    .unwrap();
    let (mut reloaded, warning) = OutcomeCache::load(&scratch.0, 8);
    assert_eq!(reloaded.len(), 1);
    assert!(reloaded.lookup("good/gam/operational").is_some());
    let warning = warning.expect("skipped entries must warn");
    assert!(warning.contains("2"), "warning should count the skips: {warning}");
}

#[test]
fn reload_into_smaller_capacity_evicts_cheapest_first() {
    let scratch = Scratch::new("shrink");
    let mut cache = OutcomeCache::new(8);
    cache.insert("cheap".into(), entry(true, 2, 2, 0));
    cache.insert("medium".into(), entry(true, 100, 100, 0));
    cache.insert("expensive".into(), entry(true, 10_000, 10_000, 0));
    cache.save(&scratch.0).unwrap();

    // Reloading into a capacity of 1 must keep only the costliest entry.
    let (mut reloaded, _) = OutcomeCache::load(&scratch.0, 1);
    assert_eq!(reloaded.len(), 1);
    assert!(reloaded.lookup("expensive").is_some());
    assert!(reloaded.lookup("cheap").is_none());
    assert!(reloaded.lookup("medium").is_none());
    assert!(reloaded.evictions() >= 2);
}

#[test]
fn atomic_save_leaves_no_temp_file_behind() {
    let scratch = Scratch::new("atomic");
    let mut cache = OutcomeCache::new(4);
    cache.insert("k".into(), entry(true, 1, 1, 0));
    cache.save(&scratch.0).unwrap();
    let mut tmp = scratch.0.clone();
    let name = tmp.file_name().unwrap().to_string_lossy().into_owned();
    tmp.set_file_name(format!("{name}.tmp"));
    assert!(!tmp.exists(), "temporary file must be renamed away");
    assert!(scratch.0.exists());
}
