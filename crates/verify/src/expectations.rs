//! Expected verdicts of every model on every litmus test in the library.
//!
//! The entries for the paper's own figures restate the verdicts printed in
//! the paper (Figures 2, 5, 8, 13 and 14); the entries for the classical
//! tests follow from the models' definitions (and are cross-checked against
//! both the axiomatic checker and the operational machines by this crate's
//! tests and by the `tests/paper_litmus.rs` integration suite).

use gam_core::ModelKind;

/// The expected verdict of every model for one litmus test's condition of
/// interest (`true` = allowed, `false` = forbidden).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Expectation {
    /// Litmus-test name (matches `gam_isa::litmus::library` names).
    pub test: &'static str,
    /// Verdict under SC.
    pub sc: bool,
    /// Verdict under TSO.
    pub tso: bool,
    /// Verdict under GAM.
    pub gam: bool,
    /// Verdict under GAM0.
    pub gam0: bool,
    /// Verdict under GAM with the ARM same-address rule.
    pub gam_arm: bool,
    /// Where the expectation comes from (paper figure or classical argument).
    pub source: &'static str,
}

impl Expectation {
    /// The expected verdict for a given model.
    #[must_use]
    pub fn allowed(&self, model: ModelKind) -> bool {
        match model {
            ModelKind::Sc => self.sc,
            ModelKind::Tso => self.tso,
            ModelKind::Gam => self.gam,
            ModelKind::Gam0 => self.gam0,
            ModelKind::GamArm => self.gam_arm,
        }
    }
}

macro_rules! expectation {
    ($test:literal, $sc:expr, $tso:expr, $gam:expr, $gam0:expr, $arm:expr, $source:literal) => {
        Expectation {
            test: $test,
            sc: $sc,
            tso: $tso,
            gam: $gam,
            gam0: $gam0,
            gam_arm: $arm,
            source: $source,
        }
    };
}

/// The full expectation table (one row per library litmus test).
#[must_use]
pub fn paper_expectations() -> Vec<Expectation> {
    const A: bool = true; // allowed
    const F: bool = false; // forbidden
    vec![
        // ------------------------------- paper figures -------------------------------
        expectation!("dekker", F, A, A, A, A, "Figure 2: SC forbids r1=r2=0; store->load relaxation allows it"),
        expectation!("oota", F, F, F, F, F, "Figure 5: out-of-thin-air must be forbidden by every model"),
        expectation!("store-forwarding", F, F, F, F, F, "Figure 8: a load may not skip the youngest older same-address store"),
        expectation!("mp+addr", F, F, F, F, F, "Figure 13a: address dependency keeps the consumer loads ordered"),
        expectation!("mp+artificial-addr", F, F, F, F, F, "Figure 13b: artificial (syntactic) dependencies are honoured"),
        expectation!("mp+mem-dep", F, F, F, F, F, "Figure 13c: dependency chained through memory (constraint SAStLd)"),
        expectation!("mp+prefetch", F, F, F, F, F, "Figure 13d: no load-load forwarding, the dependent load sees the up-to-date value"),
        expectation!("corr", F, F, F, A, F, "Figure 14a: per-location SC (SALdLd / SALdLdARM) forbids; GAM0 and RMO allow"),
        expectation!("corr+intervening-store", F, F, A, A, F, "Figure 14b: the intervening same-address store lets GAM reorder; SALdLdARM orders the loads because they read different stores"),
        expectation!("rsw", F, F, F, A, A, "Figure 14c: ARM allows (both middle loads read the same store), GAM forbids"),
        expectation!("rnsw", F, F, F, A, F, "Figure 14d: the extra store makes the middle loads read different stores, so ARM also forbids"),
        // ------------------------------ classical tests ------------------------------
        expectation!("dekker+fence-sl", F, F, F, F, F, "FenceSL restores store->load ordering on both sides"),
        expectation!("mp", F, F, A, A, A, "unfenced message passing is only safe on SC/TSO"),
        expectation!("mp+fences", F, F, F, F, F, "FenceSS + FenceLL restore the producer and consumer orderings"),
        expectation!("mp+fence-ss", F, F, A, A, A, "without consumer ordering the loads may still be reordered"),
        expectation!("lb", F, F, A, A, A, "load buffering: load->store reordering is allowed by the weak models"),
        expectation!("lb+data", F, F, F, F, F, "data dependencies turn load buffering into out-of-thin-air"),
        expectation!("lb+fence-ls", F, F, F, F, F, "FenceLS restores the load->store ordering"),
        expectation!("iriw", F, F, A, A, A, "unfenced readers may disagree when load->load ordering is relaxed"),
        expectation!("iriw+fence-ll", F, F, F, F, F, "with FenceLL on the readers, atomic memory forbids the disagreement"),
        expectation!("wrc", F, F, F, F, F, "data + address dependencies preserve write-to-read causality"),
        expectation!("wrc+no-dep", F, F, A, A, A, "without reader dependencies the final load may be reordered"),
        expectation!("corw", F, F, F, F, F, "a load may not observe a program-order-younger store"),
        expectation!("cowr", F, F, F, F, F, "a load after a same-address store may not observe an older value"),
        expectation!("coww", F, F, F, F, F, "same-address stores commit in program order (constraint SAMemSt)"),
        expectation!("2+2w", F, F, A, A, A, "store->store relaxation lets both first stores lose the coherence race"),
        expectation!("2+2w+fence-ss", F, F, F, F, F, "FenceSS restores the store->store ordering"),
        expectation!("s", F, F, A, A, A, "load->store relaxation on the consumer allows the S shape"),
        expectation!("r", F, A, A, A, A, "store->load relaxation (already in TSO) allows the R shape"),
    ]
}

/// Looks up the expectation for a test by name.
#[must_use]
pub fn expectation_for(test: &str) -> Option<Expectation> {
    paper_expectations().into_iter().find(|e| e.test == test)
}

/// An expectation row with owned strings — the form produced by parsing an
/// `expectations.txt` file from a litmus corpus on disk (the static
/// [`Expectation`] table stays `&'static str` based).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OwnedExpectation {
    /// Litmus-test name.
    pub test: String,
    /// Verdict under SC.
    pub sc: bool,
    /// Verdict under TSO.
    pub tso: bool,
    /// Verdict under GAM.
    pub gam: bool,
    /// Verdict under GAM0.
    pub gam0: bool,
    /// Verdict under GAM with the ARM same-address rule.
    pub gam_arm: bool,
    /// Where the expectation comes from (free text, may be empty).
    pub source: String,
}

impl OwnedExpectation {
    /// The expected verdict for a given model.
    #[must_use]
    pub fn allowed(&self, model: ModelKind) -> bool {
        match model {
            ModelKind::Sc => self.sc,
            ModelKind::Tso => self.tso,
            ModelKind::Gam => self.gam,
            ModelKind::Gam0 => self.gam0,
            ModelKind::GamArm => self.gam_arm,
        }
    }
}

impl From<&Expectation> for OwnedExpectation {
    fn from(e: &Expectation) -> Self {
        OwnedExpectation {
            test: e.test.to_string(),
            sc: e.sc,
            tso: e.tso,
            gam: e.gam,
            gam0: e.gam0,
            gam_arm: e.gam_arm,
            source: e.source.to_string(),
        }
    }
}

/// A parse failure in an expectations file, with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExpectationParseError {
    /// 1-based line the error occurred on.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ExpectationParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "expectations line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ExpectationParseError {}

/// The model column order of the expectations text format.
const TEXT_COLUMNS: [ModelKind; 5] =
    [ModelKind::Sc, ModelKind::Tso, ModelKind::Gam, ModelKind::Gam0, ModelKind::GamArm];

/// Renders expectation rows as the `expectations.txt` corpus format:
/// one line per test — the test name, five `allowed`/`forbidden` columns
/// (SC TSO GAM GAM0 GAM-ARM), and the source as a trailing `#` comment.
/// [`parse_expectations`] reads this format back.
#[must_use]
pub fn render_expectations(rows: &[OwnedExpectation]) -> String {
    use std::fmt::Write as _;
    let name_width = rows.iter().map(|r| r.test.len()).max().unwrap_or(4).max("test".len());
    let mut out = String::new();
    let _ = writeln!(out, "# Expected verdicts per model; `allowed` / `forbidden` (or A / F).");
    let _ =
        writeln!(out, "# {:<name_width$} SC        TSO       GAM       GAM0      GAM-ARM", "test");
    for row in rows {
        let _ = write!(out, "{:<width$}", row.test, width = name_width + 2);
        for model in TEXT_COLUMNS {
            let verdict = if row.allowed(model) { "allowed" } else { "forbidden" };
            let _ = write!(out, "{verdict:<10}");
        }
        if row.source.is_empty() {
            let _ = writeln!(out);
        } else {
            let _ = writeln!(out, "# {}", row.source);
        }
    }
    out
}

/// Parses the `expectations.txt` corpus format rendered by
/// [`render_expectations`]: blank lines and full-line `#` comments are
/// skipped; each remaining line is `test SC TSO GAM GAM0 GAM-ARM` with the
/// verdicts spelled `allowed`/`forbidden` (or abbreviated `A`/`F`,
/// case-insensitive) and an optional trailing `# source` comment.
///
/// # Errors
///
/// Returns an [`ExpectationParseError`] carrying the 1-based line number on
/// a malformed row, an unknown verdict word, or a duplicated test name.
pub fn parse_expectations(text: &str) -> Result<Vec<OwnedExpectation>, ExpectationParseError> {
    let mut rows: Vec<OwnedExpectation> = Vec::new();
    for (index, raw_line) in text.lines().enumerate() {
        let line = index + 1;
        let error = |message: String| ExpectationParseError { line, message };
        let (body, source) = match raw_line.find('#') {
            Some(at) => (&raw_line[..at], raw_line[at + 1..].trim()),
            None => (raw_line, ""),
        };
        let mut fields = body.split_whitespace();
        let Some(test) = fields.next() else { continue };
        let mut verdicts = [false; 5];
        for (column, slot) in verdicts.iter_mut().enumerate() {
            let word = fields.next().ok_or_else(|| {
                error(format!(
                    "expected 5 verdict columns (SC TSO GAM GAM0 GAM-ARM), found {column}"
                ))
            })?;
            *slot = match word.to_ascii_lowercase().as_str() {
                "allowed" | "a" => true,
                "forbidden" | "f" => false,
                other => return Err(error(format!("unknown verdict `{other}`"))),
            };
        }
        if let Some(extra) = fields.next() {
            return Err(error(format!("unexpected trailing field `{extra}`")));
        }
        if rows.iter().any(|row| row.test == test) {
            return Err(error(format!("duplicate expectation for test `{test}`")));
        }
        rows.push(OwnedExpectation {
            test: test.to_string(),
            sc: verdicts[0],
            tso: verdicts[1],
            gam: verdicts[2],
            gam0: verdicts[3],
            gam_arm: verdicts[4],
            source: source.to_string(),
        });
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gam_isa::litmus::library;

    #[test]
    fn every_library_test_has_an_expectation() {
        let table = paper_expectations();
        for test in library::all_tests() {
            assert!(
                table.iter().any(|e| e.test == test.name()),
                "missing expectation for `{}`",
                test.name()
            );
        }
    }

    #[test]
    fn every_expectation_names_a_library_test() {
        for expectation in paper_expectations() {
            assert!(
                library::by_name(expectation.test).is_some(),
                "expectation `{}` does not match any library test",
                expectation.test
            );
        }
    }

    #[test]
    fn monotonicity_sc_is_strongest() {
        // Anything allowed by SC must be allowed by every weaker model, and
        // anything allowed by TSO must be allowed by the GAM family.
        for e in paper_expectations() {
            if e.sc {
                assert!(e.tso && e.gam && e.gam0 && e.gam_arm, "{}", e.test);
            }
            if e.tso {
                assert!(e.gam && e.gam0 && e.gam_arm, "{}", e.test);
            }
            // GAM is stronger than GAM0 (it only adds constraint SALdLd).
            if e.gam {
                assert!(e.gam0, "{}", e.test);
            }
            // GAM-ARM is weaker than GAM (SALdLdARM relaxes SALdLd) and
            // stronger than GAM0.
            if e.gam {
                assert!(e.gam0, "{}", e.test);
            }
            if e.gam_arm {
                assert!(e.gam0, "{}", e.test);
            }
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(expectation_for("dekker").is_some());
        assert!(expectation_for("rsw").unwrap().gam_arm);
        assert!(!expectation_for("rnsw").unwrap().gam_arm);
        assert!(expectation_for("not-a-test").is_none());
    }

    #[test]
    fn text_format_round_trips_the_paper_table() {
        let rows: Vec<OwnedExpectation> =
            paper_expectations().iter().map(OwnedExpectation::from).collect();
        let text = render_expectations(&rows);
        let parsed = parse_expectations(&text).expect("rendered table parses");
        assert_eq!(parsed, rows);
    }

    #[test]
    fn text_format_accepts_abbreviations_and_comments() {
        let text = "# header comment\n\n  dekker F a A allowed Forbidden # Figure 2\n";
        let rows = parse_expectations(text).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].test, "dekker");
        assert!(!rows[0].sc && rows[0].tso && rows[0].gam && rows[0].gam0 && !rows[0].gam_arm);
        assert_eq!(rows[0].source, "Figure 2");
    }

    #[test]
    fn text_format_reports_line_numbers_on_errors() {
        for (text, line, needle) in [
            ("dekker A A A\n", 1, "5 verdict columns"),
            ("\ndekker A A A A maybe\n", 2, "unknown verdict"),
            ("dekker A A A A A extra\n", 1, "trailing field"),
            ("dekker A A A A A\ndekker F F F F F\n", 2, "duplicate"),
        ] {
            let err = parse_expectations(text).unwrap_err();
            assert_eq!(err.line, line, "{text:?}");
            assert!(err.to_string().contains(needle), "{text:?}: {err}");
        }
    }

    #[test]
    fn allowed_accessor_matches_fields() {
        let e = expectation_for("corr").unwrap();
        assert!(!e.allowed(ModelKind::Sc));
        assert!(!e.allowed(ModelKind::Gam));
        assert!(e.allowed(ModelKind::Gam0));
        assert!(!e.allowed(ModelKind::GamArm));
    }
}
