//! Expected verdicts of every model on every litmus test in the library.
//!
//! The entries for the paper's own figures restate the verdicts printed in
//! the paper (Figures 2, 5, 8, 13 and 14); the entries for the classical
//! tests follow from the models' definitions (and are cross-checked against
//! both the axiomatic checker and the operational machines by this crate's
//! tests and by the `tests/paper_litmus.rs` integration suite).

use gam_core::ModelKind;

/// The expected verdict of every model for one litmus test's condition of
/// interest (`true` = allowed, `false` = forbidden).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Expectation {
    /// Litmus-test name (matches `gam_isa::litmus::library` names).
    pub test: &'static str,
    /// Verdict under SC.
    pub sc: bool,
    /// Verdict under TSO.
    pub tso: bool,
    /// Verdict under GAM.
    pub gam: bool,
    /// Verdict under GAM0.
    pub gam0: bool,
    /// Verdict under GAM with the ARM same-address rule.
    pub gam_arm: bool,
    /// Where the expectation comes from (paper figure or classical argument).
    pub source: &'static str,
}

impl Expectation {
    /// The expected verdict for a given model.
    #[must_use]
    pub fn allowed(&self, model: ModelKind) -> bool {
        match model {
            ModelKind::Sc => self.sc,
            ModelKind::Tso => self.tso,
            ModelKind::Gam => self.gam,
            ModelKind::Gam0 => self.gam0,
            ModelKind::GamArm => self.gam_arm,
        }
    }
}

macro_rules! expectation {
    ($test:literal, $sc:expr, $tso:expr, $gam:expr, $gam0:expr, $arm:expr, $source:literal) => {
        Expectation {
            test: $test,
            sc: $sc,
            tso: $tso,
            gam: $gam,
            gam0: $gam0,
            gam_arm: $arm,
            source: $source,
        }
    };
}

/// The full expectation table (one row per library litmus test).
#[must_use]
pub fn paper_expectations() -> Vec<Expectation> {
    const A: bool = true; // allowed
    const F: bool = false; // forbidden
    vec![
        // ------------------------------- paper figures -------------------------------
        expectation!("dekker", F, A, A, A, A, "Figure 2: SC forbids r1=r2=0; store->load relaxation allows it"),
        expectation!("oota", F, F, F, F, F, "Figure 5: out-of-thin-air must be forbidden by every model"),
        expectation!("store-forwarding", F, F, F, F, F, "Figure 8: a load may not skip the youngest older same-address store"),
        expectation!("mp+addr", F, F, F, F, F, "Figure 13a: address dependency keeps the consumer loads ordered"),
        expectation!("mp+artificial-addr", F, F, F, F, F, "Figure 13b: artificial (syntactic) dependencies are honoured"),
        expectation!("mp+mem-dep", F, F, F, F, F, "Figure 13c: dependency chained through memory (constraint SAStLd)"),
        expectation!("mp+prefetch", F, F, F, F, F, "Figure 13d: no load-load forwarding, the dependent load sees the up-to-date value"),
        expectation!("corr", F, F, F, A, F, "Figure 14a: per-location SC (SALdLd / SALdLdARM) forbids; GAM0 and RMO allow"),
        expectation!("corr+intervening-store", F, F, A, A, F, "Figure 14b: the intervening same-address store lets GAM reorder; SALdLdARM orders the loads because they read different stores"),
        expectation!("rsw", F, F, F, A, A, "Figure 14c: ARM allows (both middle loads read the same store), GAM forbids"),
        expectation!("rnsw", F, F, F, A, F, "Figure 14d: the extra store makes the middle loads read different stores, so ARM also forbids"),
        // ------------------------------ classical tests ------------------------------
        expectation!("dekker+fence-sl", F, F, F, F, F, "FenceSL restores store->load ordering on both sides"),
        expectation!("mp", F, F, A, A, A, "unfenced message passing is only safe on SC/TSO"),
        expectation!("mp+fences", F, F, F, F, F, "FenceSS + FenceLL restore the producer and consumer orderings"),
        expectation!("mp+fence-ss", F, F, A, A, A, "without consumer ordering the loads may still be reordered"),
        expectation!("lb", F, F, A, A, A, "load buffering: load->store reordering is allowed by the weak models"),
        expectation!("lb+data", F, F, F, F, F, "data dependencies turn load buffering into out-of-thin-air"),
        expectation!("lb+fence-ls", F, F, F, F, F, "FenceLS restores the load->store ordering"),
        expectation!("iriw", F, F, A, A, A, "unfenced readers may disagree when load->load ordering is relaxed"),
        expectation!("iriw+fence-ll", F, F, F, F, F, "with FenceLL on the readers, atomic memory forbids the disagreement"),
        expectation!("wrc", F, F, F, F, F, "data + address dependencies preserve write-to-read causality"),
        expectation!("wrc+no-dep", F, F, A, A, A, "without reader dependencies the final load may be reordered"),
        expectation!("corw", F, F, F, F, F, "a load may not observe a program-order-younger store"),
        expectation!("cowr", F, F, F, F, F, "a load after a same-address store may not observe an older value"),
        expectation!("coww", F, F, F, F, F, "same-address stores commit in program order (constraint SAMemSt)"),
        expectation!("2+2w", F, F, A, A, A, "store->store relaxation lets both first stores lose the coherence race"),
        expectation!("2+2w+fence-ss", F, F, F, F, F, "FenceSS restores the store->store ordering"),
        expectation!("s", F, F, A, A, A, "load->store relaxation on the consumer allows the S shape"),
        expectation!("r", F, A, A, A, A, "store->load relaxation (already in TSO) allows the R shape"),
    ]
}

/// Looks up the expectation for a test by name.
#[must_use]
pub fn expectation_for(test: &str) -> Option<Expectation> {
    paper_expectations().into_iter().find(|e| e.test == test)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gam_isa::litmus::library;

    #[test]
    fn every_library_test_has_an_expectation() {
        let table = paper_expectations();
        for test in library::all_tests() {
            assert!(
                table.iter().any(|e| e.test == test.name()),
                "missing expectation for `{}`",
                test.name()
            );
        }
    }

    #[test]
    fn every_expectation_names_a_library_test() {
        for expectation in paper_expectations() {
            assert!(
                library::by_name(expectation.test).is_some(),
                "expectation `{}` does not match any library test",
                expectation.test
            );
        }
    }

    #[test]
    fn monotonicity_sc_is_strongest() {
        // Anything allowed by SC must be allowed by every weaker model, and
        // anything allowed by TSO must be allowed by the GAM family.
        for e in paper_expectations() {
            if e.sc {
                assert!(e.tso && e.gam && e.gam0 && e.gam_arm, "{}", e.test);
            }
            if e.tso {
                assert!(e.gam && e.gam0 && e.gam_arm, "{}", e.test);
            }
            // GAM is stronger than GAM0 (it only adds constraint SALdLd).
            if e.gam {
                assert!(e.gam0, "{}", e.test);
            }
            // GAM-ARM is weaker than GAM (SALdLdARM relaxes SALdLd) and
            // stronger than GAM0.
            if e.gam {
                assert!(e.gam0, "{}", e.test);
            }
            if e.gam_arm {
                assert!(e.gam0, "{}", e.test);
            }
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(expectation_for("dekker").is_some());
        assert!(expectation_for("rsw").unwrap().gam_arm);
        assert!(!expectation_for("rnsw").unwrap().gam_arm);
        assert!(expectation_for("not-a-test").is_none());
    }

    #[test]
    fn allowed_accessor_matches_fields() {
        let e = expectation_for("corr").unwrap();
        assert!(!e.allowed(ModelKind::Sc));
        assert!(!e.allowed(ModelKind::Gam));
        assert!(e.allowed(ModelKind::Gam0));
        assert!(!e.allowed(ModelKind::GamArm));
    }
}
