//! # gam-verify
//!
//! The verification layer of the GAM reproduction. It ties the litmus-test
//! library, the axiomatic checker and the operational machines together:
//!
//! * [`expectations`] — the paper's (and the classical literature's) expected
//!   verdict of every model on every litmus test in the library, as a
//!   machine-readable table;
//! * [`compare`] — runs every model over tests through the parallel
//!   [`gam_engine::Engine`] facade and builds a comparison matrix, flagging
//!   any disagreement with the expectations;
//! * [`equivalence`] — cross-checks the axiomatic and operational definitions
//!   of each model by driving *both* backends through the same
//!   [`gam_engine::Checker`] trait and comparing their complete
//!   allowed-outcome sets on every litmus test (the machine-checkable
//!   counterpart of the paper's equivalence proof for GAM).
//!
//! Both modules are thin layers over `gam-engine`; they no longer talk to the
//! backend crates' checker types directly.
//!
//! # Example
//!
//! ```
//! use gam_verify::expectations;
//! use gam_core::ModelKind;
//!
//! let table = expectations::paper_expectations();
//! let dekker = table.iter().find(|e| e.test == "dekker").unwrap();
//! assert!(!dekker.allowed(ModelKind::Sc));
//! assert!(dekker.allowed(ModelKind::Gam));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod compare;
pub mod equivalence;
pub mod expectations;

pub use compare::{ComparisonMatrix, ComparisonRow};
pub use equivalence::{EquivalenceReport, EquivalenceResult};
pub use expectations::{
    parse_expectations, render_expectations, Expectation, ExpectationParseError, OwnedExpectation,
};
