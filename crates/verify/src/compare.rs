//! Model-comparison matrices.
//!
//! A [`ComparisonMatrix`] records, for a set of litmus tests, the verdict of
//! every model in the catalogue as computed by the axiomatic checker, and
//! whether each verdict matches the expectation table. Its `Display`
//! implementation prints the same kind of table the paper uses to discuss its
//! litmus tests, which the `litmus-tables` benchmark binary reuses.

use std::fmt;

use gam_axiomatic::{AxiomaticChecker, CheckError, Verdict};
use gam_core::{model, ModelKind};
use gam_isa::litmus::LitmusTest;

use crate::expectations;

/// One row of the comparison matrix: a litmus test and the verdict of every model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComparisonRow {
    /// Litmus-test name.
    pub test: String,
    /// `(model, verdict)` pairs in catalogue order.
    pub verdicts: Vec<(ModelKind, Verdict)>,
    /// Models whose verdict disagrees with the expectation table (empty when
    /// everything matches or no expectation exists).
    pub mismatches: Vec<ModelKind>,
}

impl ComparisonRow {
    /// The verdict of a given model in this row.
    #[must_use]
    pub fn verdict(&self, model: ModelKind) -> Option<Verdict> {
        self.verdicts.iter().find(|(m, _)| *m == model).map(|(_, v)| *v)
    }

    /// Returns true if every computed verdict matches the expectation table.
    #[must_use]
    pub fn matches_expectations(&self) -> bool {
        self.mismatches.is_empty()
    }
}

/// Verdicts of every model on a set of litmus tests.
#[derive(Debug, Clone, Default)]
pub struct ComparisonMatrix {
    rows: Vec<ComparisonRow>,
}

impl ComparisonMatrix {
    /// Runs the axiomatic checker for every model on every test.
    ///
    /// # Errors
    ///
    /// Propagates the first checker error (branches or too many events).
    pub fn compute(tests: &[LitmusTest]) -> Result<Self, CheckError> {
        let models = model::all();
        let mut rows = Vec::with_capacity(tests.len());
        for test in tests {
            let mut verdicts = Vec::with_capacity(models.len());
            for spec in &models {
                let verdict = AxiomaticChecker::new(spec.clone()).check(test)?;
                verdicts.push((spec.kind(), verdict));
            }
            let mismatches = match expectations::expectation_for(test.name()) {
                Some(expected) => verdicts
                    .iter()
                    .filter(|(kind, verdict)| expected.allowed(*kind) != verdict.is_allowed())
                    .map(|(kind, _)| *kind)
                    .collect(),
                None => Vec::new(),
            };
            rows.push(ComparisonRow { test: test.name().to_string(), verdicts, mismatches });
        }
        Ok(ComparisonMatrix { rows })
    }

    /// The rows of the matrix.
    #[must_use]
    pub fn rows(&self) -> &[ComparisonRow] {
        &self.rows
    }

    /// Returns true if every row matches the expectation table.
    #[must_use]
    pub fn matches_expectations(&self) -> bool {
        self.rows.iter().all(ComparisonRow::matches_expectations)
    }

    /// Rows that disagree with the expectation table.
    #[must_use]
    pub fn mismatched_rows(&self) -> Vec<&ComparisonRow> {
        self.rows.iter().filter(|r| !r.matches_expectations()).collect()
    }
}

impl fmt::Display for ComparisonMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<24} {:>9} {:>9} {:>9} {:>9} {:>9}  {}",
            "litmus test", "SC", "TSO", "GAM", "GAM0", "GAM-ARM", "matches paper"
        )?;
        for row in &self.rows {
            write!(f, "{:<24}", row.test)?;
            for kind in ModelKind::ALL {
                let text = match row.verdict(kind) {
                    Some(Verdict::Allowed) => "allowed",
                    Some(Verdict::Forbidden) => "forbidden",
                    None => "-",
                };
                write!(f, " {text:>9}")?;
            }
            writeln!(f, "  {}", if row.matches_expectations() { "yes" } else { "NO" })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gam_isa::litmus::library;

    #[test]
    fn paper_figures_match_expectations() {
        let matrix = ComparisonMatrix::compute(&library::paper_tests()).unwrap();
        assert!(
            matrix.matches_expectations(),
            "mismatched rows: {:?}",
            matrix
                .mismatched_rows()
                .iter()
                .map(|r| (r.test.clone(), r.mismatches.clone()))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn display_lists_every_test_and_model() {
        let tests = vec![library::dekker(), library::corr()];
        let matrix = ComparisonMatrix::compute(&tests).unwrap();
        let text = matrix.to_string();
        assert!(text.contains("dekker"));
        assert!(text.contains("corr"));
        assert!(text.contains("GAM-ARM"));
        assert!(text.contains("allowed"));
        assert!(text.contains("forbidden"));
    }

    #[test]
    fn row_accessors() {
        let matrix = ComparisonMatrix::compute(&[library::corr()]).unwrap();
        let row = &matrix.rows()[0];
        assert_eq!(row.verdict(ModelKind::Gam), Some(Verdict::Forbidden));
        assert_eq!(row.verdict(ModelKind::Gam0), Some(Verdict::Allowed));
        assert!(row.matches_expectations());
    }
}
