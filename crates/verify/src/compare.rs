//! Model-comparison matrices.
//!
//! A [`ComparisonMatrix`] records, for a set of litmus tests, the verdict of
//! every model in the catalogue and whether each verdict matches the
//! expectation table. Since the engine redesign this module is a thin layer
//! over [`gam_engine::Engine`]: one axiomatic engine per model runs the whole
//! suite in parallel, and the matrix is assembled from the structured
//! [`gam_engine::SuiteReport`]s. Its `Display` implementation prints the same
//! kind of table the paper uses to discuss its litmus tests, which the
//! `litmus-tables` benchmark binary reuses.

use std::fmt;

use gam_core::{model, ModelKind};
use gam_engine::{Backend, Engine, EngineError, SuiteReport, Verdict};
use gam_isa::litmus::LitmusTest;

use crate::expectations;

/// One row of the comparison matrix: a litmus test and the verdict of every model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComparisonRow {
    /// Litmus-test name.
    pub test: String,
    /// `(model, verdict)` pairs in catalogue order.
    pub verdicts: Vec<(ModelKind, Verdict)>,
    /// Models whose verdict disagrees with the expectation table (empty when
    /// everything matches or no expectation exists).
    pub mismatches: Vec<ModelKind>,
}

impl ComparisonRow {
    /// The verdict of a given model in this row.
    #[must_use]
    pub fn verdict(&self, model: ModelKind) -> Option<Verdict> {
        self.verdicts.iter().find(|(m, _)| *m == model).map(|(_, v)| *v)
    }

    /// Returns true if every computed verdict matches the expectation table.
    #[must_use]
    pub fn matches_expectations(&self) -> bool {
        self.mismatches.is_empty()
    }
}

/// Verdicts of every model on a set of litmus tests.
#[derive(Debug, Clone, Default)]
pub struct ComparisonMatrix {
    rows: Vec<ComparisonRow>,
}

impl ComparisonMatrix {
    /// Runs every model over every test through the axiomatic engine, using
    /// all available hardware parallelism.
    ///
    /// # Errors
    ///
    /// Propagates the first checker error (branches or too many events).
    pub fn compute(tests: &[LitmusTest]) -> Result<Self, EngineError> {
        Self::compute_with_parallelism(tests, available_parallelism())
    }

    /// Like [`ComparisonMatrix::compute`] with an explicit worker count.
    ///
    /// # Errors
    ///
    /// Propagates the first checker error (branches or too many events).
    pub fn compute_with_parallelism(
        tests: &[LitmusTest],
        parallelism: usize,
    ) -> Result<Self, EngineError> {
        let models = model::all();
        let mut suites: Vec<SuiteReport> = Vec::with_capacity(models.len());
        for spec in &models {
            let engine = Engine::builder()
                .model(spec.kind())
                .backend(Backend::Axiomatic)
                .parallelism(parallelism)
                .build()
                .expect("the axiomatic backend supports every model");
            // The matrix only needs verdicts, so let the checker stop at the
            // first witness instead of enumerating every execution.
            let suite = engine.run_suite_verdicts(tests);
            // The suite captures per-test failures; surface the first one as
            // this function's error (re-check retrieves the typed error).
            if let Some(failed) = suite.reports.iter().position(|report| !report.is_ok()) {
                return Err(engine
                    .check(&tests[failed])
                    .expect_err("run_suite recorded an error for this test"));
            }
            suites.push(suite);
        }

        let mut rows = Vec::with_capacity(tests.len());
        for (index, test) in tests.iter().enumerate() {
            let verdicts: Vec<(ModelKind, Verdict)> = models
                .iter()
                .zip(&suites)
                .map(|(spec, suite)| {
                    let verdict =
                        suite.reports[index].verdict.expect("error-free suite has verdicts");
                    (spec.kind(), verdict)
                })
                .collect();
            let mismatches = match expectations::expectation_for(test.name()) {
                Some(expected) => verdicts
                    .iter()
                    .filter(|(kind, verdict)| expected.allowed(*kind) != verdict.is_allowed())
                    .map(|(kind, _)| *kind)
                    .collect(),
                None => Vec::new(),
            };
            rows.push(ComparisonRow { test: test.name().to_string(), verdicts, mismatches });
        }
        Ok(ComparisonMatrix { rows })
    }

    /// The rows of the matrix.
    #[must_use]
    pub fn rows(&self) -> &[ComparisonRow] {
        &self.rows
    }

    /// Returns true if every row matches the expectation table.
    #[must_use]
    pub fn matches_expectations(&self) -> bool {
        self.rows.iter().all(ComparisonRow::matches_expectations)
    }

    /// Rows that disagree with the expectation table.
    #[must_use]
    pub fn mismatched_rows(&self) -> Vec<&ComparisonRow> {
        self.rows.iter().filter(|r| !r.matches_expectations()).collect()
    }
}

/// The machine's available hardware parallelism (at least 1).
fn available_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

impl fmt::Display for ComparisonMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<24} {:>9} {:>9} {:>9} {:>9} {:>9}  matches paper",
            "litmus test", "SC", "TSO", "GAM", "GAM0", "GAM-ARM"
        )?;
        for row in &self.rows {
            write!(f, "{:<24}", row.test)?;
            for kind in ModelKind::ALL {
                let text = match row.verdict(kind) {
                    Some(Verdict::Allowed) => "allowed",
                    Some(Verdict::Forbidden) => "forbidden",
                    None => "-",
                };
                write!(f, " {text:>9}")?;
            }
            writeln!(f, "  {}", if row.matches_expectations() { "yes" } else { "NO" })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gam_isa::litmus::library;

    #[test]
    fn paper_figures_match_expectations() {
        let matrix = ComparisonMatrix::compute(&library::paper_tests()).unwrap();
        assert!(
            matrix.matches_expectations(),
            "mismatched rows: {:?}",
            matrix
                .mismatched_rows()
                .iter()
                .map(|r| (r.test.clone(), r.mismatches.clone()))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn display_lists_every_test_and_model() {
        let tests = vec![library::dekker(), library::corr()];
        let matrix = ComparisonMatrix::compute(&tests).unwrap();
        let text = matrix.to_string();
        assert!(text.contains("dekker"));
        assert!(text.contains("corr"));
        assert!(text.contains("GAM-ARM"));
        assert!(text.contains("allowed"));
        assert!(text.contains("forbidden"));
    }

    #[test]
    fn row_accessors() {
        let matrix = ComparisonMatrix::compute(&[library::corr()]).unwrap();
        let row = &matrix.rows()[0];
        assert_eq!(row.verdict(ModelKind::Gam), Some(Verdict::Forbidden));
        assert_eq!(row.verdict(ModelKind::Gam0), Some(Verdict::Allowed));
        assert!(row.matches_expectations());
    }

    #[test]
    fn parallel_and_sequential_matrices_are_identical() {
        let tests = library::paper_tests();
        let sequential = ComparisonMatrix::compute_with_parallelism(&tests, 1).unwrap();
        let parallel = ComparisonMatrix::compute_with_parallelism(&tests, 8).unwrap();
        assert_eq!(sequential.rows(), parallel.rows());
    }

    #[test]
    fn checker_errors_surface_as_engine_errors() {
        // A program with branches cannot be checked axiomatically; the error
        // must propagate through the engine as a typed EngineError.
        use gam_isa::prelude::*;
        let mut thread = ThreadProgram::builder(ProcId::new(0));
        thread.label("spin");
        thread.load(Reg::new(1), Addr::loc(Loc::new("a")));
        thread.branch(BranchCond::Eq, Operand::reg(Reg::new(1)), Operand::imm(0), "spin");
        let program = Program::new(vec![thread.build()]);
        let test = gam_isa::litmus::LitmusTest::builder("branchy", program).build();
        let err = ComparisonMatrix::compute(&[test]).unwrap_err();
        assert!(matches!(err, EngineError::Axiomatic(_)));
    }
}
