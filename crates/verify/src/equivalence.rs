//! Axiomatic-vs-operational equivalence checking.
//!
//! Section IV of the paper gives both an axiomatic and an operational
//! definition of GAM and states (with a proof in the companion report) that
//! they are equivalent. The reproduction cannot re-run a hand proof, but it
//! can do the next best thing at litmus-test scale: for every test in the
//! library, compute the *complete* allowed-outcome set under both semantics
//! and require them to be identical. The same cross-check is applied to the
//! other models that have an operational machine (SC, TSO, GAM0).
//!
//! Since the engine redesign the comparison itself is backend-agnostic: both
//! semantics are driven through the same [`gam_engine::Checker`] trait by two
//! [`gam_engine::Engine`]s — equivalence is literally "run both backends
//! through one API and diff the outcome sets" — and each suite runs in
//! parallel across the machine's cores.

use std::collections::BTreeSet;
use std::fmt;

use gam_core::ModelKind;
use gam_engine::{Backend, Engine, SuiteReport};
use gam_isa::litmus::{LitmusTest, Outcome};

/// The outcome-set comparison for one litmus test under one model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EquivalenceResult {
    /// Litmus-test name.
    pub test: String,
    /// The model compared.
    pub model: ModelKind,
    /// Outcomes allowed by the axiomatic definition only.
    pub axiomatic_only: BTreeSet<Outcome>,
    /// Outcomes reachable on the operational machine only.
    pub operational_only: BTreeSet<Outcome>,
    /// Number of outcomes in the (identical part of the) intersection.
    pub common: usize,
}

impl EquivalenceResult {
    /// Returns true when both semantics produced exactly the same outcome set.
    #[must_use]
    pub fn is_equivalent(&self) -> bool {
        self.axiomatic_only.is_empty() && self.operational_only.is_empty()
    }
}

impl fmt::Display for EquivalenceResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_equivalent() {
            write!(f, "{} / {}: equivalent ({} outcomes)", self.test, self.model, self.common)
        } else {
            write!(
                f,
                "{} / {}: MISMATCH (axiomatic-only: {:?}, operational-only: {:?})",
                self.test,
                self.model,
                self.axiomatic_only.iter().map(ToString::to_string).collect::<Vec<_>>(),
                self.operational_only.iter().map(ToString::to_string).collect::<Vec<_>>()
            )
        }
    }
}

/// An equivalence report over a set of tests and models.
#[derive(Debug, Clone, Default)]
pub struct EquivalenceReport {
    results: Vec<EquivalenceResult>,
}

impl EquivalenceReport {
    /// Compares the axiomatic and operational definitions of `model_kind` on
    /// every test in `tests`, running each backend's suite in parallel.
    ///
    /// # Panics
    ///
    /// Panics if the model has no operational machine, or if either backend
    /// fails on a test (event limit, state limit, deadlock); the litmus-test
    /// library is well within both limits.
    #[must_use]
    pub fn compute(tests: &[LitmusTest], model_kind: ModelKind) -> Self {
        assert!(
            Backend::Operational.supports(model_kind),
            "{model_kind} has no operational machine to compare against"
        );
        // Both backends behind the same trait: build one engine per backend
        // and run the identical suite through each.
        let [axiomatic, operational]: [SuiteReport; 2] = Backend::ALL.map(|backend| {
            Engine::builder()
                .model(model_kind)
                .backend(backend)
                .parallelism_available()
                .build()
                .expect("both backends support this model")
                .run_suite(tests)
        });

        let results = axiomatic
            .reports
            .iter()
            .zip(&operational.reports)
            .map(|(ax, op)| {
                assert!(ax.is_ok(), "axiomatic check succeeds: {:?}", ax.error);
                assert!(op.is_ok(), "operational check succeeds: {:?}", op.error);
                let axiomatic_only: BTreeSet<Outcome> =
                    ax.outcomes.difference(&op.outcomes).cloned().collect();
                let operational_only: BTreeSet<Outcome> =
                    op.outcomes.difference(&ax.outcomes).cloned().collect();
                let common = ax.outcomes.intersection(&op.outcomes).count();
                EquivalenceResult {
                    test: ax.test.clone(),
                    model: model_kind,
                    axiomatic_only,
                    operational_only,
                    common,
                }
            })
            .collect();
        EquivalenceReport { results }
    }

    /// Compares every model that has an operational machine on every test.
    #[must_use]
    pub fn compute_all(tests: &[LitmusTest]) -> Self {
        let mut results = Vec::new();
        for kind in ModelKind::ALL {
            if Backend::Operational.supports(kind) {
                results.extend(Self::compute(tests, kind).results);
            }
        }
        EquivalenceReport { results }
    }

    /// Individual comparison results.
    #[must_use]
    pub fn results(&self) -> &[EquivalenceResult] {
        &self.results
    }

    /// Returns true when every comparison found identical outcome sets.
    #[must_use]
    pub fn all_equivalent(&self) -> bool {
        self.results.iter().all(EquivalenceResult::is_equivalent)
    }

    /// The comparisons that found a mismatch.
    #[must_use]
    pub fn mismatches(&self) -> Vec<&EquivalenceResult> {
        self.results.iter().filter(|r| !r.is_equivalent()).collect()
    }
}

impl fmt::Display for EquivalenceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for result in &self.results {
            writeln!(f, "{result}")?;
        }
        writeln!(f, "{} comparisons, {} mismatches", self.results.len(), self.mismatches().len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gam_isa::litmus::library;

    #[test]
    fn gam_axiomatic_and_operational_agree_on_key_paper_tests() {
        let tests = vec![
            library::dekker(),
            library::corr(),
            library::mp_addr(),
            library::store_forwarding(),
        ];
        let report = EquivalenceReport::compute(&tests, ModelKind::Gam);
        assert!(report.all_equivalent(), "{report}");
        assert_eq!(report.results().len(), 4);
    }

    #[test]
    fn gam0_axiomatic_and_operational_agree_on_corr() {
        let report = EquivalenceReport::compute(&[library::corr()], ModelKind::Gam0);
        assert!(report.all_equivalent(), "{report}");
    }

    #[test]
    fn sc_and_tso_agree_on_dekker_family() {
        let tests = vec![library::dekker(), library::dekker_fence_sl(), library::mp()];
        for kind in [ModelKind::Sc, ModelKind::Tso] {
            let report = EquivalenceReport::compute(&tests, kind);
            assert!(report.all_equivalent(), "{kind}: {report}");
        }
    }

    #[test]
    #[should_panic(expected = "no operational machine")]
    fn gam_arm_is_rejected() {
        let _ = EquivalenceReport::compute(&[library::dekker()], ModelKind::GamArm);
    }

    #[test]
    fn report_display_mentions_counts() {
        let report = EquivalenceReport::compute(&[library::dekker()], ModelKind::Sc);
        let text = report.to_string();
        assert!(text.contains("equivalent"));
        assert!(text.contains("1 comparisons, 0 mismatches"));
    }
}
