//! A TSO abstract machine: the SC machine plus per-processor FIFO store
//! buffers.
//!
//! Stores are enqueued into the issuing processor's store buffer and drain to
//! the monolithic memory in FIFO order at non-deterministic times. Loads
//! first search their own store buffer (youngest matching entry wins) and
//! fall back to memory. A fence that orders stores before loads
//! (`FenceSL`) may only execute when the store buffer is empty; the other
//! basic fences are no-ops because TSO already preserves those orderings.

use std::collections::BTreeMap;

use gam_isa::litmus::{LitmusTest, Observation, Outcome};
use gam_isa::{Instruction, MemAccessType, Program, Value};

use crate::machine::AbstractMachine;
use crate::sc::{next_pc, SeqProcState};

/// The TSO machine for one litmus test.
#[derive(Debug, Clone)]
pub struct TsoMachine {
    program: Program,
    initial_memory: BTreeMap<u64, Value>,
    observed: Vec<Observation>,
}

/// Per-processor TSO state: sequential state plus a FIFO store buffer.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct TsoProcState {
    /// Register file and program counter.
    pub seq: SeqProcState,
    /// FIFO store buffer, oldest entry first.
    pub store_buffer: Vec<(u64, Value)>,
}

/// A configuration of the TSO machine.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TsoState {
    /// The monolithic memory.
    pub memory: BTreeMap<u64, Value>,
    /// Per-processor state.
    pub procs: Vec<TsoProcState>,
}

impl TsoMachine {
    /// Builds the TSO machine for a litmus test.
    #[must_use]
    pub fn new(test: &LitmusTest) -> Self {
        TsoMachine {
            program: test.program().clone(),
            initial_memory: test.initial_memory().clone(),
            observed: test.observed().to_vec(),
        }
    }

    fn read(&self, state: &TsoState, proc_index: usize, addr: u64) -> Value {
        // Youngest store-buffer entry for the address wins; otherwise memory.
        state.procs[proc_index]
            .store_buffer
            .iter()
            .rev()
            .find(|(a, _)| *a == addr)
            .map(|(_, v)| *v)
            .unwrap_or_else(|| state.memory.get(&addr).copied().unwrap_or(Value::ZERO))
    }
}

impl AbstractMachine for TsoMachine {
    type State = TsoState;

    fn initial_state(&self) -> TsoState {
        TsoState {
            memory: self.initial_memory.clone(),
            procs: vec![TsoProcState::default(); self.program.num_threads()],
        }
    }

    fn successors(&self, state: &TsoState) -> Vec<TsoState> {
        let mut next_states = Vec::new();
        for (proc_index, proc) in state.procs.iter().enumerate() {
            let thread = &self.program.threads()[proc_index];

            // Drain rule: publish the oldest store-buffer entry to memory.
            if let Some(&(addr, value)) = proc.store_buffer.first() {
                let mut next = state.clone();
                next.procs[proc_index].store_buffer.remove(0);
                next.memory.insert(addr, value);
                next_states.push(next);
            }

            if proc.seq.pc >= thread.len() {
                continue;
            }
            let instr = &thread.instructions()[proc.seq.pc];
            match instr {
                Instruction::Alu { dst, op, lhs, rhs } => {
                    let mut next = state.clone();
                    let p = &mut next.procs[proc_index];
                    let value = op.apply(p.seq.operand(lhs), p.seq.operand(rhs));
                    p.seq.regs.insert(*dst, value);
                    p.seq.pc += 1;
                    next_states.push(next);
                }
                Instruction::Load { dst, addr } => {
                    let address = addr.evaluate(proc.seq.operand(&addr.base)).raw();
                    let value = self.read(state, proc_index, address);
                    let mut next = state.clone();
                    let p = &mut next.procs[proc_index];
                    p.seq.regs.insert(*dst, value);
                    p.seq.pc += 1;
                    next_states.push(next);
                }
                Instruction::Store { addr, data } => {
                    let mut next = state.clone();
                    let p = &mut next.procs[proc_index];
                    let address = addr.evaluate(p.seq.operand(&addr.base)).raw();
                    let value = p.seq.operand(data);
                    p.store_buffer.push((address, value));
                    p.seq.pc += 1;
                    next_states.push(next);
                }
                Instruction::Fence { kind } => {
                    // Only store->load ordering is not already guaranteed by TSO;
                    // such a fence waits for the store buffer to drain.
                    let needs_drain =
                        kind.before == MemAccessType::Store && kind.after == MemAccessType::Load;
                    if !needs_drain || proc.store_buffer.is_empty() {
                        let mut next = state.clone();
                        next.procs[proc_index].seq.pc += 1;
                        next_states.push(next);
                    }
                }
                Instruction::Branch { cond, lhs, rhs, .. } => {
                    let taken = cond.holds(proc.seq.operand(lhs), proc.seq.operand(rhs));
                    let mut next = state.clone();
                    let p = &mut next.procs[proc_index];
                    p.seq.pc = next_pc(thread, p.seq.pc, taken, instr);
                    next_states.push(next);
                }
            }
        }
        next_states
    }

    fn is_final(&self, state: &TsoState) -> bool {
        state
            .procs
            .iter()
            .zip(self.program.threads())
            .all(|(proc, thread)| proc.seq.pc >= thread.len() && proc.store_buffer.is_empty())
    }

    fn outcome(&self, state: &TsoState) -> Outcome {
        let mut outcome = Outcome::new();
        for observation in &self.observed {
            let value = match observation {
                Observation::Register(proc, reg) => state.procs[proc.index()].seq.reg(*reg),
                Observation::Memory(loc) => {
                    state.memory.get(&loc.address()).copied().unwrap_or(Value::ZERO)
                }
            };
            outcome.set(*observation, value);
        }
        outcome
    }

    fn name(&self) -> &str {
        "TSO abstract machine"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::Explorer;
    use gam_isa::litmus::library;

    fn reachable(test: &gam_isa::litmus::LitmusTest) -> bool {
        let machine = TsoMachine::new(test);
        let exploration = Explorer::default().explore(&machine).unwrap();
        exploration.outcomes.iter().any(|o| test.condition().matched_by(o))
    }

    #[test]
    fn dekker_allowed_under_tso() {
        assert!(reachable(&library::dekker()), "store buffering exposes r1=0, r2=0");
    }

    #[test]
    fn dekker_with_fence_sl_forbidden_under_tso() {
        assert!(!reachable(&library::dekker_fence_sl()));
    }

    #[test]
    fn mp_forbidden_under_tso() {
        assert!(!reachable(&library::mp()), "TSO preserves store-store and load-load order");
    }

    #[test]
    fn load_buffering_forbidden_under_tso() {
        assert!(!reachable(&library::lb()));
    }

    #[test]
    fn store_forwarding_reads_own_buffer() {
        assert!(!reachable(&library::store_forwarding()));
        assert!(!reachable(&library::cowr()), "a load may not miss its own buffered store");
    }

    #[test]
    fn two_plus_two_w_forbidden_under_tso() {
        assert!(!reachable(&library::two_plus_two_w()));
    }

    #[test]
    fn final_state_requires_empty_store_buffers() {
        let test = library::coww();
        let machine = TsoMachine::new(&test);
        let exploration = Explorer::default().explore(&machine).unwrap();
        // Final memory must reflect the younger store (value 2) only.
        assert_eq!(exploration.outcomes.len(), 1);
        assert!(!exploration.outcomes.iter().any(|o| test.condition().matched_by(o)));
    }
}
