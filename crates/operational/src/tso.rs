//! A TSO abstract machine: the SC machine plus per-processor FIFO store
//! buffers.
//!
//! Stores are enqueued into the issuing processor's store buffer and drain to
//! the monolithic memory in FIFO order at non-deterministic times. Loads
//! first search their own store buffer (youngest matching entry wins) and
//! fall back to memory. A fence that orders stores before loads
//! (`FenceSL`) may only execute when the store buffer is empty; the other
//! basic fences are no-ops because TSO already preserves those orderings.

use gam_isa::litmus::{LitmusTest, Observation, Outcome};
use gam_isa::{Instruction, MemAccessType, Program, Value};

use crate::codec;
use crate::footprint;
use crate::machine::{AbstractMachine, Action, Footprint, LabeledMachine};
use crate::mem::Memory;
use crate::sc::{next_pc, SeqProcState};

/// The TSO machine for one litmus test.
#[derive(Debug, Clone)]
pub struct TsoMachine {
    program: Program,
    initial_memory: Memory,
    observed: Vec<Observation>,
    /// `suffix[proc][pc]`: the memory accesses the thread's remaining
    /// instructions can perform; pending store-buffer entries are added
    /// dynamically in `future_footprint`.
    suffix: Vec<Vec<Footprint>>,
}

/// Per-processor TSO state: sequential state plus a FIFO store buffer.
#[derive(Debug, PartialEq, Eq, Hash, Default)]
pub struct TsoProcState {
    /// Register file and program counter.
    pub seq: SeqProcState,
    /// FIFO store buffer, oldest entry first.
    pub store_buffer: Vec<(u64, Value)>,
}

// Hand-written so `clone_from` reuses the buffers (successor pooling).
impl Clone for TsoProcState {
    fn clone(&self) -> Self {
        TsoProcState { seq: self.seq.clone(), store_buffer: self.store_buffer.clone() }
    }

    fn clone_from(&mut self, source: &Self) {
        self.seq.clone_from(&source.seq);
        self.store_buffer.clear();
        self.store_buffer.extend_from_slice(&source.store_buffer);
    }
}

/// A configuration of the TSO machine.
#[derive(Debug, PartialEq, Eq, Hash)]
pub struct TsoState {
    /// The monolithic memory.
    pub memory: Memory,
    /// Per-processor state.
    pub procs: Vec<TsoProcState>,
}

// Hand-written so `clone_from` reuses every nested buffer (successor pool).
impl Clone for TsoState {
    fn clone(&self) -> Self {
        TsoState { memory: self.memory.clone(), procs: self.procs.clone() }
    }

    fn clone_from(&mut self, source: &Self) {
        self.memory.clone_from(&source.memory);
        crate::mem::clone_vec_from(&mut self.procs, &source.procs);
    }
}

impl crate::arena::ComposedState for TsoState {
    type Mem = Memory;
    type Proc = TsoProcState;

    fn memory(&self) -> &Memory {
        &self.memory
    }

    fn memory_mut(&mut self) -> &mut Memory {
        &mut self.memory
    }

    fn procs(&self) -> &[TsoProcState] {
        &self.procs
    }

    fn procs_mut(&mut self) -> &mut [TsoProcState] {
        &mut self.procs
    }

    fn mem_bytes(mem: &Memory) -> usize {
        std::mem::size_of::<Memory>() + mem.approx_bytes()
    }

    fn proc_bytes(proc: &TsoProcState) -> usize {
        std::mem::size_of::<TsoProcState>()
            + proc.seq.regs.approx_bytes()
            + proc.store_buffer.len() * std::mem::size_of::<(u64, Value)>()
    }

    fn encode_mem(mem: &Memory, out: &mut Vec<u8>) {
        mem.encode(out);
    }

    fn decode_mem(input: &mut &[u8]) -> Option<Memory> {
        Memory::decode(input)
    }

    fn encode_proc(proc: &TsoProcState, out: &mut Vec<u8>) {
        crate::sc::encode_seq_proc(&proc.seq, out);
        codec::put_u32(out, u32::try_from(proc.store_buffer.len()).expect("buffer fits u32"));
        for &(addr, value) in &proc.store_buffer {
            codec::put_u64(out, addr);
            codec::put_u64(out, value.raw());
        }
    }

    fn decode_proc(input: &mut &[u8]) -> Option<TsoProcState> {
        let seq = crate::sc::decode_seq_proc(input)?;
        let len = codec::take_u32(input)? as usize;
        let mut store_buffer = Vec::with_capacity(len);
        for _ in 0..len {
            let addr = codec::take_u64(input)?;
            let value = Value::new(codec::take_u64(input)?);
            store_buffer.push((addr, value));
        }
        Some(TsoProcState { seq, store_buffer })
    }
}

impl TsoMachine {
    /// Builds the TSO machine for a litmus test.
    #[must_use]
    pub fn new(test: &LitmusTest) -> Self {
        let sets = footprint::instr_addr_sets(test);
        let suffix = footprint::suffix_footprints(test.program(), &sets);
        TsoMachine {
            program: test.program().clone(),
            initial_memory: Memory::from_map(test.initial_memory()),
            observed: test.observed().to_vec(),
            suffix,
        }
    }

    fn read(&self, state: &TsoState, proc_index: usize, addr: u64) -> Value {
        // Youngest store-buffer entry for the address wins; otherwise memory.
        state.procs[proc_index]
            .store_buffer
            .iter()
            .rev()
            .find(|(a, _)| *a == addr)
            .map(|(_, v)| *v)
            .unwrap_or_else(|| state.memory.read(addr))
    }
}

impl AbstractMachine for TsoMachine {
    type State = TsoState;

    fn initial_state(&self) -> TsoState {
        TsoState {
            memory: self.initial_memory.clone(),
            procs: vec![TsoProcState::default(); self.program.num_threads()],
        }
    }

    fn successors(&self, state: &TsoState) -> Vec<TsoState> {
        self.labeled_successors(state).into_iter().map(|(_, next)| next).collect()
    }

    fn is_final(&self, state: &TsoState) -> bool {
        state
            .procs
            .iter()
            .zip(self.program.threads())
            .all(|(proc, thread)| proc.seq.pc >= thread.len() && proc.store_buffer.is_empty())
    }

    fn outcome(&self, state: &TsoState) -> Outcome {
        let mut outcome = Outcome::new();
        for observation in &self.observed {
            let value = match observation {
                Observation::Register(proc, reg) => state.procs[proc.index()].seq.reg(*reg),
                Observation::Memory(loc) => state.memory.read(loc.address()),
            };
            outcome.set(*observation, value);
        }
        outcome
    }

    fn name(&self) -> &str {
        "TSO abstract machine"
    }
}

impl LabeledMachine for TsoMachine {
    /// Almost every TSO action is independent of its own thread's other
    /// actions. A thread has at most two concurrently enabled actions — the
    /// oldest drain and the next instruction — and they commute: draining
    /// the head entry and executing an instruction touch the buffer from
    /// opposite ends, and a load whose youngest buffer match is the
    /// draining head reads the same value from the buffer before the drain
    /// and from memory after it. Later same-thread actions always require
    /// one of the two to fire first (the pc only advances through the
    /// instruction; the next drain only exists once the head is gone), so
    /// no other same-thread action can interleave at all.
    ///
    /// The one exception is a load currently satisfied by *forwarding*: its
    /// label is thread-private now, but its own thread's drains can empty
    /// the matching entries and turn it into a shared-memory read whose
    /// value then depends on other threads' drains. Committing to it as a
    /// singleton would drop the "wait for the buffer to drain, then read
    /// whatever memory holds by then" futures, so it must not qualify.
    fn own_thread_independent(&self, state: &TsoState, action: &Action) -> bool {
        if action.kind == crate::machine::ActionKind::BufferDrain {
            return true;
        }
        let proc = &state.procs[action.thread as usize];
        let pc = (action.id - 1) as usize;
        match &self.program.threads()[action.thread as usize].instructions()[pc] {
            Instruction::Load { addr, .. } => {
                let address = addr.evaluate(proc.seq.operand(&addr.base)).raw();
                !proc.store_buffer.iter().any(|(buffered, _)| *buffered == address)
            }
            _ => true,
        }
    }

    fn future_footprint(&self, state: &TsoState, thread: usize) -> Footprint {
        // Instructions execute in order, so the instruction-level future is
        // the program suffix; every buffered store is a write still waiting
        // to drain into shared memory.
        let proc = &state.procs[thread];
        let suffix = &self.suffix[thread];
        let mut footprint = suffix[proc.seq.pc.min(suffix.len() - 1)].clone();
        for &(addr, _) in &proc.store_buffer {
            footprint.writes.insert(addr);
        }
        footprint
    }

    fn labeled_successors(&self, state: &TsoState) -> Vec<(Action, TsoState)> {
        let mut out = Vec::new();
        self.labeled_successors_into(state, &mut out);
        out
    }

    fn labeled_successors_into(&self, state: &TsoState, out: &mut Vec<(Action, TsoState)>) {
        self.successors_into_buf(state, crate::machine::SuccBuf::new(out));
    }

    fn labeled_successors_sparse_into(&self, state: &TsoState, out: &mut Vec<(Action, TsoState)>) {
        self.successors_into_buf(state, crate::machine::SuccBuf::new_sparse(out));
    }
}

impl TsoMachine {
    /// The rule pass shared by the full and sparse successor entry points.
    fn successors_into_buf(
        &self,
        state: &TsoState,
        mut buf: crate::machine::SuccBuf<'_, TsoState>,
    ) {
        for (proc_index, proc) in state.procs.iter().enumerate() {
            let thread = &self.program.threads()[proc_index];

            // Drain rule: publish the oldest store-buffer entry to memory.
            // Id 0 is reserved for the drain; instruction executions use
            // pc + 1 so the two never collide.
            if let Some(&(addr, value)) = proc.store_buffer.first() {
                let next = buf.push_from(state, Action::drain(proc_index, 0, addr));
                next.procs[proc_index].store_buffer.remove(0);
                next.memory.write(addr, value);
            }

            if proc.seq.pc >= thread.len() {
                continue;
            }
            let id = proc.seq.pc as u32 + 1;
            let instr = &thread.instructions()[proc.seq.pc];
            match instr {
                Instruction::Alu { dst, op, lhs, rhs } => {
                    let value = op.apply(proc.seq.operand(lhs), proc.seq.operand(rhs));
                    let next = buf.push_from(state, Action::local(proc_index, id));
                    let p = &mut next.procs[proc_index];
                    p.seq.regs.write(*dst, value);
                    p.seq.pc += 1;
                }
                Instruction::Load { dst, addr } => {
                    let address = addr.evaluate(proc.seq.operand(&addr.base)).raw();
                    let value = self.read(state, proc_index, address);
                    // A load satisfied by forwarding from the processor's own
                    // store buffer never touches shared memory, so it is a
                    // thread-private step; only a buffer miss reads memory.
                    let forwarded =
                        proc.store_buffer.iter().any(|(buffered, _)| *buffered == address);
                    let action = if forwarded {
                        Action::local(proc_index, id)
                    } else {
                        Action::read(proc_index, id, address)
                    };
                    let next = buf.push_from(state, action);
                    let p = &mut next.procs[proc_index];
                    p.seq.regs.write(*dst, value);
                    p.seq.pc += 1;
                }
                Instruction::Store { addr, data } => {
                    let address = addr.evaluate(proc.seq.operand(&addr.base)).raw();
                    let value = proc.seq.operand(data);
                    // Enqueueing only touches the private buffer; the shared
                    // write happens later, at drain time.
                    let next = buf.push_from(state, Action::local(proc_index, id));
                    let p = &mut next.procs[proc_index];
                    p.store_buffer.push((address, value));
                    p.seq.pc += 1;
                }
                Instruction::Fence { kind } => {
                    // Only store->load ordering is not already guaranteed by TSO;
                    // such a fence waits for the store buffer to drain.
                    let needs_drain =
                        kind.before == MemAccessType::Store && kind.after == MemAccessType::Load;
                    if !needs_drain || proc.store_buffer.is_empty() {
                        let next = buf.push_from(state, Action::fence(proc_index, id));
                        next.procs[proc_index].seq.pc += 1;
                    }
                }
                Instruction::Branch { cond, lhs, rhs, .. } => {
                    let taken = cond.holds(proc.seq.operand(lhs), proc.seq.operand(rhs));
                    let target = next_pc(thread, proc.seq.pc, taken, instr);
                    let next = buf.push_from(state, Action::local(proc_index, id));
                    next.procs[proc_index].seq.pc = target;
                }
            }
        }
        buf.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::Explorer;
    use gam_isa::litmus::library;

    fn reachable(test: &gam_isa::litmus::LitmusTest) -> bool {
        let machine = TsoMachine::new(test);
        let exploration = Explorer::default().explore(&machine).unwrap();
        exploration.outcomes.iter().any(|o| test.condition().matched_by(o))
    }

    #[test]
    fn dekker_allowed_under_tso() {
        assert!(reachable(&library::dekker()), "store buffering exposes r1=0, r2=0");
    }

    #[test]
    fn dekker_with_fence_sl_forbidden_under_tso() {
        assert!(!reachable(&library::dekker_fence_sl()));
    }

    #[test]
    fn mp_forbidden_under_tso() {
        assert!(!reachable(&library::mp()), "TSO preserves store-store and load-load order");
    }

    #[test]
    fn load_buffering_forbidden_under_tso() {
        assert!(!reachable(&library::lb()));
    }

    #[test]
    fn store_forwarding_reads_own_buffer() {
        assert!(!reachable(&library::store_forwarding()));
        assert!(!reachable(&library::cowr()), "a load may not miss its own buffered store");
    }

    #[test]
    fn two_plus_two_w_forbidden_under_tso() {
        assert!(!reachable(&library::two_plus_two_w()));
    }

    #[test]
    fn labels_classify_drains_and_forwarded_loads() {
        use crate::machine::{ActionKind, LabeledMachine};
        // store-forwarding: St [a] 1; St [a] r1; Ld r2 [a] on one thread.
        let test = library::store_forwarding();
        let machine = TsoMachine::new(&test);
        let s0 = machine.initial_state();
        let labeled = machine.labeled_successors(&s0);
        assert_eq!(
            labeled.iter().map(|(_, s)| s.clone()).collect::<Vec<_>>(),
            machine.successors(&s0)
        );
        // The only enabled step is the first store enqueue: a private buffer
        // push.
        assert_eq!(labeled.len(), 1);
        assert_eq!(labeled[0].0.kind, ActionKind::Local);
        // Enqueue the second store too; now the drain (a shared write) and
        // the load are enabled, and the load forwards from the thread's own
        // buffer, so it is private. Action ids are pc + 1, so the load is 3.
        let s1 = labeled[0].1.clone();
        let s2 = machine.apply(&s1, &Action::local(0, 2)).expect("second enqueue enabled");
        let next = machine.labeled_successors(&s2);
        let kinds: Vec<ActionKind> = next.iter().map(|(a, _)| a.kind).collect();
        assert!(kinds.contains(&ActionKind::BufferDrain));
        let load = next.iter().find(|(a, _)| a.id == 3).expect("load enabled");
        assert_eq!(load.0.kind, ActionKind::Local, "forwarded load is thread-private");
        // Drain both entries; the load now misses the buffer and reads
        // shared memory.
        let mut state = s2;
        for _ in 0..2 {
            let (action, drained) = machine
                .labeled_successors(&state)
                .into_iter()
                .find(|(a, _)| a.kind == ActionKind::BufferDrain)
                .expect("drain enabled");
            assert_eq!(action.id, 0, "drains use the reserved id 0");
            state = drained;
        }
        let after = machine.labeled_successors(&state);
        assert_eq!(after.len(), 1);
        assert_eq!(after[0].0.kind, ActionKind::MemoryRead);
    }

    #[test]
    fn final_state_requires_empty_store_buffers() {
        let test = library::coww();
        let machine = TsoMachine::new(&test);
        let exploration = Explorer::default().explore(&machine).unwrap();
        // Final memory must reflect the younger store (value 2) only.
        assert_eq!(exploration.outcomes.len(), 1);
        assert!(!exploration.outcomes.iter().any(|o| test.condition().matched_by(o)));
    }
}
