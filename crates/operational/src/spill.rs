//! Cold-state spill segments: disk storage for arena id rows under memory
//! pressure.
//!
//! When an exploration crosses its memory budget's soft watermark, the
//! component arena moves its *oldest* id rows — the flat `u32` rows of
//! component ids that back the visited set — into CRC-framed segment files
//! and keeps only the hot tail resident. The distinct components themselves
//! stay in RAM (they are shared across states, so their footprint is
//! sub-linear), and the hash index keeps covering every slot, so spilled
//! states still deduplicate; a cold row is only re-read when a hash
//! collision forces a full row comparison or a spilled frontier entry is
//! expanded.
//!
//! ## Segment file format
//!
//! ```text
//! gam-spill/v1\n
//! [len: u32 LE][crc32: u32 LE][payload: rows × stride u32 LE words]
//! ```
//!
//! One frame per file, using the same self-validating framing as
//! [`gam_core::wal`]: a torn or bit-flipped segment is *detected*, never
//! silently misread. The fault points `spill.write` (fires before a segment
//! lands on disk, simulating a crash mid-write) and `spill.read` (fires
//! before a segment reload) let the robustness tests drive both failure
//! directions; on either failure the explorer degrades — it stops spilling,
//! or reports a memory-budget inconclusive with sound partial outcomes —
//! rather than panicking or mis-deduplicating.

use std::fmt;
use std::io::Write;
use std::path::{Path, PathBuf};

use gam_core::{fault, wal};

/// Magic first line of every segment file.
pub(crate) const SPILL_MAGIC: &str = "gam-spill/v1";

/// A spill-layer failure: an I/O error, a damaged segment, or an injected
/// fault. The explorer never propagates this as a panic — it either disables
/// spilling (write side) or degrades the run to a memory-budget inconclusive
/// (read side, since a lost segment means the visited set is no longer
/// consultable).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct SpillError {
    /// What went wrong, for the trace stream.
    pub(crate) message: String,
}

impl SpillError {
    fn new(message: impl Into<String>) -> Self {
        SpillError { message: message.into() }
    }
}

impl fmt::Display for SpillError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// One on-disk segment: `rows` id rows starting at global row `start_row`.
#[derive(Debug, Clone)]
pub(crate) struct Segment {
    /// File name within the spill directory (not a full path, so a
    /// checkpoint manifest stays relocatable across `--spill-dir` values).
    pub(crate) name: String,
    pub(crate) start_row: usize,
    pub(crate) rows: usize,
}

/// The spill directory of one exploration: writes cold row segments,
/// reloads them on demand with a single-segment cache.
#[derive(Debug)]
pub(crate) struct SpillStore {
    dir: PathBuf,
    stride: usize,
    segments: Vec<Segment>,
    total_rows: usize,
    next_index: usize,
    /// The most recently reloaded segment (ordinal in `segments`, words).
    cache: Option<(usize, Vec<u32>)>,
}

impl SpillStore {
    /// Opens a spill store rooted at `dir`, creating the directory.
    pub(crate) fn new(dir: &Path, stride: usize) -> Result<Self, SpillError> {
        std::fs::create_dir_all(dir)
            .map_err(|err| SpillError::new(format!("spill dir {}: {err}", dir.display())))?;
        Ok(SpillStore {
            dir: dir.to_path_buf(),
            stride,
            segments: Vec::new(),
            total_rows: 0,
            next_index: 0,
            cache: None,
        })
    }

    /// Reconstructs a store from a checkpoint manifest: segment files that a
    /// previous incarnation of this exploration already wrote.
    pub(crate) fn from_manifest(
        dir: &Path,
        stride: usize,
        manifest: Vec<(String, usize)>,
    ) -> Result<Self, SpillError> {
        let mut store = SpillStore::new(dir, stride)?;
        for (name, rows) in manifest {
            store.segments.push(Segment { name, start_row: store.total_rows, rows });
            store.total_rows += rows;
        }
        store.next_index = store.segments.len();
        Ok(store)
    }

    /// The manifest to embed in a checkpoint snapshot.
    pub(crate) fn manifest(&self) -> Vec<(String, usize)> {
        self.segments.iter().map(|seg| (seg.name.clone(), seg.rows)).collect()
    }

    /// Rows across all segments.
    pub(crate) fn rows(&self) -> usize {
        self.total_rows
    }

    /// Number of segment files.
    pub(crate) fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Writes `words` (a whole number of rows) as the next segment.
    ///
    /// The `spill.write` fault point fires before the write completes; a
    /// `kill` action leaves a torn file behind — exactly what a crash
    /// mid-write would — and reports failure, so the caller keeps the rows
    /// resident and disables further spilling.
    pub(crate) fn write_segment(&mut self, words: &[u32]) -> Result<(), SpillError> {
        debug_assert_eq!(words.len() % self.stride, 0, "segments hold whole rows");
        let rows = words.len() / self.stride;
        let name = format!("seg-{:05}.gsp", self.next_index);
        let path = self.dir.join(&name);
        let mut payload = Vec::with_capacity(words.len() * 4);
        for &word in words {
            payload.extend_from_slice(&word.to_le_bytes());
        }
        let frame = wal::encode_frame(&payload);
        let write = |bytes: &[&[u8]]| -> std::io::Result<()> {
            let mut file = std::fs::File::create(&path)?;
            for chunk in bytes {
                file.write_all(chunk)?;
            }
            Ok(())
        };
        if fault::hit("spill.write") {
            // Simulated crash mid-write: a torn segment file (header line
            // plus half a frame) is left on disk, and the write fails.
            let torn = (frame.len() / 2).max(1);
            let _ = write(&[format!("{SPILL_MAGIC}\n").as_bytes(), &frame[..torn]]);
            return Err(SpillError::new(format!("injected fault at spill.write ({name})")));
        }
        write(&[format!("{SPILL_MAGIC}\n").as_bytes(), &frame])
            .map_err(|err| SpillError::new(format!("spill segment {}: {err}", path.display())))?;
        self.segments.push(Segment { name, start_row: self.total_rows, rows });
        self.total_rows += rows;
        self.next_index += 1;
        self.cache = None;
        Ok(())
    }

    /// Copies the id row at global row index `row` into `out` (cleared
    /// first). `row` must be below [`SpillStore::rows`].
    pub(crate) fn read_row(&mut self, row: usize, out: &mut Vec<u32>) -> Result<(), SpillError> {
        let ordinal = self.segments.partition_point(|seg| seg.start_row + seg.rows <= row);
        let seg = self
            .segments
            .get(ordinal)
            .filter(|seg| row >= seg.start_row && row < seg.start_row + seg.rows)
            .ok_or_else(|| SpillError::new(format!("row {row} is not in any spill segment")))?
            .clone();
        let cached = matches!(&self.cache, Some((held, _)) if *held == ordinal);
        if !cached {
            let words = self.load_segment(&seg)?;
            self.cache = Some((ordinal, words));
        }
        let (_, words) = self.cache.as_ref().expect("segment cache was just filled");
        let start = (row - seg.start_row) * self.stride;
        out.clear();
        out.extend_from_slice(&words[start..start + self.stride]);
        Ok(())
    }

    /// Reads and validates one whole segment file.
    fn load_segment(&self, seg: &Segment) -> Result<Vec<u32>, SpillError> {
        if fault::hit("spill.read") {
            return Err(SpillError::new(format!("injected fault at spill.read ({})", seg.name)));
        }
        let path = self.dir.join(&seg.name);
        let bytes = std::fs::read(&path)
            .map_err(|err| SpillError::new(format!("spill segment {}: {err}", path.display())))?;
        let header = format!("{SPILL_MAGIC}\n");
        let body = bytes
            .strip_prefix(header.as_bytes())
            .ok_or_else(|| SpillError::new(format!("spill segment {}: bad magic", seg.name)))?;
        let recovery = wal::scan(body);
        if recovery.frames.len() != 1 || recovery.damage.is_some() {
            return Err(SpillError::new(format!(
                "spill segment {}: {}",
                seg.name,
                recovery.damage.unwrap_or_else(|| "unexpected frame count".to_string()),
            )));
        }
        let payload = &recovery.frames[0];
        if payload.len() != seg.rows * self.stride * 4 {
            return Err(SpillError::new(format!(
                "spill segment {}: {} bytes, expected {}",
                seg.name,
                payload.len(),
                seg.rows * self.stride * 4,
            )));
        }
        Ok(payload
            .chunks_exact(4)
            .map(|chunk| u32::from_le_bytes(chunk.try_into().expect("exact chunks")))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("gam-spill-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn segments_round_trip_rows() {
        let dir = temp_dir("roundtrip");
        let mut store = SpillStore::new(&dir, 3).unwrap();
        store.write_segment(&[1, 2, 3, 4, 5, 6]).unwrap();
        store.write_segment(&[7, 8, 9]).unwrap();
        assert_eq!(store.rows(), 3);
        assert_eq!(store.segment_count(), 2);
        let mut row = Vec::new();
        store.read_row(0, &mut row).unwrap();
        assert_eq!(row, [1, 2, 3]);
        store.read_row(2, &mut row).unwrap();
        assert_eq!(row, [7, 8, 9]);
        store.read_row(1, &mut row).unwrap();
        assert_eq!(row, [4, 5, 6]);

        // A manifest rebuild sees the same rows.
        let manifest = store.manifest();
        let mut rebuilt = SpillStore::from_manifest(&dir, 3, manifest).unwrap();
        rebuilt.read_row(1, &mut row).unwrap();
        assert_eq!(row, [4, 5, 6]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_segments_are_detected_not_misread() {
        let dir = temp_dir("corrupt");
        let mut store = SpillStore::new(&dir, 2).unwrap();
        store.write_segment(&[10, 11, 12, 13]).unwrap();
        let path = dir.join("seg-00000.gsp");
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let mut row = Vec::new();
        let err = store.read_row(0, &mut row).unwrap_err();
        assert!(err.message.contains("CRC"), "got {err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn injected_write_fault_leaves_a_torn_file_and_fails() {
        let _guard = fault::exclusive();
        fault::install("spill.write=kill").unwrap();
        let dir = temp_dir("fault-write");
        let mut store = SpillStore::new(&dir, 2).unwrap();
        let err = store.write_segment(&[1, 2]).unwrap_err();
        assert!(err.message.contains("spill.write"));
        assert_eq!(store.segment_count(), 0, "failed segment is not recorded");
        fault::reset();
        // The torn file exists but is never referenced; a fresh write with
        // the same index simply overwrites it.
        store.write_segment(&[3, 4]).unwrap();
        let mut row = Vec::new();
        store.read_row(0, &mut row).unwrap();
        assert_eq!(row, [3, 4]);
        std::fs::remove_dir_all(&dir).ok();
    }
}
