//! # gam-operational
//!
//! Operational (abstract-machine) definitions of the memory models in the GAM
//! reproduction, together with an exhaustive state-space explorer and a
//! random-walk executor.
//!
//! The centrepiece is the GAM abstract machine of Section IV-B of
//! *Constructing a Weak Memory Model* (Figures 16 and 17): every processor
//! owns a reorder buffer (ROB) and a PC register, all processors share a
//! monolithic memory, and execution proceeds by non-deterministically firing
//! one of the eight rules (Fetch, Execute-Reg-to-Reg, Execute-Branch,
//! Execute-Fence, Execute-Load, Compute-Store-Data, Execute-Store,
//! Compute-Mem-Addr) on one processor per step. The same machine with the
//! same-address load-load enforcement switched off is the operational model
//! of GAM0.
//!
//! The crate also contains the much simpler SC machine (Figure 1) and a TSO
//! machine (SC plus per-processor FIFO store buffers), so that the
//! verification crate can cross-check every model's axiomatic and operational
//! definitions against each other.
//!
//! # Example
//!
//! ```
//! use gam_operational::{Explorer, GamMachine};
//! use gam_isa::litmus::library;
//!
//! let test = library::dekker();
//! let machine = GamMachine::new(&test);
//! let exploration = Explorer::default().explore(&machine).unwrap();
//! // The non-SC outcome r1=0, r2=0 is reachable on the GAM machine.
//! assert!(exploration.outcomes.iter().any(|o| test.condition().matched_by(o)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod arena;
pub mod checker;
mod codec;
pub mod explore;
mod footprint;
pub mod gam;
pub mod machine;
pub mod mem;
pub mod random;
pub mod sc;
mod spill;
pub mod tso;

pub use arena::{ArenaOccupancy, ComposedState};
pub use checker::{OperationalChecker, OperationalError};
pub use explore::{
    CheckpointPlan, Exploration, ExploreError, Explorer, ExplorerConfig, MemoryConfig, MemoryStats,
    Reduction,
};
pub use gam::{GamConfig, GamMachine};
pub use machine::{AbstractMachine, Action, ActionKind, AddrSet, Footprint, LabeledMachine};
pub use mem::{Memory, RegFile};
pub use random::{big_tests, stress_tests, RandomWalker};
pub use sc::ScMachine;
pub use tso::TsoMachine;
