//! The SC abstract machine (Figure 1 of the paper).
//!
//! All processors are connected directly to a monolithic memory. In one step
//! a single processor executes its next instruction atomically: reg-to-reg
//! and branch instructions update local state, loads read the monolithic
//! memory instantaneously, stores update it instantaneously. Fences are
//! no-ops under SC.

use gam_isa::litmus::{LitmusTest, Observation, Outcome};
use gam_isa::{Instruction, Operand, Program, Reg, ThreadProgram, Value};

use crate::codec;
use crate::footprint;
use crate::machine::{AbstractMachine, Action, Footprint, LabeledMachine};
use crate::mem::{Memory, RegFile};

/// Sequential per-processor state: a register file and a program counter.
#[derive(Debug, PartialEq, Eq, Hash, Default)]
pub struct SeqProcState {
    /// Register file (registers not present hold zero).
    pub regs: RegFile,
    /// Index of the next instruction to execute.
    pub pc: usize,
}

// Hand-written so `clone_from` reuses the register file's buffer.
impl Clone for SeqProcState {
    fn clone(&self) -> Self {
        SeqProcState { regs: self.regs.clone(), pc: self.pc }
    }

    fn clone_from(&mut self, source: &Self) {
        self.regs.clone_from(&source.regs);
        self.pc = source.pc;
    }
}

impl SeqProcState {
    /// Reads a register (zero if never written).
    #[must_use]
    pub fn reg(&self, reg: Reg) -> Value {
        self.regs.read(reg)
    }

    /// Evaluates an operand against the register file.
    #[must_use]
    pub fn operand(&self, operand: &Operand) -> Value {
        match operand {
            Operand::Imm(v) => *v,
            Operand::Reg(r) => self.reg(*r),
        }
    }
}

/// Resolves the next program counter of a sequentially executed instruction,
/// returning `(new_pc, Some((reg, value)))` for register writes.
pub(crate) fn next_pc(
    thread: &ThreadProgram,
    pc: usize,
    taken: bool,
    instr: &Instruction,
) -> usize {
    if let Instruction::Branch { target, .. } = instr {
        if taken {
            return thread.resolve_label(target).unwrap_or(thread.len());
        }
    }
    pc + 1
}

/// The SC machine for one litmus test.
#[derive(Debug, Clone)]
pub struct ScMachine {
    program: Program,
    initial_memory: Memory,
    observed: Vec<Observation>,
    /// `suffix[proc][pc]`: the memory accesses the thread can still perform
    /// (drives the explorer's footprint-based partial-order reduction).
    suffix: Vec<Vec<Footprint>>,
}

/// A configuration of the SC machine.
#[derive(Debug, PartialEq, Eq, Hash)]
pub struct ScState {
    /// The monolithic memory.
    pub memory: Memory,
    /// Per-processor sequential state.
    pub procs: Vec<SeqProcState>,
}

// Hand-written so `clone_from` reuses every nested buffer (successor pool).
impl Clone for ScState {
    fn clone(&self) -> Self {
        ScState { memory: self.memory.clone(), procs: self.procs.clone() }
    }

    fn clone_from(&mut self, source: &Self) {
        self.memory.clone_from(&source.memory);
        crate::mem::clone_vec_from(&mut self.procs, &source.procs);
    }
}

impl crate::arena::ComposedState for ScState {
    type Mem = Memory;
    type Proc = SeqProcState;

    fn memory(&self) -> &Memory {
        &self.memory
    }

    fn memory_mut(&mut self) -> &mut Memory {
        &mut self.memory
    }

    fn procs(&self) -> &[SeqProcState] {
        &self.procs
    }

    fn procs_mut(&mut self) -> &mut [SeqProcState] {
        &mut self.procs
    }

    fn mem_bytes(mem: &Memory) -> usize {
        std::mem::size_of::<Memory>() + mem.approx_bytes()
    }

    fn proc_bytes(proc: &SeqProcState) -> usize {
        std::mem::size_of::<SeqProcState>() + proc.regs.approx_bytes()
    }

    fn encode_mem(mem: &Memory, out: &mut Vec<u8>) {
        mem.encode(out);
    }

    fn decode_mem(input: &mut &[u8]) -> Option<Memory> {
        Memory::decode(input)
    }

    fn encode_proc(proc: &SeqProcState, out: &mut Vec<u8>) {
        encode_seq_proc(proc, out);
    }

    fn decode_proc(input: &mut &[u8]) -> Option<SeqProcState> {
        decode_seq_proc(input)
    }
}

/// Serializes a [`SeqProcState`] for checkpoint snapshots (shared with the
/// TSO machine, whose per-proc state embeds one).
pub(crate) fn encode_seq_proc(proc: &SeqProcState, out: &mut Vec<u8>) {
    proc.regs.encode(out);
    codec::put_usize(out, proc.pc);
}

/// Inverse of [`encode_seq_proc`] (`None` on truncation).
pub(crate) fn decode_seq_proc(input: &mut &[u8]) -> Option<SeqProcState> {
    let regs = RegFile::decode(input)?;
    let pc = codec::take_usize(input)?;
    Some(SeqProcState { regs, pc })
}

impl ScMachine {
    /// Builds the SC machine for a litmus test.
    #[must_use]
    pub fn new(test: &LitmusTest) -> Self {
        let sets = footprint::instr_addr_sets(test);
        let suffix = footprint::suffix_footprints(test.program(), &sets);
        ScMachine {
            program: test.program().clone(),
            initial_memory: Memory::from_map(test.initial_memory()),
            observed: test.observed().to_vec(),
            suffix,
        }
    }
}

impl AbstractMachine for ScMachine {
    type State = ScState;

    fn initial_state(&self) -> ScState {
        ScState {
            memory: self.initial_memory.clone(),
            procs: vec![SeqProcState::default(); self.program.num_threads()],
        }
    }

    fn successors(&self, state: &ScState) -> Vec<ScState> {
        self.labeled_successors(state).into_iter().map(|(_, next)| next).collect()
    }

    fn is_final(&self, state: &ScState) -> bool {
        state.procs.iter().zip(self.program.threads()).all(|(proc, thread)| proc.pc >= thread.len())
    }

    fn outcome(&self, state: &ScState) -> Outcome {
        let mut outcome = Outcome::new();
        for observation in &self.observed {
            let value = match observation {
                Observation::Register(proc, reg) => state.procs[proc.index()].reg(*reg),
                Observation::Memory(loc) => state.memory.read(loc.address()),
            };
            outcome.set(*observation, value);
        }
        outcome
    }

    fn name(&self) -> &str {
        "SC abstract machine"
    }
}

impl LabeledMachine for ScMachine {
    fn future_footprint(&self, state: &ScState, thread: usize) -> Footprint {
        // In-order execution: the future accesses are exactly the remaining
        // program suffix (the whole thread when branches can jump back).
        let suffix = &self.suffix[thread];
        suffix[state.procs[thread].pc.min(suffix.len() - 1)].clone()
    }

    fn labeled_successors(&self, state: &ScState) -> Vec<(Action, ScState)> {
        let mut out = Vec::new();
        self.labeled_successors_into(state, &mut out);
        out
    }

    fn labeled_successors_into(&self, state: &ScState, out: &mut Vec<(Action, ScState)>) {
        self.successors_into_buf(state, crate::machine::SuccBuf::new(out));
    }

    fn labeled_successors_sparse_into(&self, state: &ScState, out: &mut Vec<(Action, ScState)>) {
        self.successors_into_buf(state, crate::machine::SuccBuf::new_sparse(out));
    }
}

impl ScMachine {
    /// The rule pass shared by the full and sparse successor entry points.
    fn successors_into_buf(&self, state: &ScState, mut buf: crate::machine::SuccBuf<'_, ScState>) {
        for (proc_index, proc) in state.procs.iter().enumerate() {
            let thread = &self.program.threads()[proc_index];
            if proc.pc >= thread.len() {
                continue;
            }
            let instr = &thread.instructions()[proc.pc];
            // The action id is the program counter of the executed
            // instruction: each processor has exactly one enabled step, and
            // another thread's independent action never moves this pc, so
            // the label is stable. Every rule input is read from the parent
            // state *before* the successor slot is taken from the pool.
            let id = proc.pc as u32;
            match instr {
                Instruction::Alu { dst, op, lhs, rhs } => {
                    let value = op.apply(proc.operand(lhs), proc.operand(rhs));
                    let next = buf.push_from(state, Action::local(proc_index, id));
                    let next_proc = &mut next.procs[proc_index];
                    next_proc.regs.write(*dst, value);
                    next_proc.pc += 1;
                }
                Instruction::Load { dst, addr } => {
                    let address = addr.evaluate(proc.operand(&addr.base)).raw();
                    let value = state.memory.read(address);
                    let next = buf.push_from(state, Action::read(proc_index, id, address));
                    let next_proc = &mut next.procs[proc_index];
                    next_proc.regs.write(*dst, value);
                    next_proc.pc += 1;
                }
                Instruction::Store { addr, data } => {
                    let address = addr.evaluate(proc.operand(&addr.base)).raw();
                    let value = proc.operand(data);
                    let next = buf.push_from(state, Action::commit(proc_index, id, address));
                    next.memory.write(address, value);
                    next.procs[proc_index].pc += 1;
                }
                Instruction::Fence { .. } => {
                    let next = buf.push_from(state, Action::fence(proc_index, id));
                    next.procs[proc_index].pc += 1;
                }
                Instruction::Branch { cond, lhs, rhs, .. } => {
                    let taken = cond.holds(proc.operand(lhs), proc.operand(rhs));
                    let target = next_pc(thread, proc.pc, taken, instr);
                    let next = buf.push_from(state, Action::local(proc_index, id));
                    next.procs[proc_index].pc = target;
                }
            }
        }
        buf.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::Explorer;
    use gam_isa::litmus::library;
    use gam_isa::{Addr, BranchCond, Loc, ProcId};

    #[test]
    fn dekker_under_sc_forbids_both_zero() {
        let test = library::dekker();
        let machine = ScMachine::new(&test);
        let exploration = Explorer::default().explore(&machine).unwrap();
        assert!(!exploration.outcomes.is_empty());
        assert!(
            !exploration.outcomes.iter().any(|o| test.condition().matched_by(o)),
            "SC forbids r1=0, r2=0"
        );
        // But the SC-permitted outcomes are present: at least one load sees 1.
        assert!(exploration.outcomes.len() >= 3);
    }

    #[test]
    fn mp_under_sc_forbids_stale_read() {
        let test = library::mp();
        let machine = ScMachine::new(&test);
        let exploration = Explorer::default().explore(&machine).unwrap();
        assert!(!exploration.outcomes.iter().any(|o| test.condition().matched_by(o)));
    }

    #[test]
    fn single_thread_with_branch_terminates() {
        // r1 = Ld [a]; if r1 == 0 goto end; St [b] 1; end:
        let a = Loc::new("a");
        let b = Loc::new("b");
        let mut t = gam_isa::ThreadProgram::builder(ProcId::new(0));
        t.load(Reg::new(1), Addr::loc(a))
            .branch(BranchCond::Eq, Operand::reg(Reg::new(1)), Operand::imm(0), "end")
            .store(Addr::loc(b), Operand::imm(1))
            .label("end");
        let program = Program::new(vec![t.build()]);
        let test = LitmusTest::builder("branchy", program)
            .init(a, 0u64)
            .observe_mem(b)
            .expect_mem(b, 1u64)
            .build();
        let machine = ScMachine::new(&test);
        let exploration = Explorer::default().explore(&machine).unwrap();
        // The branch is taken (r1 == 0), so the store is skipped and b stays 0.
        assert_eq!(exploration.outcomes.len(), 1);
        assert!(!exploration.outcomes.iter().any(|o| test.condition().matched_by(o)));
    }

    #[test]
    fn initial_memory_is_observed() {
        let a = Loc::new("a");
        let mut t = gam_isa::ThreadProgram::builder(ProcId::new(0));
        t.load(Reg::new(1), Addr::loc(a));
        let program = Program::new(vec![t.build()]);
        let test = LitmusTest::builder("init", program)
            .init(a, 5u64)
            .expect_reg(ProcId::new(0), Reg::new(1), 5u64)
            .build();
        let machine = ScMachine::new(&test);
        let exploration = Explorer::default().explore(&machine).unwrap();
        assert!(exploration.outcomes.iter().any(|o| test.condition().matched_by(o)));
    }

    #[test]
    fn labels_project_onto_successors() {
        use crate::machine::{ActionKind, LabeledMachine};
        let test = library::dekker();
        let machine = ScMachine::new(&test);
        let state = machine.initial_state();
        let labeled = machine.labeled_successors(&state);
        assert_eq!(
            labeled.iter().map(|(_, s)| s.clone()).collect::<Vec<_>>(),
            machine.successors(&state),
            "labeled successors must project onto the unlabeled interface"
        );
        // Dekker's first instruction on each thread is a store: both actions
        // are memory commits by distinct threads.
        assert_eq!(labeled.len(), 2);
        for (index, (action, _)) in labeled.iter().enumerate() {
            assert_eq!(action.thread as usize, index);
            assert_eq!(action.kind, ActionKind::MemoryCommit);
        }
        // enabled/apply round-trip through the default implementations.
        let enabled = machine.enabled(&state);
        assert_eq!(enabled.len(), 2);
        assert_eq!(machine.apply(&state, &enabled[0]).unwrap(), labeled[0].1);
    }

    #[test]
    fn seq_proc_state_defaults_to_zero() {
        let proc = SeqProcState::default();
        assert_eq!(proc.reg(Reg::new(3)), Value::ZERO);
        assert_eq!(proc.operand(&Operand::imm(9)), Value::new(9));
    }
}
