//! Static address-footprint precomputation for the machines'
//! [`LabeledMachine::future_footprint`](crate::machine::LabeledMachine::future_footprint)
//! implementations.
//!
//! The value-set dataflow pass of the axiomatic backend
//! ([`gam_axiomatic::StaticAddrs`]) bounds every dynamically computed
//! address to the set of values it can take in *any* execution. This module
//! projects that analysis into the shapes the operational machines need:
//! per-instruction address sets (for the GAM machine, whose ROB entries can
//! be squashed and re-executed with recomputed addresses) and per-pc suffix
//! footprints (for the in-order SC and TSO machines, whose future accesses
//! are exactly the remaining program suffix).

use gam_axiomatic::StaticAddrs;
use gam_isa::litmus::LitmusTest;
use gam_isa::{Instruction, Program};

use crate::machine::{AddrSet, Footprint};

/// The may-touch address set of every instruction: `sets[proc][idx]` bounds
/// the memory instruction at that position ([`AddrSet::Top`] when the
/// analysis could not, [`AddrSet::empty`] for non-memory instructions).
pub(crate) fn instr_addr_sets(test: &LitmusTest) -> Vec<Vec<AddrSet>> {
    let analysis = StaticAddrs::analyze(test);
    test.program()
        .threads()
        .iter()
        .enumerate()
        .map(|(proc, thread)| {
            thread
                .instructions()
                .iter()
                .enumerate()
                .map(|(idx, instr)| {
                    if instr.is_load() || instr.is_store() {
                        match analysis.possible_addresses(proc, idx) {
                            Some(set) => AddrSet::Set(set.clone()),
                            None => AddrSet::Top,
                        }
                    } else {
                        AddrSet::empty()
                    }
                })
                .collect()
        })
        .collect()
}

/// Adds one instruction's may-touch set to a footprint.
fn absorb(footprint: &mut Footprint, instr: &Instruction, set: &AddrSet) {
    if instr.is_load() {
        footprint.reads.union_with(set);
    } else if instr.is_store() {
        footprint.writes.union_with(set);
    }
}

/// Per-thread suffix footprints for in-order machines: `suffix[proc][pc]`
/// covers every memory access the thread can still perform with its program
/// counter at `pc` (index `len` is the finished thread's empty footprint).
///
/// A branchy *thread* can jump backwards, so its every unfinished pc gets
/// the whole thread's footprint instead of the straight-line suffix;
/// branch-free threads keep their precise suffixes regardless of what the
/// other threads do.
pub(crate) fn suffix_footprints(program: &Program, sets: &[Vec<AddrSet>]) -> Vec<Vec<Footprint>> {
    program
        .threads()
        .iter()
        .enumerate()
        .map(|(proc, thread)| {
            let len = thread.len();
            let mut out = vec![Footprint::empty(); len + 1];
            if thread.has_branches() {
                let mut whole = Footprint::empty();
                for (idx, instr) in thread.instructions().iter().enumerate() {
                    absorb(&mut whole, instr, &sets[proc][idx]);
                }
                for slot in out.iter_mut().take(len) {
                    slot.clone_from(&whole);
                }
            } else {
                for idx in (0..len).rev() {
                    let mut footprint = out[idx + 1].clone();
                    absorb(&mut footprint, &thread.instructions()[idx], &sets[proc][idx]);
                    out[idx] = footprint;
                }
            }
            out
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gam_isa::litmus::library;

    #[test]
    fn suffixes_shrink_toward_the_end() {
        // mp producer: St [a] 1; St [f] 1 — the suffix at pc 0 writes both
        // locations, at pc 1 only f, at pc 2 nothing.
        let test = library::mp();
        let sets = instr_addr_sets(&test);
        let suffix = suffix_footprints(test.program(), &sets);
        assert!(!matches!(suffix[0][0].writes, AddrSet::Top));
        let writes_at = |pc: usize| match &suffix[0][pc].writes {
            AddrSet::Set(set) => set.len(),
            AddrSet::Top => usize::MAX,
        };
        assert_eq!(writes_at(0), 2);
        assert_eq!(writes_at(1), 1);
        assert_eq!(writes_at(2), 0);
        assert!(matches!(&suffix[0][2].reads, AddrSet::Set(s) if s.is_empty()));
    }

    #[test]
    fn dependent_addresses_are_bounded_by_the_value_sets() {
        // rsw's consumer chases two artificial address dependencies; the
        // value-set analysis pins both dependent loads to their single
        // possible address, so the whole-thread footprint is a finite set.
        let test = library::rsw();
        let sets = instr_addr_sets(&test);
        let suffix = suffix_footprints(test.program(), &sets);
        // The artificial dependency `dst = loc + dep - dep` is evaluated
        // set-pointwise, so the bound is a small superset of {b, c, a}
        // rather than exactly those three — what matters for the reduction
        // is that it is finite and contains the true addresses.
        match &suffix[1][0].reads {
            AddrSet::Set(reads) => {
                assert!(reads.len() < 8, "small finite bound, got {reads:?}");
                for loc in ["a", "b", "c"] {
                    let addr = gam_isa::Loc::new(loc).address();
                    assert!(reads.contains(&addr), "{loc} must be covered");
                }
            }
            AddrSet::Top => panic!("the dependent loads must be bounded"),
        }
    }
}
