//! Compact, clone-friendly containers for machine-state components.
//!
//! The abstract machines clone their state once per successor, thousands of
//! times per exploration, so the state's containers dominate the explorer's
//! constant factor. `BTreeMap` (one allocation per node, no `clone_from`
//! reuse) is replaced by sorted flat vectors: a clone is a single `memcpy`
//! into one allocation, `Clone::clone_from` reuses the destination's buffer
//! outright (the explorer's successor pool relies on this), and lookups are
//! binary searches over a handful of entries — litmus-scale states have 2–8
//! locations and registers.

use gam_isa::{Reg, Value};

use crate::codec;

/// Element-wise `clone_from` for vectors: reuses the destination's buffer
/// *and* every surviving element's own allocations. The machine states'
/// hand-written `Clone` impls use this for their per-processor vectors.
pub(crate) fn clone_vec_from<T: Clone>(dst: &mut Vec<T>, src: &[T]) {
    dst.truncate(src.len());
    let reused = dst.len();
    for (d, s) in dst.iter_mut().zip(src) {
        d.clone_from(s);
    }
    dst.extend(src[reused..].iter().cloned());
}

/// The monolithic shared memory: address/value pairs sorted by address.
///
/// Absent addresses read as [`Value::ZERO`], matching the paper's
/// "initially 0" convention.
#[derive(Debug, PartialEq, Eq, Hash, Default)]
pub struct Memory {
    cells: Vec<(u64, Value)>,
}

// Hand-written so `clone_from` reuses the destination's buffer (a derived
// `Clone` falls back to `*self = source.clone()`, reallocating every time).
impl Clone for Memory {
    fn clone(&self) -> Self {
        Memory { cells: self.cells.clone() }
    }

    fn clone_from(&mut self, source: &Self) {
        self.cells.clear();
        self.cells.extend_from_slice(&source.cells);
    }
}

impl Memory {
    /// An empty memory (every address reads zero).
    #[must_use]
    pub fn new() -> Self {
        Memory::default()
    }

    /// Builds a memory from the litmus test's initial-value map.
    #[must_use]
    pub fn from_map(map: &std::collections::BTreeMap<u64, Value>) -> Self {
        // BTreeMap iteration is already address-sorted.
        Memory { cells: map.iter().map(|(&addr, &value)| (addr, value)).collect() }
    }

    /// Reads an address (zero if never written).
    #[must_use]
    pub fn read(&self, addr: u64) -> Value {
        match self.cells.binary_search_by_key(&addr, |&(a, _)| a) {
            Ok(index) => self.cells[index].1,
            Err(_) => Value::ZERO,
        }
    }

    /// Writes an address.
    pub fn write(&mut self, addr: u64, value: Value) {
        match self.cells.binary_search_by_key(&addr, |&(a, _)| a) {
            Ok(index) => self.cells[index].1 = value,
            Err(index) => self.cells.insert(index, (addr, value)),
        }
    }

    /// Number of addresses ever written (or initialized).
    #[must_use]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Is the memory empty (all addresses zero)?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The populated `(address, value)` pairs in address order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, Value)> + '_ {
        self.cells.iter().copied()
    }

    /// Approximate heap footprint in bytes (arena-occupancy accounting).
    #[must_use]
    pub fn approx_bytes(&self) -> usize {
        self.cells.len() * std::mem::size_of::<(u64, Value)>()
    }

    /// Serializes the populated cells (checkpoint snapshots).
    pub(crate) fn encode(&self, out: &mut Vec<u8>) {
        codec::put_u32(out, u32::try_from(self.cells.len()).expect("cell count fits u32"));
        for &(addr, value) in &self.cells {
            codec::put_u64(out, addr);
            codec::put_u64(out, value.raw());
        }
    }

    /// Deserializes a [`Memory::encode`] payload (`None` on truncation).
    pub(crate) fn decode(input: &mut &[u8]) -> Option<Self> {
        let len = codec::take_u32(input)? as usize;
        let mut cells = Vec::with_capacity(len);
        for _ in 0..len {
            let addr = codec::take_u64(input)?;
            let value = Value::new(codec::take_u64(input)?);
            cells.push((addr, value));
        }
        Some(Memory { cells })
    }
}

/// A register file: register/value pairs sorted by register.
///
/// Registers never written read as [`Value::ZERO`] (the initial register
/// state of every litmus thread).
#[derive(Debug, PartialEq, Eq, Hash, Default)]
pub struct RegFile {
    regs: Vec<(Reg, Value)>,
}

// Hand-written for the same buffer-reuse reason as [`Memory`]'s `Clone`.
impl Clone for RegFile {
    fn clone(&self) -> Self {
        RegFile { regs: self.regs.clone() }
    }

    fn clone_from(&mut self, source: &Self) {
        self.regs.clear();
        self.regs.extend_from_slice(&source.regs);
    }
}

impl RegFile {
    /// An empty register file (every register reads zero).
    #[must_use]
    pub fn new() -> Self {
        RegFile::default()
    }

    /// Reads a register (zero if never written).
    #[must_use]
    pub fn read(&self, reg: Reg) -> Value {
        match self.regs.binary_search_by_key(&reg, |&(r, _)| r) {
            Ok(index) => self.regs[index].1,
            Err(_) => Value::ZERO,
        }
    }

    /// Writes a register.
    pub fn write(&mut self, reg: Reg, value: Value) {
        match self.regs.binary_search_by_key(&reg, |&(r, _)| r) {
            Ok(index) => self.regs[index].1 = value,
            Err(index) => self.regs.insert(index, (reg, value)),
        }
    }

    /// Number of registers ever written.
    #[must_use]
    pub fn len(&self) -> usize {
        self.regs.len()
    }

    /// Is the register file empty?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.regs.is_empty()
    }

    /// The populated `(register, value)` pairs in register order.
    pub fn iter(&self) -> impl Iterator<Item = (Reg, Value)> + '_ {
        self.regs.iter().copied()
    }

    /// Approximate heap footprint in bytes (arena-occupancy accounting).
    #[must_use]
    pub fn approx_bytes(&self) -> usize {
        self.regs.len() * std::mem::size_of::<(Reg, Value)>()
    }

    /// Serializes the populated registers (checkpoint snapshots).
    pub(crate) fn encode(&self, out: &mut Vec<u8>) {
        codec::put_u32(out, u32::try_from(self.regs.len()).expect("reg count fits u32"));
        for &(reg, value) in &self.regs {
            codec::put_u32(out, reg.index());
            codec::put_u64(out, value.raw());
        }
    }

    /// Deserializes a [`RegFile::encode`] payload (`None` on truncation).
    pub(crate) fn decode(input: &mut &[u8]) -> Option<Self> {
        let len = codec::take_u32(input)? as usize;
        let mut regs = Vec::with_capacity(len);
        for _ in 0..len {
            let reg = Reg::new(codec::take_u32(input)?);
            let value = Value::new(codec::take_u64(input)?);
            regs.push((reg, value));
        }
        Some(RegFile { regs })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_reads_default_to_zero_and_writes_stay_sorted() {
        let mut memory = Memory::new();
        assert!(memory.is_empty());
        assert_eq!(memory.read(100), Value::ZERO);
        memory.write(200, Value::new(2));
        memory.write(100, Value::new(1));
        memory.write(300, Value::new(3));
        memory.write(200, Value::new(9)); // overwrite
        assert_eq!(memory.len(), 3);
        assert_eq!(memory.read(100), Value::new(1));
        assert_eq!(memory.read(200), Value::new(9));
        assert_eq!(memory.read(300), Value::new(3));
        assert_eq!(memory.read(150), Value::ZERO);
        let pairs: Vec<(u64, Value)> = memory.iter().collect();
        assert_eq!(
            pairs,
            vec![(100, Value::new(1)), (200, Value::new(9)), (300, Value::new(3))],
            "iteration is address-sorted"
        );
        assert!(memory.approx_bytes() >= 3 * 16);
    }

    #[test]
    fn memory_from_map_round_trips() {
        let mut map = std::collections::BTreeMap::new();
        map.insert(8u64, Value::new(5));
        map.insert(4u64, Value::new(7));
        let memory = Memory::from_map(&map);
        assert_eq!(memory.read(8), Value::new(5));
        assert_eq!(memory.read(4), Value::new(7));
        assert_eq!(memory.len(), 2);
        // Equal contents hash and compare equal regardless of write order.
        let mut rebuilt = Memory::new();
        rebuilt.write(8, Value::new(5));
        rebuilt.write(4, Value::new(7));
        assert_eq!(memory, rebuilt);
    }

    #[test]
    fn regfile_reads_default_to_zero() {
        let mut regs = RegFile::new();
        assert!(regs.is_empty());
        assert_eq!(regs.read(Reg::new(1)), Value::ZERO);
        regs.write(Reg::new(2), Value::new(4));
        regs.write(Reg::new(1), Value::new(3));
        regs.write(Reg::new(2), Value::new(8));
        assert_eq!(regs.len(), 2);
        assert_eq!(regs.read(Reg::new(1)), Value::new(3));
        assert_eq!(regs.read(Reg::new(2)), Value::new(8));
        assert!(regs.approx_bytes() > 0);
    }

    #[test]
    fn clone_from_reuses_the_buffer() {
        let mut memory = Memory::new();
        for addr in 0..8 {
            memory.write(addr * 8, Value::new(addr));
        }
        let mut scratch = Memory::new();
        scratch.clone_from(&memory);
        assert_eq!(scratch, memory);
        let capacity_before = scratch.cells.capacity();
        let mut smaller = Memory::new();
        smaller.write(0, Value::new(1));
        scratch.clone_from(&smaller);
        assert_eq!(scratch, smaller);
        assert!(scratch.cells.capacity() >= capacity_before, "clone_from keeps the allocation");
    }
}
