//! Random-walk execution of an abstract machine, and the deterministic
//! random-program generator behind the committed throughput corpus.
//!
//! Where the exhaustive explorer computes the *complete* outcome set, the
//! random walker samples executions: from the initial state it repeatedly
//! picks a uniformly random enabled rule until the machine reaches a final
//! state. Sampling is useful for quick demonstrations, for differential
//! fuzzing against the axiomatic checker, and for estimating how often a
//! relaxed behaviour actually shows up.
//!
//! [`stress_tests`] generates whole litmus *programs* instead: seeded,
//! straight-line, multi-threaded tests with dependent addresses — the
//! source of `tests/corpus-stress/` (see `gam gen-corpus` and `gam bench`),
//! which gives throughput measurements a workload an order of magnitude
//! bigger than the 29-test paper library.

use std::collections::BTreeMap;

use gam_isa::litmus::{LitmusTest, Outcome};
use gam_isa::prelude::{Addr, AluOp, FenceKind, Loc, Operand, ProcId, Program, Reg, ThreadProgram};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::machine::AbstractMachine;

/// Generates `count` deterministic random litmus tests from `seed`.
///
/// The programs are built for cross-backend throughput measurement, so
/// they stay inside every backend's envelope: straight-line (the axiomatic
/// checker rejects branches), at most twelve shared-memory events per test
/// (its event limit is sixteen), two or three threads of two to four
/// instructions over two locations. The instruction mix mirrors the
/// differential proptests: immediate stores, stores of a location's
/// *address* (so dependent loads can chase it), direct loads, address-
/// dependent load pairs, register-to-register arithmetic and all four
/// basic fences. Every loaded register and both locations are observed;
/// each test carries an arbitrary exists-condition over one observed
/// register so corpus expectations are non-trivial.
///
/// The same `(seed, count)` always yields byte-identical tests — the
/// committed corpus can be regenerated and diffed in CI.
#[must_use]
pub fn stress_tests(seed: u64, count: usize) -> Vec<LitmusTest> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count).map(|index| stress_test(&mut rng, index)).collect()
}

fn stress_test(rng: &mut StdRng, index: usize) -> LitmusTest {
    let locations = [Loc::new("x"), Loc::new("y")];
    let fences = [FenceKind::LL, FenceKind::LS, FenceKind::SL, FenceKind::SS];
    let threads = 2 + rng.gen_range(0..2usize);
    // Shared-memory event budget across the whole test (axiomatic limit is
    // 16; dependent load pairs cost two events each).
    let mut mem_events = 12usize;
    let mut programs = Vec::new();
    let mut observed: Vec<(ProcId, Reg)> = Vec::new();
    for proc_index in 0..threads {
        let proc = ProcId::new(proc_index);
        let mut builder = ThreadProgram::builder(proc);
        let mut next_reg = 1u32;
        let steps = 2 + rng.gen_range(0..3usize);
        for _ in 0..steps {
            let choice = if mem_events == 0 {
                4 + rng.gen_range(0..2usize)
            } else {
                rng.gen_range(0..6usize)
            };
            match choice {
                0 => {
                    // Store an immediate.
                    let loc = locations[rng.gen_range(0..2usize)];
                    builder.store(Addr::loc(loc), Operand::imm(1 + rng.gen_range(0..3u64)));
                    mem_events -= 1;
                }
                1 => {
                    // Store a location's address, feeding dependent loads.
                    let loc = locations[rng.gen_range(0..2usize)];
                    let target = locations[rng.gen_range(0..2usize)];
                    builder.store(Addr::loc(loc), Operand::loc(target));
                    mem_events -= 1;
                }
                2 => {
                    // A direct load.
                    let reg = Reg::new(next_reg);
                    next_reg += 1;
                    builder.load(reg, Addr::loc(locations[rng.gen_range(0..2usize)]));
                    observed.push((proc, reg));
                    mem_events -= 1;
                }
                3 if mem_events >= 2 => {
                    // An address-dependent load pair.
                    let pointer = Reg::new(next_reg);
                    let value = Reg::new(next_reg + 1);
                    next_reg += 2;
                    builder.load(pointer, Addr::loc(locations[rng.gen_range(0..2usize)]));
                    builder.load(value, Addr::reg(pointer));
                    observed.push((proc, pointer));
                    observed.push((proc, value));
                    mem_events -= 2;
                }
                3 | 4 => {
                    builder.fence(fences[rng.gen_range(0..4usize)]);
                }
                _ => {
                    // Register arithmetic over the previous register (or an
                    // immediate when none exists yet).
                    let dst = Reg::new(next_reg);
                    next_reg += 1;
                    let src = if next_reg > 2 {
                        Operand::reg(Reg::new(next_reg - 2))
                    } else {
                        Operand::imm(rng.gen_range(0..4u64))
                    };
                    builder.alu(dst, AluOp::Add, src, Operand::imm(rng.gen_range(0..3u64)));
                }
            }
        }
        programs.push(builder.build());
    }
    let program = Program::new(programs);
    let mut builder = LitmusTest::builder(format!("stress-{index:03}"), program)
        .observe_mem(locations[0])
        .observe_mem(locations[1]);
    for &(proc, reg) in &observed {
        builder = builder.observe_reg(proc, reg);
    }
    // A non-trivial exists-condition over one observed register (or a
    // location when no thread happened to load anything).
    if let Some(&(proc, reg)) = observed.first() {
        builder = builder.expect_reg(proc, reg, rng.gen_range(0..3u64));
    } else {
        builder = builder.expect_mem(locations[0], rng.gen_range(0..3u64));
    }
    builder.build()
}

/// Generates `count` deterministic *big* litmus tests from `seed`: the
/// `tests/corpus-big/` tier behind the memory-budget evaluation.
///
/// Where [`stress_tests`] stays litmus-sized (hundreds to a few thousand
/// reachable states), these programs are built to blow past a RAM-resident
/// state cap: three threads of eight straight-line instructions each — three
/// shared-memory events over three locations plus a five-instruction ALU
/// tail. The memory-event count stays small (nine against the axiomatic
/// checker's limit of sixteen, no branches) so the axiomatic witness search
/// stays tractable under every model; the ALU tails cost the axiomatic
/// enumeration *nothing* while multiplying the machines' reorder-buffer
/// interleavings, so the unreduced operational state space still runs into
/// the tens of thousands with an accounted footprint of megabytes — enough
/// that a single-digit-megabyte memory budget trips mid-exploration and the
/// spill/checkpoint machinery has something real to chew on, while an
/// *unbudgeted* sequential run finishes in well under a second.
///
/// The same `(seed, count)` always yields byte-identical tests, and the
/// condition of interest is always reachable under SC (taken from the
/// one-thread-after-another sequential execution), so every model's verdict
/// is a fast "allowed"-by-witness rather than an exhaustive "forbidden".
#[must_use]
pub fn big_tests(seed: u64, count: usize) -> Vec<LitmusTest> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count).map(|index| big_test(&mut rng, index)).collect()
}

fn big_test(rng: &mut StdRng, index: usize) -> LitmusTest {
    /// One shared-memory event, kept for the sequential replay below.
    enum Ev {
        Store(usize, u64),
        Load(Reg, usize),
    }
    let locations = [Loc::new("x"), Loc::new("y"), Loc::new("z")];
    let threads = 3usize;
    let mut programs = Vec::new();
    let mut observed: Vec<(ProcId, Reg)> = Vec::new();
    let mut events: Vec<Vec<Ev>> = Vec::new();
    for proc_index in 0..threads {
        let proc = ProcId::new(proc_index);
        let mut builder = ThreadProgram::builder(proc);
        let mut thread_events = Vec::new();
        let mut next_reg = 1u32;
        // Three memory events per thread: the axiomatic enumeration grows
        // combinatorially in these, so the mix is fixed-size and only the
        // targets/values are randomized.
        for event in 0..3usize {
            // Alternate store/load so every thread both produces and
            // observes; a store-only or load-only thread collapses the space.
            let loc_index = rng.gen_range(0..3usize);
            let loc = locations[loc_index];
            if event % 2 == proc_index % 2 {
                let value = 1 + rng.gen_range(0..3u64);
                builder.store(Addr::loc(loc), Operand::imm(value));
                thread_events.push(Ev::Store(loc_index, value));
            } else {
                let reg = Reg::new(next_reg);
                next_reg += 1;
                builder.load(reg, Addr::loc(loc));
                observed.push((proc, reg));
                thread_events.push(Ev::Load(reg, loc_index));
            }
        }
        // A five-instruction ALU tail keeps the ROBs busy without adding
        // memory events: each extra in-flight instruction multiplies the
        // machines' interleavings but costs the axiomatic checker nothing.
        for _ in 0..5usize {
            let dst = Reg::new(next_reg);
            let src = if next_reg > 1 {
                Operand::reg(Reg::new(next_reg - 1))
            } else {
                Operand::imm(rng.gen_range(0..4u64))
            };
            builder.alu(dst, AluOp::Add, src, Operand::imm(rng.gen_range(0..3u64)));
            next_reg += 1;
        }
        programs.push(builder.build());
        events.push(thread_events);
    }
    let program = Program::new(programs);
    let mut builder = LitmusTest::builder(format!("big-{index:03}"), program)
        .observe_mem(locations[0])
        .observe_mem(locations[1])
        .observe_mem(locations[2]);
    for &(proc, reg) in &observed {
        builder = builder.observe_reg(proc, reg);
    }
    // The condition of interest must be *allowed* under every model:
    // `check` proves "allowed" with one witness but must exhaust the whole
    // enumeration space to prove "forbidden", which is intractable at
    // fifteen events. Replaying the one-thread-after-another sequential
    // execution and expecting an observed register's value from it
    // guarantees an SC-consistent witness — and SC-allowed implies allowed
    // under every weaker model, so each backend's check terminates fast.
    let mut memory = [0u64; 3];
    let mut sequential: Vec<((ProcId, Reg), u64)> = Vec::new();
    for (proc_index, thread) in events.iter().enumerate() {
        for event in thread {
            match *event {
                Ev::Store(loc_index, value) => memory[loc_index] = value,
                Ev::Load(reg, loc_index) => {
                    sequential.push(((ProcId::new(proc_index), reg), memory[loc_index]));
                }
            }
        }
    }
    let ((proc, reg), value) = sequential[rng.gen_range(0..sequential.len())];
    builder.expect_reg(proc, reg, value).build()
}

/// A seeded random-walk executor.
#[derive(Debug, Clone)]
pub struct RandomWalker {
    rng: StdRng,
    max_steps: usize,
}

impl RandomWalker {
    /// Creates a walker with the given seed and the default step bound.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        RandomWalker { rng: StdRng::seed_from_u64(seed), max_steps: 100_000 }
    }

    /// Sets the maximum number of steps per walk (guards against machines
    /// with livelocks, e.g. programs with infinite loops).
    #[must_use]
    pub fn with_max_steps(mut self, max_steps: usize) -> Self {
        self.max_steps = max_steps;
        self
    }

    /// Runs one random execution and returns its outcome, or `None` if the
    /// step bound was reached before a final state.
    pub fn run_once<M: AbstractMachine>(&mut self, machine: &M) -> Option<Outcome> {
        let mut state = machine.initial_state();
        for _ in 0..self.max_steps {
            let successors = machine.successors(&state);
            if successors.is_empty() {
                return machine.is_final(&state).then(|| machine.outcome(&state));
            }
            let choice = self.rng.gen_range(0..successors.len());
            state = successors.into_iter().nth(choice).expect("index in range");
        }
        None
    }

    /// Runs `runs` random executions and returns a histogram of outcomes.
    pub fn sample<M: AbstractMachine>(
        &mut self,
        machine: &M,
        runs: usize,
    ) -> BTreeMap<Outcome, usize> {
        let mut histogram = BTreeMap::new();
        for _ in 0..runs {
            if let Some(outcome) = self.run_once(machine) {
                *histogram.entry(outcome).or_insert(0) += 1;
            }
        }
        histogram
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::Explorer;
    use crate::gam::GamMachine;
    use crate::sc::ScMachine;
    use gam_isa::litmus::library;

    #[test]
    fn sampling_is_deterministic_for_a_fixed_seed() {
        let test = library::dekker();
        let machine = ScMachine::new(&test);
        let h1 = RandomWalker::new(7).sample(&machine, 50);
        let h2 = RandomWalker::new(7).sample(&machine, 50);
        assert_eq!(h1, h2);
        let h3 = RandomWalker::new(8).sample(&machine, 50);
        // Different seeds almost surely give a different histogram; both must
        // still only contain SC-allowed outcomes.
        assert!(h1.keys().all(|o| !test.condition().matched_by(o)));
        assert!(h3.keys().all(|o| !test.condition().matched_by(o)));
    }

    #[test]
    fn sampled_outcomes_are_a_subset_of_explored_outcomes() {
        let test = library::mp_fence_ss_only();
        let machine = GamMachine::new(&test);
        let explored = Explorer::default().explore(&machine).unwrap().outcomes;
        let sampled = RandomWalker::new(42).sample(&machine, 200);
        for outcome in sampled.keys() {
            assert!(explored.contains(outcome), "sampled outcome {outcome} not in explored set");
        }
        let total: usize = sampled.values().sum();
        assert_eq!(total, 200, "every walk of a finite litmus test terminates");
    }

    #[test]
    fn stress_tests_are_deterministic_and_inside_backend_limits() {
        let a = super::stress_tests(42, 20);
        let b = super::stress_tests(42, 20);
        assert_eq!(a, b, "the same seed regenerates byte-identical tests");
        let c = super::stress_tests(43, 20);
        assert_ne!(a, c, "a different seed changes the corpus");
        for (index, test) in a.iter().enumerate() {
            assert_eq!(test.name(), format!("stress-{index:03}"));
            assert!(!test.program().has_branches(), "axiomatic compatibility");
            let events: usize = test
                .program()
                .threads()
                .iter()
                .map(gam_isa::ThreadProgram::memory_instruction_count)
                .sum();
            assert!(events <= 12, "{}: {events} memory events", test.name());
            assert!(!test.observed().is_empty());
            // Every test explores cleanly on the operational machines.
            let machine = crate::gam::GamMachine::new(test);
            assert!(Explorer::default().explore(&machine).is_ok(), "{}", test.name());
        }
    }

    #[test]
    fn step_bound_terminates_walks() {
        let test = library::dekker();
        let machine = GamMachine::new(&test);
        let mut walker = RandomWalker::new(1).with_max_steps(1);
        assert_eq!(walker.run_once(&machine), None);
    }
}
