//! Random-walk execution of an abstract machine.
//!
//! Where the exhaustive explorer computes the *complete* outcome set, the
//! random walker samples executions: from the initial state it repeatedly
//! picks a uniformly random enabled rule until the machine reaches a final
//! state. Sampling is useful for quick demonstrations, for differential
//! fuzzing against the axiomatic checker, and for estimating how often a
//! relaxed behaviour actually shows up.

use std::collections::BTreeMap;

use gam_isa::litmus::Outcome;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::machine::AbstractMachine;

/// A seeded random-walk executor.
#[derive(Debug, Clone)]
pub struct RandomWalker {
    rng: StdRng,
    max_steps: usize,
}

impl RandomWalker {
    /// Creates a walker with the given seed and the default step bound.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        RandomWalker { rng: StdRng::seed_from_u64(seed), max_steps: 100_000 }
    }

    /// Sets the maximum number of steps per walk (guards against machines
    /// with livelocks, e.g. programs with infinite loops).
    #[must_use]
    pub fn with_max_steps(mut self, max_steps: usize) -> Self {
        self.max_steps = max_steps;
        self
    }

    /// Runs one random execution and returns its outcome, or `None` if the
    /// step bound was reached before a final state.
    pub fn run_once<M: AbstractMachine>(&mut self, machine: &M) -> Option<Outcome> {
        let mut state = machine.initial_state();
        for _ in 0..self.max_steps {
            let successors = machine.successors(&state);
            if successors.is_empty() {
                return machine.is_final(&state).then(|| machine.outcome(&state));
            }
            let choice = self.rng.gen_range(0..successors.len());
            state = successors.into_iter().nth(choice).expect("index in range");
        }
        None
    }

    /// Runs `runs` random executions and returns a histogram of outcomes.
    pub fn sample<M: AbstractMachine>(
        &mut self,
        machine: &M,
        runs: usize,
    ) -> BTreeMap<Outcome, usize> {
        let mut histogram = BTreeMap::new();
        for _ in 0..runs {
            if let Some(outcome) = self.run_once(machine) {
                *histogram.entry(outcome).or_insert(0) += 1;
            }
        }
        histogram
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::Explorer;
    use crate::gam::GamMachine;
    use crate::sc::ScMachine;
    use gam_isa::litmus::library;

    #[test]
    fn sampling_is_deterministic_for_a_fixed_seed() {
        let test = library::dekker();
        let machine = ScMachine::new(&test);
        let h1 = RandomWalker::new(7).sample(&machine, 50);
        let h2 = RandomWalker::new(7).sample(&machine, 50);
        assert_eq!(h1, h2);
        let h3 = RandomWalker::new(8).sample(&machine, 50);
        // Different seeds almost surely give a different histogram; both must
        // still only contain SC-allowed outcomes.
        assert!(h1.keys().all(|o| !test.condition().matched_by(o)));
        assert!(h3.keys().all(|o| !test.condition().matched_by(o)));
    }

    #[test]
    fn sampled_outcomes_are_a_subset_of_explored_outcomes() {
        let test = library::mp_fence_ss_only();
        let machine = GamMachine::new(&test);
        let explored = Explorer::default().explore(&machine).unwrap().outcomes;
        let sampled = RandomWalker::new(42).sample(&machine, 200);
        for outcome in sampled.keys() {
            assert!(explored.contains(outcome), "sampled outcome {outcome} not in explored set");
        }
        let total: usize = sampled.values().sum();
        assert_eq!(total, 200, "every walk of a finite litmus test terminates");
    }

    #[test]
    fn step_bound_terminates_walks() {
        let test = library::dekker();
        let machine = GamMachine::new(&test);
        let mut walker = RandomWalker::new(1).with_max_steps(1);
        assert_eq!(walker.run_once(&machine), None);
    }
}
