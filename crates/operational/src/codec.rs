//! Little-endian byte codec primitives for spill segments and
//! intra-exploration checkpoint snapshots.
//!
//! Everything the explorer persists (arena components, id rows, frontier,
//! sleep sets) is encoded with these helpers: fixed-width little-endian
//! integers consumed from the front of a shrinking slice. Decoders return
//! `None` on truncated input instead of panicking — snapshot payloads travel
//! through CRC-framed storage, so corruption is detected a layer below, but
//! a version-skewed or hand-edited payload must still fail cleanly.

pub(crate) fn put_u8(out: &mut Vec<u8>, value: u8) {
    out.push(value);
}

pub(crate) fn put_u32(out: &mut Vec<u8>, value: u32) {
    out.extend_from_slice(&value.to_le_bytes());
}

pub(crate) fn put_u64(out: &mut Vec<u8>, value: u64) {
    out.extend_from_slice(&value.to_le_bytes());
}

pub(crate) fn put_usize(out: &mut Vec<u8>, value: usize) {
    put_u64(out, value as u64);
}

pub(crate) fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    put_u32(out, u32::try_from(bytes.len()).expect("chunk fits u32"));
    out.extend_from_slice(bytes);
}

pub(crate) fn take_u8(input: &mut &[u8]) -> Option<u8> {
    let (&first, rest) = input.split_first()?;
    *input = rest;
    Some(first)
}

pub(crate) fn take_u32(input: &mut &[u8]) -> Option<u32> {
    if input.len() < 4 {
        return None;
    }
    let (head, rest) = input.split_at(4);
    *input = rest;
    Some(u32::from_le_bytes(head.try_into().ok()?))
}

pub(crate) fn take_u64(input: &mut &[u8]) -> Option<u64> {
    if input.len() < 8 {
        return None;
    }
    let (head, rest) = input.split_at(8);
    *input = rest;
    Some(u64::from_le_bytes(head.try_into().ok()?))
}

pub(crate) fn take_usize(input: &mut &[u8]) -> Option<usize> {
    usize::try_from(take_u64(input)?).ok()
}

pub(crate) fn take_bytes<'a>(input: &mut &'a [u8]) -> Option<&'a [u8]> {
    let len = take_u32(input)? as usize;
    if input.len() < len {
        return None;
    }
    let (head, rest) = input.split_at(len);
    *input = rest;
    Some(head)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_and_rejects_truncation() {
        let mut out = Vec::new();
        put_u8(&mut out, 7);
        put_u32(&mut out, 0xDEAD_BEEF);
        put_u64(&mut out, u64::MAX - 1);
        put_usize(&mut out, 42);
        put_bytes(&mut out, b"chunk");
        let mut input = out.as_slice();
        assert_eq!(take_u8(&mut input), Some(7));
        assert_eq!(take_u32(&mut input), Some(0xDEAD_BEEF));
        assert_eq!(take_u64(&mut input), Some(u64::MAX - 1));
        assert_eq!(take_usize(&mut input), Some(42));
        assert_eq!(take_bytes(&mut input), Some(b"chunk".as_slice()));
        assert!(input.is_empty());

        let mut torn = &out[..out.len() - 3];
        take_u8(&mut torn);
        take_u32(&mut torn);
        take_u64(&mut torn);
        take_usize(&mut torn);
        assert_eq!(take_bytes(&mut torn), None, "truncated chunk is refused");
    }
}
