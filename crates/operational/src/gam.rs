//! The GAM abstract machine (Section IV-B, Figures 16 and 17 of the paper).
//!
//! Each processor owns a reorder buffer (ROB) and a PC register; all
//! processors share a monolithic memory. One step fires one rule on one
//! processor:
//!
//! * **Fetch** — speculatively fetch the next instruction (with branch-target
//!   prediction for branches);
//! * **Execute-Reg-to-Reg**, **Execute-Branch** — local computation; a
//!   mispredicted branch squashes every younger ROB entry;
//! * **Execute-Fence** — a `FenceXY` completes once all older type-X memory
//!   instructions are done;
//! * **Execute-Load** — a load searches older ROB entries for the first
//!   not-done same-address memory instruction: a not-done load stalls it
//!   (constraint SALdLd), a not-done store forwards its data when available
//!   (constraint SAStLd), otherwise the load reads the monolithic memory;
//! * **Compute-Store-Data**, **Execute-Store** — a store completes only when
//!   its address and data are known, all older branches are done, all older
//!   memory addresses are known and all older same-address accesses are done
//!   (constraints BrSt, AddrSt, SAMemSt);
//! * **Compute-Mem-Addr** — resolving a memory address squashes a younger
//!   same-address load that already executed (preserving LdVal/SAStLd, and
//!   SALdLd when the resolving instruction is itself a load).
//!
//! [`GamConfig::same_address_load_load`] switches the SALdLd enforcement on
//! (GAM) or off (GAM0), mirroring the two models' operational definitions.

use gam_isa::litmus::{LitmusTest, Observation, Outcome};
use gam_isa::{Instruction, MemAccessType, Operand, Program, Reg, ThreadProgram, Value};

use crate::codec;
use crate::footprint;
use crate::machine::{AbstractMachine, Action, Footprint, LabeledMachine, SuccBuf};
use crate::mem::Memory;

/// Rule tags packed into [`Action::id`] (`tag | rob_index << 3`) so that the
/// several rules concurrently enabled on one ROB entry get distinct labels.
mod tag {
    pub const FETCH: u32 = 0;
    pub const ALU: u32 = 1;
    pub const BRANCH: u32 = 2;
    pub const FENCE: u32 = 3;
    pub const LOAD: u32 = 4;
    pub const STORE_DATA: u32 = 5;
    pub const STORE: u32 = 6;
    pub const ADDR: u32 = 7;
}

/// Packs a rule tag and a per-thread ordinal (ROB index, or predicted pc for
/// fetches) into an action id.
fn act_id(rule: u32, ordinal: usize) -> u32 {
    rule | (ordinal as u32) << 3
}

/// Configuration of the GAM abstract machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GamConfig {
    /// Enforce the same-address load-load ordering constraint SALdLd
    /// (true = GAM, false = GAM0).
    pub same_address_load_load: bool,
    /// Resolve constant addresses and constant store data at fetch time.
    /// This is a pure state-space reduction: firing Compute-Mem-Addr /
    /// Compute-Store-Data immediately when they have no register inputs
    /// cannot change the reachable outcomes (no younger entries exist at
    /// fetch time, so no squash can be triggered, and making information
    /// available earlier never disables another rule).
    pub resolve_constants_at_fetch: bool,
}

impl Default for GamConfig {
    fn default() -> Self {
        GamConfig { same_address_load_load: true, resolve_constants_at_fetch: true }
    }
}

impl GamConfig {
    /// The configuration of the GAM operational model.
    #[must_use]
    pub fn gam() -> Self {
        GamConfig::default()
    }

    /// The configuration of the GAM0 operational model (no SALdLd).
    #[must_use]
    pub fn gam0() -> Self {
        GamConfig { same_address_load_load: false, ..GamConfig::default() }
    }
}

/// One reorder-buffer entry (Figure 16).
///
/// Deliberately `Copy` (all fields are plain words): a ROB clone is then a
/// single `memcpy`, and `Vec<RobEntry>::clone_from` reuses the
/// destination's buffer — the explorer's successor pool depends on both.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RobEntry {
    /// Index of the instruction in the thread program (its "PC").
    pub instr_index: usize,
    /// Has the instruction finished execution?
    pub done: bool,
    /// Execution result (load value, ALU result, store data once executed).
    pub result: Value,
    /// Is the memory address computed (loads and stores)?
    pub addr_avail: bool,
    /// The computed memory address.
    pub addr: u64,
    /// Is the store data computed (stores)?
    pub data_avail: bool,
    /// The computed store data.
    pub data: Value,
    /// Predicted next PC recorded at fetch time (branches).
    pub predicted_target: usize,
}

impl RobEntry {
    fn new(instr_index: usize) -> Self {
        RobEntry {
            instr_index,
            done: false,
            result: Value::ZERO,
            addr_avail: false,
            addr: 0,
            data_avail: false,
            data: Value::ZERO,
            predicted_target: instr_index + 1,
        }
    }
}

/// Per-processor state: the PC register and the ROB.
#[derive(Debug, PartialEq, Eq, Hash, Default)]
pub struct GamProcState {
    /// Address (instruction index) of the next instruction to fetch.
    pub pc: usize,
    /// The reorder buffer, oldest entry first.
    pub rob: Vec<RobEntry>,
}

// Hand-written so `clone_from` reuses the ROB's buffer (successor pooling).
impl Clone for GamProcState {
    fn clone(&self) -> Self {
        GamProcState { pc: self.pc, rob: self.rob.clone() }
    }

    fn clone_from(&mut self, source: &Self) {
        self.pc = source.pc;
        self.rob.clear();
        self.rob.extend_from_slice(&source.rob);
    }
}

/// A configuration of the GAM abstract machine.
#[derive(Debug, PartialEq, Eq, Hash)]
pub struct GamState {
    /// The monolithic memory.
    pub memory: Memory,
    /// Per-processor state.
    pub procs: Vec<GamProcState>,
}

// Hand-written so `clone_from` reuses every nested buffer: the explorer's
// successor pool turns steady-state expansion allocation-free through this.
impl Clone for GamState {
    fn clone(&self) -> Self {
        GamState { memory: self.memory.clone(), procs: self.procs.clone() }
    }

    fn clone_from(&mut self, source: &Self) {
        self.memory.clone_from(&source.memory);
        crate::mem::clone_vec_from(&mut self.procs, &source.procs);
    }
}

impl crate::arena::ComposedState for GamState {
    type Mem = Memory;
    type Proc = GamProcState;

    fn memory(&self) -> &Memory {
        &self.memory
    }

    fn memory_mut(&mut self) -> &mut Memory {
        &mut self.memory
    }

    fn procs(&self) -> &[GamProcState] {
        &self.procs
    }

    fn procs_mut(&mut self) -> &mut [GamProcState] {
        &mut self.procs
    }

    fn mem_bytes(mem: &Memory) -> usize {
        std::mem::size_of::<Memory>() + mem.approx_bytes()
    }

    fn proc_bytes(proc: &GamProcState) -> usize {
        std::mem::size_of::<GamProcState>() + proc.rob.len() * std::mem::size_of::<RobEntry>()
    }

    fn encode_mem(mem: &Memory, out: &mut Vec<u8>) {
        mem.encode(out);
    }

    fn decode_mem(input: &mut &[u8]) -> Option<Memory> {
        Memory::decode(input)
    }

    fn encode_proc(proc: &GamProcState, out: &mut Vec<u8>) {
        codec::put_usize(out, proc.pc);
        codec::put_u32(out, u32::try_from(proc.rob.len()).expect("rob fits u32"));
        for entry in &proc.rob {
            codec::put_usize(out, entry.instr_index);
            codec::put_u8(out, u8::from(entry.done));
            codec::put_u64(out, entry.result.raw());
            codec::put_u8(out, u8::from(entry.addr_avail));
            codec::put_u64(out, entry.addr);
            codec::put_u8(out, u8::from(entry.data_avail));
            codec::put_u64(out, entry.data.raw());
            codec::put_usize(out, entry.predicted_target);
        }
    }

    fn decode_proc(input: &mut &[u8]) -> Option<GamProcState> {
        let pc = codec::take_usize(input)?;
        let len = codec::take_u32(input)? as usize;
        let mut rob = Vec::with_capacity(len);
        for _ in 0..len {
            let instr_index = codec::take_usize(input)?;
            let done = codec::take_u8(input)? != 0;
            let result = Value::new(codec::take_u64(input)?);
            let addr_avail = codec::take_u8(input)? != 0;
            let addr = codec::take_u64(input)?;
            let data_avail = codec::take_u8(input)? != 0;
            let data = Value::new(codec::take_u64(input)?);
            let predicted_target = codec::take_usize(input)?;
            rob.push(RobEntry {
                instr_index,
                done,
                result,
                addr_avail,
                addr,
                data_avail,
                data,
                predicted_target,
            });
        }
        Some(GamProcState { pc, rob })
    }
}

/// The GAM abstract machine for one litmus test.
#[derive(Debug, Clone)]
pub struct GamMachine {
    program: Program,
    initial_memory: Memory,
    observed: Vec<Observation>,
    config: GamConfig,
    /// When the program has no branches the machine pre-fetches every
    /// instruction, which removes fetch interleavings from the state space
    /// without changing the reachable outcomes (the Fetch rule has no guard
    /// and enabling an entry earlier never disables an older entry's rule).
    eager_fetch: bool,
    /// `static_addrs[proc][idx]`: the value-set bound on the addresses the
    /// memory instruction at that position can touch, in any execution
    /// (drives the explorer's footprint-based partial-order reduction).
    static_addrs: Vec<Vec<crate::machine::AddrSet>>,
    name: String,
}

impl GamMachine {
    /// Builds the GAM machine (with SALdLd) for a litmus test.
    #[must_use]
    pub fn new(test: &LitmusTest) -> Self {
        Self::with_config(test, GamConfig::gam())
    }

    /// Builds the machine with an explicit configuration.
    #[must_use]
    pub fn with_config(test: &LitmusTest, config: GamConfig) -> Self {
        let eager_fetch = !test.program().has_branches();
        let name = if config.same_address_load_load {
            "GAM abstract machine".to_string()
        } else {
            "GAM0 abstract machine".to_string()
        };
        GamMachine {
            program: test.program().clone(),
            initial_memory: Memory::from_map(test.initial_memory()),
            observed: test.observed().to_vec(),
            config,
            eager_fetch,
            static_addrs: footprint::instr_addr_sets(test),
            name,
        }
    }

    /// The machine's configuration.
    #[must_use]
    pub fn config(&self) -> GamConfig {
        self.config
    }

    fn thread(&self, proc: usize) -> &ThreadProgram {
        &self.program.threads()[proc]
    }

    fn instruction<'a>(&'a self, proc: usize, entry: &RobEntry) -> &'a Instruction {
        &self.thread(proc).instructions()[entry.instr_index]
    }

    /// The value of a register as seen by ROB entry `index`: the result of the
    /// youngest older done entry that writes it, `None` if that entry is not
    /// done yet, or zero if no older entry writes it (initial register state).
    fn register_value(
        &self,
        proc: usize,
        rob: &[RobEntry],
        index: usize,
        reg: Reg,
    ) -> Option<Value> {
        for older in rob[..index].iter().rev() {
            let instr = self.instruction(proc, older);
            if instr.write_set().contains(&reg) {
                return if older.done { Some(older.result) } else { None };
            }
        }
        Some(Value::ZERO)
    }

    fn operand_value(
        &self,
        proc: usize,
        rob: &[RobEntry],
        index: usize,
        operand: &Operand,
    ) -> Option<Value> {
        match operand {
            Operand::Imm(v) => Some(*v),
            Operand::Reg(r) => self.register_value(proc, rob, index, *r),
        }
    }

    /// Fetches one instruction into the ROB of `proc`, resolving constant
    /// operands if configured. Returns the predicted next PCs (two for a
    /// branch, one otherwise).
    fn fetch_entry(&self, proc: usize, pc: usize) -> (RobEntry, Vec<usize>) {
        let thread = self.thread(proc);
        let instr = &thread.instructions()[pc];
        let mut entry = RobEntry::new(pc);
        if self.config.resolve_constants_at_fetch {
            match instr {
                Instruction::Load { addr, .. } | Instruction::Store { addr, .. }
                    if addr.source_reg().is_none() =>
                {
                    entry.addr_avail = true;
                    entry.addr = addr
                        .evaluate(match addr.base {
                            Operand::Imm(v) => v,
                            Operand::Reg(_) => unreachable!("no source register"),
                        })
                        .raw();
                }
                _ => {}
            }
            if let Instruction::Store { data: Operand::Imm(v), .. } = instr {
                entry.data_avail = true;
                entry.data = *v;
            }
        }
        let predictions = match instr {
            Instruction::Branch { target, .. } => {
                let taken = thread.resolve_label(target).unwrap_or(thread.len());
                if taken == pc + 1 {
                    vec![pc + 1]
                } else {
                    vec![pc + 1, taken]
                }
            }
            _ => vec![pc + 1],
        };
        (entry, predictions)
    }

    /// Pre-fetches every instruction of every thread (branch-free programs only).
    fn prefetch_all(&self) -> Vec<GamProcState> {
        (0..self.program.num_threads())
            .map(|proc| {
                let thread = self.thread(proc);
                let rob = (0..thread.len()).map(|pc| self.fetch_entry(proc, pc).0).collect();
                GamProcState { pc: thread.len(), rob }
            })
            .collect()
    }

    /// After a squash in eager mode, re-fetch every remaining instruction so
    /// the ROB is complete again.
    fn refill(&self, proc: usize, state: &mut GamProcState) {
        if !self.eager_fetch {
            return;
        }
        let len = self.thread(proc).len();
        while state.pc < len {
            let (entry, _) = self.fetch_entry(proc, state.pc);
            state.rob.push(entry);
            state.pc += 1;
        }
    }

    // ----- rule guards and actions -------------------------------------------------

    fn rule_fetch(&self, state: &GamState, proc: usize, out: &mut SuccBuf<'_, GamState>) {
        let thread = self.thread(proc);
        let pc = state.procs[proc].pc;
        if pc >= thread.len() {
            return;
        }
        let (entry, predictions) = self.fetch_entry(proc, pc);
        for predicted in predictions {
            let next = out.push_from(state, Action::local(proc, act_id(tag::FETCH, predicted)));
            let mut fetched = entry;
            fetched.predicted_target = predicted;
            next.procs[proc].rob.push(fetched);
            next.procs[proc].pc = predicted;
        }
    }

    fn rule_execute_alu(
        &self,
        state: &GamState,
        proc: usize,
        index: usize,
        out: &mut SuccBuf<'_, GamState>,
    ) {
        let rob = &state.procs[proc].rob;
        let entry = &rob[index];
        let Instruction::Alu { op, lhs, rhs, .. } = self.instruction(proc, entry) else {
            return;
        };
        let (Some(a), Some(b)) =
            (self.operand_value(proc, rob, index, lhs), self.operand_value(proc, rob, index, rhs))
        else {
            return;
        };
        let next = out.push_from(state, Action::local(proc, act_id(tag::ALU, index)));
        let entry = &mut next.procs[proc].rob[index];
        entry.result = op.apply(a, b);
        entry.done = true;
    }

    fn rule_execute_branch(
        &self,
        state: &GamState,
        proc: usize,
        index: usize,
        out: &mut SuccBuf<'_, GamState>,
    ) {
        let rob = &state.procs[proc].rob;
        let entry = &rob[index];
        let Instruction::Branch { cond, lhs, rhs, target } = self.instruction(proc, entry) else {
            return;
        };
        let (Some(a), Some(b)) =
            (self.operand_value(proc, rob, index, lhs), self.operand_value(proc, rob, index, rhs))
        else {
            return;
        };
        let thread = self.thread(proc);
        let actual = if cond.holds(a, b) {
            thread.resolve_label(target).unwrap_or(thread.len())
        } else {
            entry.instr_index + 1
        };
        let predicted = entry.predicted_target;
        let next = out.push_from(state, Action::local(proc, act_id(tag::BRANCH, index)));
        next.procs[proc].rob[index].done = true;
        if actual != predicted {
            next.procs[proc].rob.truncate(index + 1);
            next.procs[proc].pc = actual;
            self.refill(proc, &mut next.procs[proc]);
        }
    }

    fn rule_execute_fence(
        &self,
        state: &GamState,
        proc: usize,
        index: usize,
        out: &mut SuccBuf<'_, GamState>,
    ) {
        let rob = &state.procs[proc].rob;
        let entry = &rob[index];
        let Instruction::Fence { kind } = self.instruction(proc, entry) else {
            return;
        };
        let older_done = rob[..index].iter().all(|older| {
            match self.instruction(proc, older).mem_access_type() {
                Some(ty) if kind.orders_older(ty) => older.done,
                _ => true,
            }
        });
        if !older_done {
            return;
        }
        let next = out.push_from(state, Action::fence(proc, act_id(tag::FENCE, index)));
        next.procs[proc].rob[index].done = true;
    }

    fn rule_execute_load(
        &self,
        state: &GamState,
        proc: usize,
        index: usize,
        out: &mut SuccBuf<'_, GamState>,
    ) {
        let rob = &state.procs[proc].rob;
        let entry = &rob[index];
        let Instruction::Load { .. } = self.instruction(proc, entry) else {
            return;
        };
        if !entry.addr_avail {
            return;
        }
        // All older fences ordering younger loads must be done.
        let fences_done = rob[..index].iter().all(|older| match self.instruction(proc, older) {
            Instruction::Fence { kind } if kind.orders_younger(MemAccessType::Load) => older.done,
            _ => true,
        });
        if !fences_done {
            return;
        }
        // Search older entries, youngest first, for the first not-done
        // same-address memory instruction.
        let addr = entry.addr;
        let blocker = rob[..index].iter().rev().find(|older| {
            if !older.addr_avail || older.addr != addr || older.done {
                return false;
            }
            match self.instruction(proc, older) {
                Instruction::Load { .. } => self.config.same_address_load_load,
                Instruction::Store { .. } => true,
                _ => false,
            }
        });
        // A load satisfied by forwarding from an older in-flight store of
        // the same processor never touches shared memory, so it is a
        // thread-private step; only a forwarding miss reads memory. The
        // distinction depends solely on the processor's own ROB, keeping the
        // label stable across other threads' independent actions.
        let (value, action) = match blocker {
            Some(older) => match self.instruction(proc, older) {
                Instruction::Load { .. } => return, // stall on an older not-done load (SALdLd)
                Instruction::Store { .. } => {
                    if older.data_avail {
                        // Forward from the store (SAStLd).
                        (older.data, Action::local(proc, act_id(tag::LOAD, index)))
                    } else {
                        return; // stall until the store data is known
                    }
                }
                _ => unreachable!("blocker is a memory instruction"),
            },
            None => (state.memory.read(addr), Action::read(proc, act_id(tag::LOAD, index), addr)),
        };
        let next = out.push_from(state, action);
        let entry = &mut next.procs[proc].rob[index];
        entry.result = value;
        entry.done = true;
    }

    fn rule_compute_store_data(
        &self,
        state: &GamState,
        proc: usize,
        index: usize,
        out: &mut SuccBuf<'_, GamState>,
    ) {
        let rob = &state.procs[proc].rob;
        let entry = &rob[index];
        if entry.data_avail {
            return;
        }
        let Instruction::Store { data, .. } = self.instruction(proc, entry) else {
            return;
        };
        let Some(value) = self.operand_value(proc, rob, index, data) else {
            return;
        };
        let next = out.push_from(state, Action::local(proc, act_id(tag::STORE_DATA, index)));
        let entry = &mut next.procs[proc].rob[index];
        entry.data = value;
        entry.data_avail = true;
    }

    fn rule_execute_store(
        &self,
        state: &GamState,
        proc: usize,
        index: usize,
        out: &mut SuccBuf<'_, GamState>,
    ) {
        let rob = &state.procs[proc].rob;
        let entry = &rob[index];
        let Instruction::Store { .. } = self.instruction(proc, entry) else {
            return;
        };
        if !entry.addr_avail || !entry.data_avail {
            return;
        }
        let addr = entry.addr;
        let guards_hold = rob[..index].iter().all(|older| {
            let instr = self.instruction(proc, older);
            match instr {
                // Guard 3 (BrSt): all older branches are done.
                Instruction::Branch { .. } => older.done,
                // Guard 6 (FenceOrd): all older fences ordering younger stores are done.
                Instruction::Fence { kind } => {
                    !kind.orders_younger(MemAccessType::Store) || older.done
                }
                // Guards 4 and 5 (AddrSt, SAMemSt): all older memory
                // instructions have known addresses, and same-address ones
                // are done.
                Instruction::Load { .. } | Instruction::Store { .. } => {
                    older.addr_avail && (older.addr != addr || older.done)
                }
                Instruction::Alu { .. } => true,
            }
        });
        if !guards_hold {
            return;
        }
        let data = entry.data;
        let next = out.push_from(state, Action::commit(proc, act_id(tag::STORE, index), addr));
        next.memory.write(addr, data);
        let entry = &mut next.procs[proc].rob[index];
        entry.result = data;
        entry.done = true;
    }

    fn rule_compute_mem_addr(
        &self,
        state: &GamState,
        proc: usize,
        index: usize,
        out: &mut SuccBuf<'_, GamState>,
    ) {
        let rob = &state.procs[proc].rob;
        let entry = &rob[index];
        if entry.addr_avail {
            return;
        }
        let instr = self.instruction(proc, entry);
        let addr_expr = match instr {
            Instruction::Load { addr, .. } | Instruction::Store { addr, .. } => addr,
            _ => return,
        };
        let Some(base) = self.operand_value(proc, rob, index, &addr_expr.base) else {
            return;
        };
        let addr = addr_expr.evaluate(base).raw();

        let next = out.push_from(state, Action::local(proc, act_id(tag::ADDR, index)));
        {
            let entry = &mut next.procs[proc].rob[index];
            entry.addr_avail = true;
            entry.addr = addr;
        }
        // Squash check: find the first younger same-address memory entry.
        // A done load must be squashed (together with everything younger).
        // The SALdLd-motivated squash on load-triggered resolution only
        // applies when the machine enforces SALdLd (GAM, not GAM0).
        let squash_applies = instr.is_store() || self.config.same_address_load_load;
        if squash_applies {
            let younger = next.procs[proc].rob[index + 1..]
                .iter()
                .position(|e| e.addr_avail && e.addr == addr)
                .map(|offset| index + 1 + offset);
            if let Some(victim) = younger {
                let victim_entry = &next.procs[proc].rob[victim];
                let victim_is_done_load =
                    victim_entry.done && self.instruction(proc, victim_entry).is_load();
                if victim_is_done_load {
                    let restart_pc = victim_entry.instr_index;
                    next.procs[proc].rob.truncate(victim);
                    next.procs[proc].pc = restart_pc;
                    self.refill(proc, &mut next.procs[proc]);
                }
            }
        }
    }
}

impl AbstractMachine for GamMachine {
    type State = GamState;

    fn initial_state(&self) -> GamState {
        let procs = if self.eager_fetch {
            self.prefetch_all()
        } else {
            vec![GamProcState::default(); self.program.num_threads()]
        };
        GamState { memory: self.initial_memory.clone(), procs }
    }

    fn successors(&self, state: &GamState) -> Vec<GamState> {
        self.labeled_successors(state).into_iter().map(|(_, next)| next).collect()
    }

    fn is_final(&self, state: &GamState) -> bool {
        state.procs.iter().enumerate().all(|(proc, p)| {
            p.pc >= self.thread(proc).len() && p.rob.iter().all(|entry| entry.done)
        })
    }

    fn outcome(&self, state: &GamState) -> Outcome {
        let mut outcome = Outcome::new();
        for observation in &self.observed {
            let value = match observation {
                Observation::Register(proc, reg) => {
                    let p = proc.index();
                    state.procs[p]
                        .rob
                        .iter()
                        .rev()
                        .find(|entry| {
                            entry.done && self.instruction(p, entry).write_set().contains(reg)
                        })
                        .map(|entry| entry.result)
                        .unwrap_or(Value::ZERO)
                }
                Observation::Memory(loc) => state.memory.read(loc.address()),
            };
            outcome.set(*observation, value);
        }
        outcome
    }

    fn name(&self) -> &str {
        &self.name
    }
}

impl LabeledMachine for GamMachine {
    /// An action at the *oldest incomplete* ROB position is independent of
    /// everything else its thread can do, for most rules:
    ///
    /// * every rule's guard scans only *older* entries, so a younger entry's
    ///   action can never disable or relabel an older entry's action;
    /// * with every older entry done, the action's register inputs are
    ///   fixed, and nothing remains that could squash it (squash victims are
    ///   always younger than the resolving entry);
    /// * same-address interactions with younger entries are fenced off by
    ///   the machine's own guards: a younger same-address store cannot
    ///   execute past a not-done older access (SAMemSt), and a younger load
    ///   co-enabled with an older same-address store is necessarily in
    ///   forwarding mode, which reads the store's data either way.
    ///
    /// Two rules are excluded: **Execute-Branch** (a misprediction truncates
    /// every younger entry — maximally dependent) and **Compute-Mem-Addr**
    /// (resolving an address can squash a younger same-address load, and
    /// whether the victim already executed is exactly the ordering the
    /// SALdLd/LdVal semantics care about). Fetch is a thread-level action
    /// with no ROB position and is likewise excluded.
    fn own_thread_independent(&self, state: &GamState, action: &Action) -> bool {
        let rule = action.id & 7;
        if !matches!(rule, tag::ALU | tag::FENCE | tag::LOAD | tag::STORE_DATA | tag::STORE) {
            return false;
        }
        let index = (action.id >> 3) as usize;
        let rob = &state.procs[action.thread as usize].rob;
        rob.iter().position(|entry| !entry.done) == Some(index)
    }

    /// The addresses the thread can still touch. Three populations:
    ///
    /// * not-done entries older than every unresolved address: their address
    ///   is known and final — one concrete address each;
    /// * every entry at or beyond the first memory entry whose address is
    ///   still unknown: a Compute-Mem-Addr there can squash and re-execute
    ///   them with *recomputed* addresses, so the static value-set bound is
    ///   used instead of the current address;
    /// * done entries older than every unresolved address: retired for good,
    ///   no future access.
    ///
    /// Branchy programs fetch speculatively and squash across branches, so
    /// any unfinished thread is conservatively unbounded there.
    fn future_footprint(&self, state: &GamState, thread: usize) -> Footprint {
        let proc = &state.procs[thread];
        if !self.eager_fetch {
            let finished =
                proc.pc >= self.thread(thread).len() && proc.rob.iter().all(|entry| entry.done);
            return if finished { Footprint::empty() } else { Footprint::top() };
        }
        let unstable_from = proc
            .rob
            .iter()
            .position(|entry| {
                let instr = self.instruction(thread, entry);
                (instr.is_load() || instr.is_store()) && !entry.addr_avail
            })
            .unwrap_or(usize::MAX);
        let mut footprint = Footprint::empty();
        for (index, entry) in proc.rob.iter().enumerate() {
            let instr = self.instruction(thread, entry);
            let target = if instr.is_load() {
                &mut footprint.reads
            } else if instr.is_store() {
                &mut footprint.writes
            } else {
                continue;
            };
            if index < unstable_from {
                if !entry.done {
                    // Older than every unresolved address: the address is
                    // known (by definition of `unstable_from`) and the entry
                    // cannot be squashed.
                    target.insert(entry.addr);
                }
            } else {
                target.union_with(&self.static_addrs[thread][entry.instr_index]);
            }
        }
        footprint
    }

    fn labeled_successors(&self, state: &GamState) -> Vec<(Action, GamState)> {
        let mut out = Vec::new();
        self.labeled_successors_into(state, &mut out);
        out
    }

    fn labeled_successors_into(&self, state: &GamState, out: &mut Vec<(Action, GamState)>) {
        self.successors_into_buf(state, SuccBuf::new(out));
    }

    fn labeled_successors_sparse_into(&self, state: &GamState, out: &mut Vec<(Action, GamState)>) {
        self.successors_into_buf(state, SuccBuf::new_sparse(out));
    }

    /// Scrubs semantically dead fields so symmetric states intern to one
    /// arena slot: the `predicted_target` of a *done* entry is never read
    /// again by any rule (only Execute-Branch consults it, and only on
    /// not-done entries), yet it records *how* a branch reached its resolved
    /// state — a correctly predicted branch and a mispredicted, squashed and
    /// refetched one otherwise differ in this one field forever.
    fn canonicalize(&self, mut state: GamState) -> GamState {
        self.canonicalize_in_place(&mut state);
        state
    }

    fn canonicalize_in_place(&self, state: &mut GamState) {
        for proc in &mut state.procs {
            for entry in &mut proc.rob {
                if entry.done {
                    entry.predicted_target = 0;
                }
            }
        }
    }
}

impl GamMachine {
    /// The rule pass shared by the full and sparse successor entry points.
    fn successors_into_buf(&self, state: &GamState, mut buf: SuccBuf<'_, GamState>) {
        for proc in 0..self.program.num_threads() {
            if !self.eager_fetch {
                self.rule_fetch(state, proc, &mut buf);
            }
            for index in 0..state.procs[proc].rob.len() {
                let entry = &state.procs[proc].rob[index];
                if entry.done {
                    // Completed entries only participate as context for others,
                    // except stores whose data rule has already fired.
                    continue;
                }
                // One dispatch on the instruction kind; each rule keeps its
                // own guard, so the set of enabled firings (and their order)
                // is exactly that of running every rule unconditionally.
                match self.instruction(proc, entry) {
                    Instruction::Alu { .. } => self.rule_execute_alu(state, proc, index, &mut buf),
                    Instruction::Branch { .. } => {
                        self.rule_execute_branch(state, proc, index, &mut buf);
                    }
                    Instruction::Fence { .. } => {
                        self.rule_execute_fence(state, proc, index, &mut buf);
                    }
                    Instruction::Load { .. } => {
                        self.rule_execute_load(state, proc, index, &mut buf);
                        self.rule_compute_mem_addr(state, proc, index, &mut buf);
                    }
                    Instruction::Store { .. } => {
                        self.rule_compute_store_data(state, proc, index, &mut buf);
                        self.rule_execute_store(state, proc, index, &mut buf);
                        self.rule_compute_mem_addr(state, proc, index, &mut buf);
                    }
                }
            }
        }
        buf.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::Explorer;
    use gam_isa::litmus::library;

    fn outcomes(test: &LitmusTest, config: GamConfig) -> std::collections::BTreeSet<Outcome> {
        let machine = GamMachine::with_config(test, config);
        Explorer::default().explore(&machine).unwrap().outcomes
    }

    fn reachable(test: &LitmusTest, config: GamConfig) -> bool {
        outcomes(test, config).iter().any(|o| test.condition().matched_by(o))
    }

    #[test]
    fn dekker_non_sc_outcome_reachable() {
        assert!(reachable(&library::dekker(), GamConfig::gam()));
        assert!(reachable(&library::dekker(), GamConfig::gam0()));
    }

    #[test]
    fn oota_unreachable() {
        assert!(!reachable(&library::oota(), GamConfig::gam()));
        assert!(!reachable(&library::oota(), GamConfig::gam0()));
    }

    #[test]
    fn corr_distinguishes_gam_from_gam0() {
        assert!(!reachable(&library::corr(), GamConfig::gam()), "SALdLd forbids the stale re-read");
        assert!(reachable(&library::corr(), GamConfig::gam0()), "GAM0 allows the stale re-read");
    }

    #[test]
    fn mp_addr_dependency_respected() {
        assert!(!reachable(&library::mp_addr(), GamConfig::gam()));
        assert!(!reachable(&library::mp_addr(), GamConfig::gam0()));
    }

    #[test]
    fn mp_without_consumer_ordering_is_weak() {
        assert!(reachable(&library::mp(), GamConfig::gam()));
        assert!(reachable(&library::mp_fence_ss_only(), GamConfig::gam()));
        assert!(!reachable(&library::mp_fences(), GamConfig::gam()));
    }

    #[test]
    fn load_buffering_allowed_without_dependency() {
        assert!(reachable(&library::lb(), GamConfig::gam()));
        assert!(!reachable(&library::lb_data(), GamConfig::gam()));
        assert!(!reachable(&library::lb_fence_ls(), GamConfig::gam()));
    }

    #[test]
    fn store_forwarding_cannot_skip_the_youngest_store() {
        assert!(!reachable(&library::store_forwarding(), GamConfig::gam()));
        assert!(!reachable(&library::store_forwarding(), GamConfig::gam0()));
    }

    #[test]
    fn corw_and_cowr_coherence() {
        assert!(!reachable(&library::corw(), GamConfig::gam()));
        assert!(!reachable(&library::cowr(), GamConfig::gam()));
        assert!(!reachable(&library::coww(), GamConfig::gam()));
    }

    #[test]
    fn constant_resolution_does_not_change_outcomes() {
        for test in [library::dekker(), library::corr(), library::mp_fence_ss_only()] {
            let eager = outcomes(&test, GamConfig::gam());
            let lazy = outcomes(
                &test,
                GamConfig { resolve_constants_at_fetch: false, ..GamConfig::gam() },
            );
            assert_eq!(eager, lazy, "{}", test.name());
        }
    }

    #[test]
    fn branchy_program_squashes_on_misprediction() {
        use gam_isa::{Addr, BranchCond, Loc, ProcId};
        // P1: r1 = Ld [a]; if r1 != 0 goto skip; St [b] 1; skip:
        // P2: St [a] 1
        // If the load reads 1 the store to b must not happen.
        let a = Loc::new("a");
        let b = Loc::new("b");
        let mut p1 = gam_isa::ThreadProgram::builder(ProcId::new(0));
        p1.load(Reg::new(1), Addr::loc(a))
            .branch(BranchCond::Ne, Operand::reg(Reg::new(1)), Operand::imm(0), "skip")
            .store(Addr::loc(b), Operand::imm(1))
            .label("skip");
        let mut p2 = gam_isa::ThreadProgram::builder(ProcId::new(1));
        p2.store(Addr::loc(a), Operand::imm(1));
        let program = Program::new(vec![p1.build(), p2.build()]);
        let test = LitmusTest::builder("branch-squash", program)
            .expect_reg(ProcId::new(0), Reg::new(1), 1u64)
            .expect_mem(b, 1u64)
            .build();
        // r1 = 1 together with b = 1 would mean the squashed store escaped.
        assert!(!reachable(&test, GamConfig::gam()));
        // Both r1 = 0 (store b happens) and r1 = 1 (store b suppressed) exist.
        let all = outcomes(&test, GamConfig::gam());
        assert!(all.len() >= 2);
    }

    #[test]
    fn labels_project_onto_successors_and_classify_rules() {
        for test in [library::dekker(), library::mp_addr(), library::mp_fences()] {
            let machine = GamMachine::new(&test);
            let mut frontier = vec![machine.initial_state()];
            let mut steps = 0;
            while let Some(state) = frontier.pop() {
                if steps > 200 {
                    break;
                }
                steps += 1;
                let labeled = machine.labeled_successors(&state);
                assert_eq!(
                    labeled.iter().map(|(_, s)| s.clone()).collect::<Vec<_>>(),
                    machine.successors(&state),
                    "{}: labeled successors must project onto the unlabeled API",
                    test.name()
                );
                let mut seen = std::collections::BTreeSet::new();
                for (action, next) in labeled {
                    assert!(seen.insert(action), "{}: duplicate label {action:?}", test.name());
                    frontier.push(next);
                }
            }
        }
    }

    #[test]
    fn forwarded_loads_are_thread_private() {
        use crate::machine::ActionKind;
        // store-forwarding: St [a] 1; St [a] r1; Ld r2 [a] in one thread.
        // While the youngest store is in flight with known data, the load
        // executes by SAStLd forwarding — a thread-private step; once every
        // older store has committed, the load reads shared memory. Both label
        // kinds must appear somewhere in the reachable space, and forwarded
        // loads must never be labeled as memory reads of a stale blocker.
        let test = library::store_forwarding();
        let machine = GamMachine::new(&test);
        let mut frontier = vec![machine.initial_state()];
        let mut kinds = std::collections::BTreeSet::new();
        while let Some(state) = frontier.pop() {
            for (action, next) in machine.labeled_successors(&state) {
                if action.id & 7 == super::tag::LOAD {
                    kinds.insert(action.kind);
                }
                frontier.push(next);
            }
        }
        assert!(kinds.contains(&ActionKind::Local), "SAStLd forwarding is thread-private");
        assert!(kinds.contains(&ActionKind::MemoryRead), "a forwarding miss reads memory");
    }

    #[test]
    fn canonicalization_scrubs_resolved_predictions_only() {
        let test = library::dekker();
        let machine = GamMachine::new(&test);
        let mut state = machine.initial_state();
        state.procs[0].rob[0].done = true;
        state.procs[0].rob[0].predicted_target = 7;
        state.procs[0].rob[1].predicted_target = 9;
        let canon = machine.canonicalize(state.clone());
        assert_eq!(canon.procs[0].rob[0].predicted_target, 0, "done entries are scrubbed");
        assert_eq!(canon.procs[0].rob[1].predicted_target, 9, "pending entries are untouched");
        // Idempotence.
        assert_eq!(machine.canonicalize(canon.clone()), canon);
    }

    #[test]
    fn outcome_projection_reads_registers_and_memory() {
        let test = library::coww();
        let machine = GamMachine::new(&test);
        let exploration = Explorer::default().explore(&machine).unwrap();
        assert_eq!(exploration.outcomes.len(), 1);
    }

    #[test]
    fn machine_names_reflect_configuration() {
        let test = library::dekker();
        assert!(GamMachine::new(&test).name().contains("GAM abstract"));
        assert!(GamMachine::with_config(&test, GamConfig::gam0()).name().contains("GAM0"));
        assert!(GamMachine::new(&test).config().same_address_load_load);
    }
}
