//! A model-indexed front end over the operational machines.
//!
//! [`OperationalChecker`] mirrors the API of `gam_axiomatic::AxiomaticChecker`
//! so that the verification crate can run both semantics side by side: give it
//! a model kind and a litmus test and it produces the exhaustive outcome set
//! or an allowed/forbidden verdict for the test's condition of interest.

use std::collections::BTreeSet;
use std::fmt;

use gam_core::ModelKind;
use gam_isa::litmus::{LitmusTest, Outcome};

use crate::explore::{Exploration, ExploreError, Explorer, ExplorerConfig};
use crate::gam::{GamConfig, GamMachine};
use crate::machine::LabeledMachine;
use crate::sc::ScMachine;
use crate::tso::TsoMachine;

/// Errors produced by the operational checker.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum OperationalError {
    /// The exploration failed (state limit or deadlock).
    Explore(ExploreError),
    /// No operational machine exists for the requested model.
    UnsupportedModel {
        /// The requested model.
        model: ModelKind,
    },
}

impl fmt::Display for OperationalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OperationalError::Explore(err) => write!(f, "exploration failed: {err}"),
            OperationalError::UnsupportedModel { model } => {
                write!(f, "no operational machine is defined for {model}")
            }
        }
    }
}

impl std::error::Error for OperationalError {}

impl From<ExploreError> for OperationalError {
    fn from(err: ExploreError) -> Self {
        OperationalError::Explore(err)
    }
}

/// An exhaustive operational checker for one memory model.
#[derive(Debug, Clone)]
pub struct OperationalChecker {
    model: ModelKind,
    explorer: Explorer,
}

impl OperationalChecker {
    /// Creates a checker for the given model with default exploration limits.
    #[must_use]
    pub fn new(model: ModelKind) -> Self {
        OperationalChecker { model, explorer: Explorer::default() }
    }

    /// Creates a checker with explicit exploration limits.
    #[must_use]
    pub fn with_config(model: ModelKind, config: ExplorerConfig) -> Self {
        OperationalChecker { model, explorer: Explorer::new(config) }
    }

    /// Attaches a cooperative [`gam_core::Interrupt`] to the underlying
    /// explorer: cancellation or an expired wall budget stops the search
    /// with [`ExploreError::Interrupted`], carrying partial outcomes.
    #[must_use]
    pub fn with_interrupt(mut self, interrupt: gam_core::Interrupt) -> Self {
        self.explorer = self.explorer.with_interrupt(interrupt);
        self
    }

    /// Attaches a memory-pressure configuration (budget, spill directory,
    /// checkpoint plan) to the underlying explorer. Arming any part of it
    /// pins the exploration to the deterministic sequential drivers.
    #[must_use]
    pub fn with_memory(mut self, memory: crate::explore::MemoryConfig) -> Self {
        self.explorer = self.explorer.with_memory(memory);
        self
    }

    /// The model this checker runs.
    #[must_use]
    pub fn model(&self) -> ModelKind {
        self.model
    }

    /// The exploration limits this checker runs with.
    #[must_use]
    pub fn config(&self) -> ExplorerConfig {
        self.explorer.config()
    }

    /// The memory-pressure configuration this checker runs with.
    #[must_use]
    pub fn memory(&self) -> crate::explore::MemoryConfig {
        self.explorer.memory().clone()
    }

    /// Returns true if an operational machine exists for the model.
    ///
    /// The paper defines operational machines for SC (Figure 1) and GAM
    /// (Figure 17); GAM0 is the same machine without the SALdLd enforcement,
    /// and TSO is the classical store-buffer machine. The ARM same-address
    /// variant has no operational definition in the paper, so it is only
    /// available axiomatically.
    #[must_use]
    pub fn supports(model: ModelKind) -> bool {
        !matches!(model, ModelKind::GamArm)
    }

    /// Exhaustively explores the test under the model.
    ///
    /// # Errors
    ///
    /// Returns an error if the model has no operational machine or the
    /// exploration exceeds its limits.
    pub fn explore(&self, test: &LitmusTest) -> Result<Exploration, OperationalError> {
        // All three machines route through the component-interned drivers
        // (`explore_composed`): visited states are rows of hash-consed
        // component ids instead of full clones.
        match self.model {
            ModelKind::Sc => Ok(self.explorer.explore_composed(&ScMachine::new(test))?),
            ModelKind::Tso => Ok(self.explorer.explore_composed(&TsoMachine::new(test))?),
            ModelKind::Gam => Ok(self
                .explorer
                .explore_composed(&GamMachine::with_config(test, GamConfig::gam()))?),
            ModelKind::Gam0 => Ok(self
                .explorer
                .explore_composed(&GamMachine::with_config(test, GamConfig::gam0()))?),
            ModelKind::GamArm => Err(OperationalError::UnsupportedModel { model: self.model }),
        }
    }

    /// Exhaustively explores the test on the pre-refactor plain-state
    /// reference path (full-state interning, sequential, honouring the
    /// configured [`crate::Reduction`]). The differential test-suites
    /// compare the production component-interned exploration against this
    /// oracle.
    ///
    /// # Errors
    ///
    /// See [`OperationalChecker::explore`].
    #[doc(hidden)]
    pub fn explore_reference(&self, test: &LitmusTest) -> Result<Exploration, OperationalError> {
        match self.model {
            ModelKind::Sc => Ok(self.explorer.explore_reference(&ScMachine::new(test))?),
            ModelKind::Tso => Ok(self.explorer.explore_reference(&TsoMachine::new(test))?),
            ModelKind::Gam => Ok(self
                .explorer
                .explore_reference(&GamMachine::with_config(test, GamConfig::gam()))?),
            ModelKind::Gam0 => Ok(self
                .explorer
                .explore_reference(&GamMachine::with_config(test, GamConfig::gam0()))?),
            ModelKind::GamArm => Err(OperationalError::UnsupportedModel { model: self.model }),
        }
    }

    /// The set of final outcomes reachable on the operational machine.
    ///
    /// # Errors
    ///
    /// See [`OperationalChecker::explore`].
    pub fn allowed_outcomes(
        &self,
        test: &LitmusTest,
    ) -> Result<BTreeSet<Outcome>, OperationalError> {
        Ok(self.explore(test)?.outcomes)
    }

    /// Searches for a reachable final outcome matching the test's condition
    /// of interest, stopping at the *first* witness instead of exhausting
    /// the state space. `None` means the exploration completed without a
    /// match — the condition is forbidden.
    ///
    /// # Errors
    ///
    /// See [`OperationalChecker::explore`]. A state-limit abort before a
    /// witness was found is an error: the condition was neither proven
    /// reachable nor exhausted.
    pub fn find_witness(&self, test: &LitmusTest) -> Result<Option<Outcome>, OperationalError> {
        let matches = |outcome: &Outcome| test.condition().matched_by(outcome);
        match self.model {
            ModelKind::Sc => {
                Ok(self.explorer.find_outcome_composed(&ScMachine::new(test), matches)?)
            }
            ModelKind::Tso => {
                Ok(self.explorer.find_outcome_composed(&TsoMachine::new(test), matches)?)
            }
            ModelKind::Gam => Ok(self.explorer.find_outcome_composed(
                &GamMachine::with_config(test, GamConfig::gam()),
                matches,
            )?),
            ModelKind::Gam0 => Ok(self.explorer.find_outcome_composed(
                &GamMachine::with_config(test, GamConfig::gam0()),
                matches,
            )?),
            ModelKind::GamArm => Err(OperationalError::UnsupportedModel { model: self.model }),
        }
    }

    /// Returns true if the test's condition of interest is reachable.
    ///
    /// Decides via [`OperationalChecker::find_witness`], so an *allowed*
    /// verdict exits at the first matching final state; only a *forbidden*
    /// verdict pays for the whole (reduced) state space.
    ///
    /// # Errors
    ///
    /// See [`OperationalChecker::explore`].
    pub fn is_allowed(&self, test: &LitmusTest) -> Result<bool, OperationalError> {
        Ok(self.find_witness(test)?.is_some())
    }

    /// Convenience: run a specific machine for a test regardless of the
    /// checker's model (useful for differential experiments).
    pub fn explore_machine<M: LabeledMachine + Sync>(
        &self,
        machine: &M,
    ) -> Result<Exploration, OperationalError>
    where
        M::State: Send,
    {
        Ok(self.explorer.explore(machine)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gam_isa::litmus::library;

    #[test]
    fn supported_models() {
        assert!(OperationalChecker::supports(ModelKind::Sc));
        assert!(OperationalChecker::supports(ModelKind::Tso));
        assert!(OperationalChecker::supports(ModelKind::Gam));
        assert!(OperationalChecker::supports(ModelKind::Gam0));
        assert!(!OperationalChecker::supports(ModelKind::GamArm));
        let err = OperationalChecker::new(ModelKind::GamArm).explore(&library::dekker());
        assert!(matches!(err, Err(OperationalError::UnsupportedModel { .. })));
    }

    #[test]
    fn dekker_across_models() {
        let test = library::dekker();
        assert!(!OperationalChecker::new(ModelKind::Sc).is_allowed(&test).unwrap());
        assert!(OperationalChecker::new(ModelKind::Tso).is_allowed(&test).unwrap());
        assert!(OperationalChecker::new(ModelKind::Gam).is_allowed(&test).unwrap());
        assert!(OperationalChecker::new(ModelKind::Gam0).is_allowed(&test).unwrap());
    }

    #[test]
    fn corr_across_models() {
        let test = library::corr();
        assert!(!OperationalChecker::new(ModelKind::Sc).is_allowed(&test).unwrap());
        assert!(!OperationalChecker::new(ModelKind::Tso).is_allowed(&test).unwrap());
        assert!(!OperationalChecker::new(ModelKind::Gam).is_allowed(&test).unwrap());
        assert!(OperationalChecker::new(ModelKind::Gam0).is_allowed(&test).unwrap());
    }

    #[test]
    fn model_accessor_and_error_display() {
        let checker = OperationalChecker::new(ModelKind::Gam);
        assert_eq!(checker.model(), ModelKind::Gam);
        let err = OperationalError::UnsupportedModel { model: ModelKind::GamArm };
        assert!(err.to_string().contains("GAM-ARM"));
        let err: OperationalError = ExploreError::Deadlock.into();
        assert!(err.to_string().contains("exploration failed"));
    }

    #[test]
    fn exploration_reports_statistics() {
        let test = library::dekker();
        let exploration = OperationalChecker::new(ModelKind::Gam).explore(&test).unwrap();
        assert!(exploration.states_visited > 0);
        assert!(exploration.final_states > 0);
        assert!(!exploration.outcomes.is_empty());
    }
}
