//! Structure-sharing state storage: hash-consed component arenas.
//!
//! A machine configuration is mostly *unchanged* context: firing one rule
//! rewrites one processor's private state and occasionally the shared
//! memory, while every other component survives verbatim. Storing each
//! visited state as a full clone therefore duplicates the same per-proc
//! states and memory maps thousands of times, and hashing a candidate
//! successor re-hashes all of that unchanged context on every expansion.
//!
//! [`ComponentArena`] splits a [`ComposedState`] into its components — the
//! shared memory and one entry per processor — and hash-conses each
//! component into its own arena. An interned state is then a flat row of
//! `u32` component ids: state equality and hashing collapse to comparing
//! `1 + #procs` integers, deduplicating a successor against its parent
//! skips every component that is pointer-for-pointer identical context
//! (the common case: one changed proc), and the heap holds each distinct
//! component exactly once no matter how many states share it.
//!
//! The arena reports its sharing through [`ArenaOccupancy`]: how many
//! distinct components back how many states, and the bytes actually
//! interned — the numbers `perf_snapshot` publishes per test.

use std::hash::{BuildHasher, Hash};

use rustc_hash::{FxBuildHasher, FxHashMap};

use crate::explore::{Bucket, InternedStates};
use crate::machine::Action;

/// The components a transition (or a compressed chain of transitions) may
/// have modified, derived from [`Action`] labels: the acting thread's
/// private component, plus the shared memory for memory-writing kinds.
///
/// Under the `LabeledMachine` contract ("private effects are private") a
/// rule firing mutates nothing else, so the explorer can reuse the
/// parent's component ids for everything outside the mask without even an
/// equality check. Debug builds verify the contract per intern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Touched {
    /// Bitmask of touched processor indices (`u32::MAX` = assume all).
    procs: u32,
    mem: bool,
}

impl Touched {
    /// The components one rule firing may touch.
    pub(crate) fn from_action(action: &Action) -> Self {
        if action.thread >= 32 {
            return Touched { procs: u32::MAX, mem: true };
        }
        Touched { procs: 1 << action.thread, mem: action.kind.writes_memory() }
    }

    /// Widens the mask by another rule firing (chain compression).
    pub(crate) fn add_action(&mut self, action: &Action) {
        if action.thread >= 32 {
            self.procs = u32::MAX;
            self.mem = true;
            return;
        }
        self.procs |= 1 << action.thread;
        self.mem |= action.kind.writes_memory();
    }

    fn touches_proc(self, index: usize) -> bool {
        index >= 32 || self.procs & (1 << index) != 0
    }
}

/// A machine state that splits into internable components: the shared
/// memory plus one private component per processor.
///
/// The component count must be constant across every state of one machine
/// (litmus machines have a fixed processor count), and two states must be
/// equal exactly when all their components are equal — which holds by
/// construction for states that are plain structs of their components.
pub trait ComposedState: Clone + Eq + Hash {
    /// The shared-memory component.
    type Mem: Clone + Eq + Hash;
    /// One processor's private component.
    type Proc: Clone + Eq + Hash;

    /// The shared-memory component.
    fn memory(&self) -> &Self::Mem;
    /// Mutable access for [`ComponentArena::load`]'s `clone_from` reuse.
    fn memory_mut(&mut self) -> &mut Self::Mem;
    /// The per-processor components.
    fn procs(&self) -> &[Self::Proc];
    /// Mutable access for [`ComponentArena::load`]'s `clone_from` reuse.
    fn procs_mut(&mut self) -> &mut [Self::Proc];

    /// Approximate bytes a distinct memory component occupies once interned.
    fn mem_bytes(mem: &Self::Mem) -> usize;
    /// Approximate bytes a distinct proc component occupies once interned.
    fn proc_bytes(proc: &Self::Proc) -> usize;
}

/// Sharing statistics of a [`ComponentArena`] (or, degenerately, of a plain
/// full-state arena), reported through `Exploration` and `perf_snapshot`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ArenaOccupancy {
    /// Interned states (equals `Exploration::states_visited` at the end).
    pub states: usize,
    /// Distinct shared-memory components backing those states.
    pub distinct_memories: usize,
    /// Distinct per-processor components backing those states (all
    /// processor positions share one arena).
    pub distinct_procs: usize,
    /// Approximate bytes held by the interned components plus the id table
    /// — the peak, since arenas only grow.
    pub interned_bytes: usize,
}

impl ArenaOccupancy {
    /// Distinct components of any kind.
    #[must_use]
    pub fn distinct_components(&self) -> usize {
        self.distinct_memories + self.distinct_procs
    }
}

/// A hash-consing state arena over [`ComposedState`] components.
///
/// Each distinct memory and proc component is stored once; a state is a
/// row of `1 + num_procs` component ids in a flat table, deduplicated
/// through a row-hash index. Successor interning takes the parent's row as
/// the starting point, so components the successor shares with its parent
/// are recognized by one equality check — no hashing, no cloning.
#[derive(Debug)]
pub(crate) struct ComponentArena<S: ComposedState> {
    mems: InternedStates<S::Mem>,
    procs: InternedStates<S::Proc>,
    /// Flat id table: state `slot` owns `ids[slot * stride .. (slot + 1) * stride]`,
    /// laid out as `[mem_id, proc0_id, proc1_id, ...]`.
    ids: Vec<u32>,
    stride: usize,
    by_hash: FxHashMap<u64, Bucket>,
    hasher: FxBuildHasher,
    /// Row under construction (kept to avoid re-allocating per intern).
    scratch: Vec<u32>,
    component_bytes: usize,
}

impl<S: ComposedState> ComponentArena<S> {
    /// An empty arena for machines with `num_procs` processors.
    pub(crate) fn new(num_procs: usize) -> Self {
        ComponentArena {
            mems: InternedStates::default(),
            procs: InternedStates::default(),
            ids: Vec::new(),
            stride: 1 + num_procs,
            by_hash: FxHashMap::default(),
            hasher: FxBuildHasher::default(),
            scratch: Vec::with_capacity(1 + num_procs),
            component_bytes: 0,
        }
    }

    /// Number of interned states.
    pub(crate) fn len(&self) -> usize {
        self.ids.len() / self.stride
    }

    fn row(&self, slot: u32) -> &[u32] {
        let start = slot as usize * self.stride;
        &self.ids[start..start + self.stride]
    }

    /// Interns every component of `state` unconditionally (the initial
    /// state, which has no parent to share with) and returns its slot.
    pub(crate) fn intern_root(&mut self, state: &S) -> u32 {
        debug_assert_eq!(self.len(), 0, "the root is interned first");
        self.scratch.clear();
        let (mem_id, mem_new) = self.mems.intern_ref(state.memory());
        if mem_new {
            self.component_bytes += S::mem_bytes(state.memory());
        }
        self.scratch.push(mem_id);
        for proc in state.procs() {
            let (proc_id, proc_new) = self.procs.intern_ref(proc);
            if proc_new {
                self.component_bytes += S::proc_bytes(proc);
            }
            self.scratch.push(proc_id);
        }
        let (slot, _) = self.intern_scratch_row();
        slot
    }

    /// Interns a successor of the state at `parent`, returning its slot and
    /// whether it is new. Components equal to the parent's are recognized
    /// by one equality check against the parent's interned component and
    /// reuse its id without hashing or cloning anything.
    ///
    /// The production drivers use the label-directed
    /// [`ComponentArena::intern_touched`] instead; this comparison-based
    /// form stays as the test surface for the sharing machinery itself.
    #[cfg(test)]
    pub(crate) fn intern(&mut self, state: &S, parent: u32) -> (u32, bool) {
        debug_assert_eq!(state.procs().len() + 1, self.stride, "constant component count");
        let parent_start = parent as usize * self.stride;
        self.scratch.clear();
        self.scratch.extend_from_slice(&self.ids[parent_start..parent_start + self.stride]);

        if *self.mems.get(self.scratch[0]) != *state.memory() {
            let (mem_id, mem_new) = self.mems.intern_ref(state.memory());
            if mem_new {
                self.component_bytes += S::mem_bytes(state.memory());
            }
            self.scratch[0] = mem_id;
        }
        for (index, proc) in state.procs().iter().enumerate() {
            if *self.procs.get(self.scratch[1 + index]) != *proc {
                let (proc_id, proc_new) = self.procs.intern_ref(proc);
                if proc_new {
                    self.component_bytes += S::proc_bytes(proc);
                }
                self.scratch[1 + index] = proc_id;
            }
        }
        self.intern_scratch_row()
    }

    /// Label-directed [`ComponentArena::intern`]: `touched` names the
    /// components the producing transition(s) may have modified (from the
    /// [`Action`] labels), so every component outside the mask reuses the
    /// parent's id without any comparison — the successor re-interns *one*
    /// proc (plus the memory on writes) instead of touching the world.
    ///
    /// Soundness rests on the `LabeledMachine` contract that a rule mutates
    /// only the acting thread's private state and the declared shared
    /// memory; debug builds assert it component by component.
    pub(crate) fn intern_touched(
        &mut self,
        state: &S,
        parent: u32,
        touched: Touched,
    ) -> (u32, bool) {
        self.intern_touched_impl(state, parent, touched, true)
    }

    /// [`ComponentArena::intern_touched`] for *sparse* successor states
    /// (see `LabeledMachine::labeled_successors_sparse_into`): components
    /// outside the mask hold stale buffer content rather than copies of
    /// the parent's, so the debug verification of the untouched components
    /// is skipped — they are never read at all.
    pub(crate) fn intern_touched_sparse(
        &mut self,
        state: &S,
        parent: u32,
        touched: Touched,
    ) -> (u32, bool) {
        self.intern_touched_impl(state, parent, touched, false)
    }

    fn intern_touched_impl(
        &mut self,
        state: &S,
        parent: u32,
        touched: Touched,
        assert_untouched: bool,
    ) -> (u32, bool) {
        debug_assert_eq!(state.procs().len() + 1, self.stride, "constant component count");
        let parent_start = parent as usize * self.stride;
        self.scratch.clear();
        self.scratch.extend_from_slice(&self.ids[parent_start..parent_start + self.stride]);

        if touched.mem {
            if *self.mems.get(self.scratch[0]) != *state.memory() {
                let (mem_id, mem_new) = self.mems.intern_ref(state.memory());
                if mem_new {
                    self.component_bytes += S::mem_bytes(state.memory());
                }
                self.scratch[0] = mem_id;
            }
        } else {
            debug_assert!(
                !assert_untouched || *self.mems.get(self.scratch[0]) == *state.memory(),
                "a non-writing action must leave the shared memory intact"
            );
        }
        for (index, proc) in state.procs().iter().enumerate() {
            if touched.touches_proc(index) {
                if *self.procs.get(self.scratch[1 + index]) != *proc {
                    let (proc_id, proc_new) = self.procs.intern_ref(proc);
                    if proc_new {
                        self.component_bytes += S::proc_bytes(proc);
                    }
                    self.scratch[1 + index] = proc_id;
                }
            } else {
                debug_assert!(
                    !assert_untouched || *self.procs.get(self.scratch[1 + index]) == *proc,
                    "an action must leave other threads' private state intact"
                );
            }
        }
        self.intern_scratch_row()
    }

    /// Deduplicates the row in `scratch` against the state table.
    fn intern_scratch_row(&mut self) -> (u32, bool) {
        let hash = self.hasher.hash_one(&self.scratch);
        let ComponentArena { ids, by_hash, scratch, stride, .. } = self;
        let stride = *stride;
        let slot = u32::try_from(ids.len() / stride).expect("state count fits u32");
        match by_hash.entry(hash) {
            std::collections::hash_map::Entry::Occupied(mut entry) => {
                let bucket = entry.get_mut();
                if let Some(&found) = bucket.slots().iter().find(|&&slot| {
                    let start = slot as usize * stride;
                    ids[start..start + stride] == scratch[..]
                }) {
                    return (found, false);
                }
                bucket.push(slot);
            }
            std::collections::hash_map::Entry::Vacant(entry) => {
                entry.insert(Bucket::One(slot));
            }
        }
        ids.extend_from_slice(scratch);
        (slot, true)
    }

    /// Reassembles the state at `slot` into `into`, reusing its buffers
    /// through `clone_from`.
    pub(crate) fn load(&self, slot: u32, into: &mut S) {
        let row = self.row(slot);
        into.memory_mut().clone_from(self.mems.get(row[0]));
        for (index, proc) in into.procs_mut().iter_mut().enumerate() {
            proc.clone_from(self.procs.get(row[1 + index]));
        }
    }

    /// The arena's sharing statistics.
    pub(crate) fn occupancy(&self) -> ArenaOccupancy {
        ArenaOccupancy {
            states: self.len(),
            distinct_memories: self.mems.len(),
            distinct_procs: self.procs.len(),
            interned_bytes: self.component_bytes + self.ids.len() * std::mem::size_of::<u32>(),
        }
    }

    /// Reassembles every interned state in slot order, cloning `template`
    /// for the buffers (used when a sequential exploration escalates to the
    /// sharded-parallel driver).
    pub(crate) fn export_states(&self, template: &S) -> Vec<S> {
        (0..self.len())
            .map(|slot| {
                let mut state = template.clone();
                self.load(slot as u32, &mut state);
                state
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gam::{GamMachine, GamState};
    use crate::machine::{AbstractMachine, LabeledMachine};
    use gam_isa::litmus::library;

    #[test]
    fn successors_share_unchanged_components_with_their_parent() {
        let machine = GamMachine::new(&library::dekker());
        let initial = machine.initial_state();
        let mut arena: ComponentArena<GamState> = ComponentArena::new(initial.procs().len());
        let root = arena.intern_root(&initial);
        assert_eq!(root, 0);
        assert_eq!(arena.len(), 1);

        let successors = machine.labeled_successors(&initial);
        assert!(!successors.is_empty());
        for (_, successor) in &successors {
            let (slot, is_new) = arena.intern(successor, root);
            assert!(is_new, "distinct successors intern to fresh slots");
            // Dekker's first steps touch exactly one proc (store-data /
            // address already resolved at fetch; the commit also writes
            // memory) — the untouched proc's component is shared.
            let parent_row: Vec<u32> = arena.row(root).to_vec();
            let child_row: Vec<u32> = arena.row(slot).to_vec();
            let shared = parent_row.iter().zip(&child_row).filter(|(a, b)| a == b).count();
            assert!(shared >= 1, "at least one component is shared with the parent");
        }
        // Re-interning an existing successor is a pure lookup.
        let (slot0, fresh) = arena.intern(&successors[0].1, root);
        assert!(!fresh);
        assert_eq!(slot0, 1);

        let occupancy = arena.occupancy();
        assert_eq!(occupancy.states, 1 + successors.len());
        assert!(occupancy.distinct_memories >= 1);
        assert!(occupancy.distinct_procs >= 2, "two procs in the initial state alone");
        assert!(occupancy.distinct_components() < occupancy.states * 3);
        assert!(occupancy.interned_bytes > 0);
    }

    #[test]
    fn load_round_trips_interned_states() {
        let machine = GamMachine::new(&library::mp());
        let initial = machine.initial_state();
        let mut arena: ComponentArena<GamState> = ComponentArena::new(initial.procs().len());
        let root = arena.intern_root(&initial);

        let mut expected = vec![initial.clone()];
        for (_, successor) in machine.labeled_successors(&initial) {
            arena.intern(&successor, root);
            expected.push(successor);
        }
        let mut scratch = initial.clone();
        for (slot, state) in expected.iter().enumerate() {
            arena.load(slot as u32, &mut scratch);
            assert_eq!(scratch, *state, "slot {slot} reassembles exactly");
        }
        assert_eq!(arena.export_states(&initial), expected);
    }
}
